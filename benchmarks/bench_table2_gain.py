"""Table II bench: the gain-heuristic worked example.

Regenerates the published 3-task / 2-architecture gain table and
benchmarks the gain computation throughput (it sits on MultiPrio's PUSH
fast path).
"""

import numpy as np

from repro.core.gain import GainTracker
from repro.experiments.table2_gain import format_table2, run_table2
from repro.utils.rng import make_rng


def test_table2_reproduction(benchmark, report):
    result = benchmark(run_table2)
    assert result.max_abs_error < 1e-3
    report(format_table2(result), "table2_gain")


def test_gain_tracker_throughput(benchmark):
    """PUSH-path cost: score 1000 random two-arch tasks."""
    rng = make_rng(0)
    deltas = [
        {"cpu": float(c), "cuda": float(g)}
        for c, g in zip(rng.uniform(1, 1e4, 1000), rng.uniform(1, 1e4, 1000))
    ]

    def run():
        tracker = GainTracker()
        acc = 0.0
        for d in deltas:
            acc += tracker.observe_and_score(d)["cpu"]
        return acc

    total = benchmark(run)
    assert np.isfinite(total)
