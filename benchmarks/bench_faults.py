"""Faults bench: scheduler robustness under injected failures.

No paper counterpart — the paper measures a healthy platform — but the
schedulers live inside StarPU, where kernels fail and devices drop off.
Sweeps the transient per-attempt failure rate on the Fig. 4 Cholesky
shape and adds one fail-stop scenario (a GPU stream dies mid-run). Shape
assertions: every run completes, transient faults actually fire and are
retried, fault-free rows stay exactly at their baselines, and the
fail-stop run survives the death of the stream.
"""

from benchmarks.conftest import bench_scale
from repro.experiments.faults_sweep import format_faults_sweep, run_faults_sweep


def test_faults_sweep(benchmark, report):
    n_tiles = max(8, int(10 * bench_scale()))
    result = benchmark.pedantic(
        run_faults_sweep,
        kwargs={"n_tiles": n_tiles, "tile_size": 960},
        rounds=1,
        iterations=1,
    )
    for row in result.rows:
        if row.fault_rate == 0.0:
            assert row.stats.task_failures == 0
            assert row.degradation == 0.0  # disabled model is bit-identical
        else:
            assert row.stats.task_failures > 0
            assert row.stats.retries == row.stats.task_failures
            assert row.stats.wasted_exec_us > 0.0
    for row in result.killed_rows:
        assert row.stats.worker_failures == 1
        assert row.stats.lost_replica_bytes == 0  # sibling stream keeps the node
        assert row.makespan_us > 0.0
    report(format_faults_sweep(result), "faults_sweep")
