"""Fig. 7 bench: the sparse matrix table and its synthetic analogs.

Regenerates the published table (rows/cols/nnz/op count) augmented with
the synthetic elimination-tree statistics, and benchmarks tree synthesis
itself.
"""

from repro.apps.sparseqr import matrix_by_name, matrix_tree
from repro.experiments.fig7_matrices import format_fig7, run_fig7


def test_fig7_matrix_table(benchmark, report):
    rows = benchmark.pedantic(run_fig7, kwargs={"scale": 0.05}, rounds=1, iterations=1)
    report(format_fig7(rows), "fig7_matrices")
    assert len(rows) == 10
    # Sorted by published op count, as in the paper.
    gflops = [r.spec.gflops for r in rows]
    assert gflops == sorted(gflops)
    # Synthetic trees land near their (scaled) targets.
    for row in rows:
        assert row.flop_error < 0.5, f"{row.spec.name}: {row.flop_error:.0%} off"


def test_tree_synthesis_throughput(benchmark):
    spec = matrix_by_name("TF17")
    tree = benchmark(lambda: matrix_tree(spec, scale=0.05))
    assert len(tree) > 100
