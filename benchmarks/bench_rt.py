"""Real-time machinery bench: cost of overheads, resources, deadlines.

No paper counterpart — this guards the real-time scenario pack around
the engine. It measures the wall-clock cost of the per-decision gates
(a zero-cost :class:`SchedOverheadModel` and an idle
:class:`ResourceProtocol` against a plain run of the same stream — both
must stay cheap because they sit on the engine's hot path), and the
*simulated* effect of charged overheads: per-decision costs inflate the
makespan, and batched scheduling amortizes them (fewer, cheaper
decisions per task), so batching wins on the simulated clock — not just
on the host's.

Standalone (the CI perf-smoke entry, warn-only)::

    python -m benchmarks.bench_rt --json bench_rt_ci.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from benchmarks.conftest import bench_scale
from repro.api import SimConfig, simulate_stream
from repro.experiments.rt_sweep import (
    format_rt_experiment,
    rt_workload,
    run_rt_experiment,
)
from repro.runtime.overhead import SchedOverheadModel
from repro.runtime.resources import ResourceProtocol

#: A deliberately coarse per-decision cost (µs) so the single virtual
#: sched core saturates at bench scale and the simulated inflation is
#: visible; ``batch_task_us`` is 5x cheaper than a per-event push, the
#: amortization batching is meant to buy.
CHARGED = SchedOverheadModel(push_us=50.0, pop_us=25.0, flush_us=100.0,
                             batch_task_us=10.0)


def _stream(n_jobs: int, seed: int = 0, rate: float = 300.0):
    return rt_workload(
        rate_jobs_per_s=rate, n_tenants=4, n_jobs=n_jobs,
        deadline_us=10_000.0, seed=seed,
    )


def _run(stream, **cfg_kwargs):
    return simulate_stream(
        stream, "small-hetero", "multiprio",
        isolated_baseline=False, config=SimConfig(**cfg_kwargs),
    )


def measure_gates(n_jobs: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall times: plain vs the no-op rt gates.

    The zero-cost overhead model and the idle resource protocol are
    bit-identical to a plain run by construction (the ``rt`` family of
    ``repro check`` proves it); here we price the gate itself.
    """
    stream = _stream(n_jobs)
    n_tasks = stream.n_tasks

    def best_of(**cfg_kwargs) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            _run(stream, **cfg_kwargs)
            best = min(best, time.perf_counter() - t0)
        return best

    plain_s = best_of()
    overhead_s = best_of(overhead=SchedOverheadModel())
    resources_s = best_of(resources=ResourceProtocol())
    return {
        "n_jobs": n_jobs,
        "n_tasks": n_tasks,
        "plain_s": plain_s,
        "free_overhead_s": overhead_s,
        "idle_resources_s": resources_s,
        "overhead_gate_frac":
            (overhead_s - plain_s) / plain_s if plain_s else 0.0,
        "resources_gate_frac":
            (resources_s - plain_s) / plain_s if plain_s else 0.0,
        "tasks_per_s": n_tasks / plain_s,
    }


def measure_charged(n_jobs: int) -> dict:
    """Simulated effect of charged overheads, per-event vs batched.

    Reports the makespan inflation a per-decision cost causes and how
    much of it batching claws back (charged scheduler time per task
    drops because a flushed batch pays ``flush + n x batch_task``
    instead of ``n x push``). Uses a denser arrival stream than the
    gate measurements: the win only shows on the simulated clock once
    the virtual sched core is the bottleneck, and sparse arrivals make
    batches too small for the flush cost to amortize.
    """
    stream = _stream(n_jobs, rate=1500.0)
    plain = _run(stream)
    per_event = _run(stream, overhead=CHARGED)
    batched = _run(stream, overhead=CHARGED, batch_step=500.0,
                   batch_drain_on_idle=False)
    pe_stats = per_event.sim.rt_stats or {}
    b_stats = batched.sim.rt_stats or {}
    return {
        "n_jobs": n_jobs,
        "n_tasks": stream.n_tasks,
        "plain_makespan_us": plain.makespan_us,
        "per_event_makespan_us": per_event.makespan_us,
        "batched_makespan_us": batched.makespan_us,
        "per_event_inflation":
            per_event.makespan_us / plain.makespan_us,
        "batched_inflation": batched.makespan_us / plain.makespan_us,
        "per_event_charged_us": pe_stats.get("overhead_charged_us", 0.0),
        "batched_charged_us": b_stats.get("overhead_charged_us", 0.0),
    }


def main(argv=None) -> int:
    """Measure and optionally write the JSON doc (always exit 0: CI
    treats rt machinery cost as warn-only)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="write measurements to PATH")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    args = parser.parse_args(argv)
    doc = {"gates": {}, "charged": {}}
    for n_jobs in (8, 24):
        g = measure_gates(n_jobs, repeats=args.repeats)
        doc["gates"][f"rt{n_jobs}"] = g
        print(
            f"rt{n_jobs}: {g['n_tasks']} tasks, plain {g['plain_s'] * 1e3:.1f} ms, "
            f"overhead gate {g['overhead_gate_frac'] * 100:+.1f}%, "
            f"resource gate {g['resources_gate_frac'] * 100:+.1f}% "
            f"({g['tasks_per_s']:.0f} tasks/s)"
        )
    c = measure_charged(24)
    doc["charged"]["rt24"] = c
    print(
        f"charged rt24: makespan x{c['per_event_inflation']:.3f} per-event "
        f"vs x{c['batched_inflation']:.3f} batched "
        f"(charged {c['per_event_charged_us']:.0f} vs "
        f"{c['batched_charged_us']:.0f} us)"
    )
    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"measurements written to {args.json}")
    return 0


# -- pytest-benchmark guards -------------------------------------------------


def test_rt_gate_throughput(benchmark):
    """Tasks per wall-clock second with the overhead gate enabled."""
    n_jobs = max(4, int(8 * bench_scale()))
    stream = _stream(n_jobs)

    def run():
        res = _run(stream, overhead=SchedOverheadModel())
        return len(res.jobs)

    assert benchmark(run) == n_jobs


def test_charged_overheads_batching_wins_simulated(report):
    """Charged per-decision costs must inflate the simulated makespan,
    and batching must claw back part of the inflation *on the simulated
    clock* (cheaper per-task decisions, not just fewer host cycles)."""
    # Floor at 16 jobs: shorter streams flush too few batches for the
    # amortization to beat the batching-window holding latency.
    doc = measure_charged(max(16, int(16 * bench_scale())))
    assert doc["per_event_charged_us"] > 0.0
    assert doc["per_event_inflation"] > 1.0
    assert doc["batched_inflation"] < doc["per_event_inflation"]
    assert doc["batched_charged_us"] < doc["per_event_charged_us"]
    report(json.dumps(doc, indent=2), "rt_charged")


def test_rt_sweep(benchmark, report):
    """The rt experiment end to end (reduced grid): the deadline-aware
    MultiPrio must not miss more than the deadline-oblivious one under
    overload."""
    result = benchmark.pedantic(
        run_rt_experiment,
        kwargs={
            "multipliers": (1.0, 2.0),
            "schedulers": ("multiprio", "multiprio-deadline"),
            "n_tenants": 4,
            "n_jobs": max(8, int(16 * bench_scale())),
        },
        rounds=1,
        iterations=1,
    )
    miss = {
        (row.scheduler, row.multiplier): row.miss_rate for row in result.rows
    }
    assert miss[("multiprio-deadline", 2.0)] <= miss[("multiprio", 2.0)]
    for row in result.rows:
        assert 0.0 <= row.miss_rate <= 1.0
        assert row.makespan_us > 0.0
    report(format_rt_experiment(result), "rt_sweep")


if __name__ == "__main__":
    raise SystemExit(main())
