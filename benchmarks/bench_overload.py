"""Control-plane bench: wall-clock cost of admission under overload.

No paper counterpart — this guards the :mod:`repro.control` machinery.
It measures the overhead the admission gate adds to the reveal loop
(an unlimited control plane vs no control plane on the same stream)
and the throughput of a genuinely overloaded controlled run, so a
regression in the decide/cancel/evict paths shows up as a wall-clock
gap or a throughput drop.

Standalone (the CI perf-smoke entry, warn-only)::

    python -m benchmarks.bench_overload --json bench_overload_ci.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from benchmarks.conftest import bench_scale
from repro.api import simulate_stream
from repro.control import ControlConfig
from repro.experiments.overload import (
    format_overload_experiment,
    overload_workload,
    run_overload_experiment,
)


def _stream(n_jobs: int, multiplier: float = 4.0, seed: int = 0):
    return overload_workload(
        rate_jobs_per_s=multiplier * 2000.0,
        n_tenants=12,
        n_jobs=n_jobs,
        seed=seed,
    )


def measure_overload(n_jobs: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall times: uncontrolled, no-op controlled,
    and a constrained (shedding) controlled run."""
    stream = _stream(n_jobs)
    n_tasks = stream.n_tasks

    def best_of(**kwargs) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            simulate_stream(
                stream, "small-hetero", "multiprio",
                isolated_baseline=False, **kwargs,
            )
            best = min(best, time.perf_counter() - t0)
        return best

    plain_s = best_of()
    noop_s = best_of(control=ControlConfig.unlimited())
    return {
        "n_jobs": n_jobs,
        "n_tasks": n_tasks,
        "plain_s": plain_s,
        "noop_control_s": noop_s,
        "gate_overhead_frac": (noop_s - plain_s) / plain_s if plain_s else 0.0,
        "tasks_per_s": n_tasks / noop_s,
    }


def main(argv=None) -> int:
    """Measure and optionally write the JSON doc (always exit 0: CI
    treats control-plane overhead as warn-only)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="write measurements to PATH")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    args = parser.parse_args(argv)
    doc = {"workloads": {}}
    for n_jobs in (8, 24):
        m = measure_overload(n_jobs, repeats=args.repeats)
        doc["workloads"][f"overload{n_jobs}"] = m
        print(
            f"overload{n_jobs}: {m['n_tasks']} tasks, plain "
            f"{m['plain_s'] * 1e3:.1f} ms, gated {m['noop_control_s'] * 1e3:.1f} ms "
            f"({m['gate_overhead_frac'] * 100:+.1f}%, {m['tasks_per_s']:.0f} tasks/s)"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"measurements written to {args.json}")
    return 0


# -- pytest-benchmark guards -------------------------------------------------


def test_control_gate_throughput(benchmark):
    """Tasks per wall-clock second through a no-op-controlled stream."""
    n_jobs = max(4, int(8 * bench_scale()))
    stream = _stream(n_jobs)

    def run():
        res = simulate_stream(
            stream, "small-hetero", "multiprio",
            isolated_baseline=False, control=ControlConfig.unlimited(),
        )
        return res.control.n_completed

    assert benchmark(run) == n_jobs


def test_overload_sweep(benchmark, report):
    """The overload experiment end to end (reduced grid)."""
    result = benchmark.pedantic(
        run_overload_experiment,
        kwargs={
            "multipliers": (1.0, 4.0),
            "n_tenants": 6,
            "n_jobs": max(6, int(12 * bench_scale())),
        },
        rounds=1,
        iterations=1,
    )
    for row in result.rows:
        assert row.completed + row.rejected + row.evicted == row.arrived
        assert 0.0 <= row.slo_miss_rate <= 1.0
        assert 0.0 < row.tenant_fairness <= 1.0
    report(format_overload_experiment(result), "overload")


if __name__ == "__main__":
    raise SystemExit(main())
