"""Benchmark fixtures: result directory and report helper.

Every bench regenerates one of the paper's tables/figures and writes the
formatted rows/series to ``bench_results/<name>.txt`` (also echoed to
stdout when running with ``-s``). Scales are simulation-sized by
default; set ``REPRO_BENCH_SCALE`` (a float multiplier, default 1.0) to
grow workloads toward paper scale.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "bench_results"


def bench_scale() -> float:
    """Workload-size multiplier from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Callable saving a formatted reproduction artefact."""

    def _save(text: str, name: str | None = None) -> None:
        stem = name or request.node.name.replace("[", "_").replace("]", "")
        path = results_dir / f"{stem}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
