"""Fig. 8 bench: sparse multifrontal QR ratios vs Dmdas.

Paper shape: MultiPrio outperforms Dmdas on most matrices — +31% average
on Intel-V100, +12% (with variation) on AMD-A100 — and HeteroPrio trails
MultiPrio. Asserted here: the mean MultiPrio/Dmdas ratio exceeds 1.05 on
Intel-V100 and 0.95 on AMD-A100 ("some variation", per the paper), and
MultiPrio's mean beats HeteroPrio's on both platforms.

Each matrix runs at ``scale x`` its published op count (default 0.02 to
keep the 10-matrix x 2-platform grid laptop-sized; raise
REPRO_BENCH_SCALE toward 1/0.02 = 50 for paper-scale op counts).
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.fig8_sparseqr import format_fig8, run_fig8


@pytest.fixture(scope="module")
def fig8_result():
    return run_fig8(scale=0.02 * bench_scale())


def _top_ratio(result, machine: str, k: int = 3) -> float:
    """Mean MultiPrio/Dmdas ratio over the k largest matrices."""
    cells = sorted(
        (c for c in result.cells if c.machine == machine),
        key=lambda c: -c.gflops_published,
    )[:k]
    return sum(c.ratio("multiprio") for c in cells) / len(cells)


def test_fig8_sparse_qr_grid(benchmark, fig8_result, report):
    benchmark.pedantic(lambda: fig8_result, rounds=1, iterations=1)
    report(format_fig8(fig8_result), "fig8_sparseqr")
    assert len(fig8_result.cells) == 20  # 10 matrices x 2 machines
    # Shape assertions (duplicated from the granular tests below, which
    # --benchmark-only skips). At simulation scale the MultiPrio
    # advantage is concentrated on the large matrices (the paper's own
    # AMD-A100 discussion: "up to 20% for the larger matrices that
    # provide a more suitable load"); at the scaled-down small sizes
    # Dmdas's prefetching wins. Asserted: MultiPrio ahead on the
    # top-of-the-table matrices, bounded overall, and ahead of
    # HeteroPrio everywhere.
    for machine in ("intel-v100", "amd-a100"):
        big = _top_ratio(fig8_result, machine, k=3)
        assert big > 1.05, f"{machine}: top-3 mean {big:.2f}"
        assert fig8_result.mean_ratio(machine, "multiprio") > 0.85
        assert fig8_result.mean_ratio(machine, "multiprio") > fig8_result.mean_ratio(
            machine, "heteroprio"
        )


def test_fig8_multiprio_beats_dmdas_on_large_matrices(fig8_result):
    for machine in ("intel-v100", "amd-a100"):
        assert _top_ratio(fig8_result, machine, k=3) > 1.05


def test_fig8_multiprio_competitive_overall(fig8_result):
    for machine in ("intel-v100", "amd-a100"):
        assert fig8_result.mean_ratio(machine, "multiprio") > 0.85


def test_fig8_multiprio_ahead_of_heteroprio(fig8_result):
    for machine in ("intel-v100", "amd-a100"):
        mp = fig8_result.mean_ratio(machine, "multiprio")
        hp = fig8_result.mean_ratio(machine, "heteroprio")
        assert mp > hp, f"{machine}: multiprio {mp:.2f} vs heteroprio {hp:.2f}"
