"""Fig. 4 bench: the eviction-mechanism ablation.

Paper setup: Cholesky of a 960x20-tile matrix, 1 GPU + 6 CPUs, MultiPrio
with vs without eviction. Paper numbers: GPU idle 29% -> 1% and a
visibly shorter makespan. The shape assertion: eviction must cut the GPU
idle fraction and not lengthen the makespan.
"""

from benchmarks.conftest import bench_scale
from repro.experiments.fig4_eviction import format_fig4, run_fig4


def test_fig4_eviction_ablation(benchmark, report):
    n_tiles = max(8, int(20 * bench_scale()))
    result = benchmark.pedantic(
        run_fig4, kwargs={"n_tiles": n_tiles, "tile_size": 960}, rounds=1, iterations=1
    )
    assert result.with_eviction.gpu_idle_frac < result.without_eviction.gpu_idle_frac
    assert result.with_eviction.makespan_us <= result.without_eviction.makespan_us
    report(format_fig4(result, gantt=True), "fig4_eviction")
