"""Observability overhead guard: disabled must be free, enabled cheap.

The zero-cost contract: with ``record_level="off"`` the engine takes the
exact same decisions as a build without the observability subsystem.
The golden constants below were captured on the pre-observability
engine (seed 0, Cholesky 10x512 on small_hetero 6 CPU + 2x2 GPU
streams); any drift means an emit point leaked into the simulation.
The timed benchmarks bound the price of turning recording on.
"""

from benchmarks.conftest import bench_scale
from repro.apps.dense import cholesky_program
from repro.platform.machines import small_hetero
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.registry import make_scheduler

# Captured on the engine at commit 61935fb, before repro.obs existed.
GOLDEN_PRE_OBS = {
    "multiprio": (25477.046516434653, 387973120),
    "dmdas": (22424.351674920632, 876609536),
}


def _sim(scheduler_name: str, record_level: str) -> Simulator:
    machine = small_hetero(n_cpus=6, n_gpus=2, gpu_streams=2)
    return Simulator(
        machine.platform(),
        make_scheduler(scheduler_name),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        record_trace=False,
        record_level=record_level,
    )


def test_disabled_obs_is_bit_identical_to_pre_obs_engine():
    """record_level="off" reproduces the pre-PR engine exactly."""
    program = cholesky_program(10, 512)
    for name, (makespan, nbytes) in GOLDEN_PRE_OBS.items():
        res = _sim(name, "off").run(program)
        assert res.makespan == makespan, (
            f"{name}: obs-disabled makespan drifted from the "
            f"pre-observability engine ({res.makespan} != {makespan})"
        )
        assert res.bytes_transferred == nbytes, name
        assert res.events is None and res.metrics is None


def test_enabled_obs_does_not_perturb_results():
    """Recording changes what is *observed*, never what is *simulated*."""
    program = cholesky_program(10, 512)
    for name, (makespan, nbytes) in GOLDEN_PRE_OBS.items():
        for level in ("tasks", "decisions"):
            res = _sim(name, level).run(program)
            assert res.makespan == makespan, (name, level)
            assert res.bytes_transferred == nbytes, (name, level)


def test_obs_overhead_disabled(benchmark):
    """Throughput with observability off (the default everyone pays)."""
    n_tiles = max(8, int(12 * bench_scale()))
    program = cholesky_program(n_tiles, 512)

    def run():
        return _sim("multiprio", "off").run(program).n_tasks

    assert benchmark(run) == len(program)


def test_obs_overhead_decisions(benchmark):
    """Throughput at the heaviest record level (full decision provenance)."""
    n_tiles = max(8, int(12 * bench_scale()))
    program = cholesky_program(n_tiles, 512)

    def run():
        return _sim("multiprio", "decisions").run(program).n_tasks

    assert benchmark(run) == len(program)
