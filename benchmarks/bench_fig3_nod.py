"""Fig. 3 bench: the NOD worked example plus NOD computation throughput."""

from repro.core.criticality import nod
from repro.experiments.fig3_nod import format_fig3, run_fig3
from repro.apps.dense import cholesky_program


def test_fig3_reproduction(benchmark, report):
    result = benchmark(run_fig3)
    assert result.nod_t2 == 2.5
    assert result.nod_t3 == 1.0
    report(format_fig3(result), "fig3_nod")


def test_nod_throughput_on_cholesky_dag(benchmark):
    """PUSH-path cost: NOD over every task of a 20-tile Cholesky DAG."""
    program = cholesky_program(20, 256)

    def run():
        return sum(nod(t) for t in program.tasks)

    total = benchmark(run)
    assert total > 0
