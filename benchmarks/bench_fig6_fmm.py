"""Fig. 6 bench: TBFMM makespans across schedulers and GPU streams.

Paper shape: MultiPrio achieves the shortest makespan; Dmdas suffers on
the wide disconnected DAG. Our reproduction recovers the full ordering
(multiprio < heteroprio < dmdas) on Intel-V100; on AMD-A100 the
guard-enhanced HeteroPrio edges out MultiPrio (documented deviation in
EXPERIMENTS.md), so the asserted envelope there is only
multiprio-vs-dmdas.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.fig6_fmm import format_fig6, run_fig6


@pytest.fixture(scope="module")
def fig6_result():
    n_particles = int(200_000 * bench_scale())
    return run_fig6(n_particles=n_particles, height=5, stream_counts=(1, 2, 4))


def test_fig6_fmm_grid(benchmark, fig6_result, report):
    benchmark.pedantic(lambda: fig6_result, rounds=1, iterations=1)
    report(format_fig6(fig6_result), "fig6_fmm")
    assert len(fig6_result.cells) == 2 * 3 * 3
    # Shape assertions (duplicated from the granular tests, which
    # --benchmark-only skips): multiprio wins intel; bounded on amd.
    assert fig6_result.winner("intel-v100") == "multiprio"
    mp = fig6_result.best("amd-a100", "multiprio").makespan_us
    dm = fig6_result.best("amd-a100", "dmdas").makespan_us
    assert mp < dm * 1.3


def test_fig6_multiprio_wins_intel(fig6_result):
    assert fig6_result.winner("intel-v100") == "multiprio"


def test_fig6_multiprio_vs_dmdas(fig6_result):
    """Intel-V100: MultiPrio strictly beats Dmdas (paper shape). On
    AMD-A100 our reproduction deviates (EXPERIMENTS.md): MultiPrio only
    stays within a bounded factor of Dmdas there."""
    mp = fig6_result.best("intel-v100", "multiprio").makespan_us
    dm = fig6_result.best("intel-v100", "dmdas").makespan_us
    assert mp < dm, f"intel-v100: multiprio {mp} vs dmdas {dm}"
    mp_a = fig6_result.best("amd-a100", "multiprio").makespan_us
    dm_a = fig6_result.best("amd-a100", "dmdas").makespan_us
    assert mp_a < dm_a * 1.3, f"amd-a100: multiprio {mp_a} vs dmdas {dm_a}"


def test_fig6_streams_help_dmdas(fig6_result):
    """More GPU streams must not hurt: the best stream count for each
    scheduler is at least as good as single-stream."""
    for machine in ("intel-v100", "amd-a100"):
        for sched in ("multiprio", "dmdas", "heteroprio"):
            cells = [
                c for c in fig6_result.cells
                if c.machine == machine and c.scheduler == sched
            ]
            single = [c for c in cells if c.gpu_streams == 1][0]
            best = min(cells, key=lambda c: c.makespan_us)
            assert best.makespan_us <= single.makespan_us * 1.001
