"""Memory-pressure bench: the paper's getrf-at-scale mechanism.

The paper's Fig. 5 discussion attributes MultiPrio's +14% win on Intel
getrf beyond 100k to Dmdas "data transfer issues, likely related to GPU
memory limits or conflicts between prefetching and memory eviction".
Reaching a 16 GB V100's limit needs an ~80 GB working set; instead we
shrink the device memory below a simulation-sized LU's working set and
observe exactly that mechanism:

* Dmdas's push-time prefetches land far ahead of execution; under
  pressure the LRU evicts them before use, so tiles ping-pong (traffic
  roughly doubles, thousands of evictions) and the makespan degrades;
* MultiPrio fetches at pop time, just before use, and barely degrades —
  flipping the ranking to MultiPrio, as in the paper's large-getrf runs.
"""

from benchmarks.conftest import bench_scale
from repro.apps.dense import lu_program
from repro.experiments.reporting import format_table
from repro.platform.machines import intel_v100
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.registry import make_scheduler


def test_memory_pressure_flips_getrf_ranking(benchmark, report):
    n_tiles = max(12, int(15 * bench_scale()))
    program = lu_program(n_tiles, 1280)

    def sweep():
        results = {}
        for label, capacity in (("16GB (ample)", 16 * 2**30), ("1GB (pressure)", 2**30)):
            machine = intel_v100(1, gpu_memory_bytes=capacity)
            for sched in ("dmdas", "multiprio"):
                sim = Simulator(
                    machine.platform(),
                    make_scheduler(sched),
                    AnalyticalPerfModel(machine.calibration(), noise_sigma=0.05),
                    seed=3,
                    record_trace=False,
                )
                res = sim.run(program)
                results[(label, sched)] = (
                    res.makespan,
                    res.bytes_transferred,
                    sim.platform.transfers.n_evictions,
                )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [mem, sched, f"{ms / 1e3:.0f}", f"{nbytes / 2**30:.1f}", evictions]
        for (mem, sched), (ms, nbytes, evictions) in results.items()
    ]
    report(
        format_table(
            ["GPU memory", "scheduler", "makespan ms", "GiB moved", "evictions"],
            rows,
            title=(
                f"Memory pressure on getrf ({n_tiles}x{n_tiles} tiles of 1280, "
                "intel-v100, 1 stream)"
            ),
        ),
        "memory_pressure",
    )

    ample_dm, _, ample_evic = results[("16GB (ample)", "dmdas")]
    tight_dm, tight_dm_bytes, tight_evic = results[("1GB (pressure)", "dmdas")]
    ample_mp, _, _ = results[("16GB (ample)", "multiprio")]
    tight_mp, _, _ = results[("1GB (pressure)", "multiprio")]

    assert ample_evic == 0
    assert tight_evic > 100  # the prefetch/eviction conflict
    assert tight_dm > 1.1 * ample_dm  # dmdas degrades under pressure
    assert tight_mp < 1.1 * ample_mp  # multiprio barely does
    assert tight_mp < tight_dm  # the paper's ranking flip
