"""Fig. 5 bench: dense kernels (potrf/getrf/geqrf) vs Dmdas.

Paper shape: the two schedulers stay within ~±15% of each other on these
regular workloads (Dmdas's expert priorities vs MultiPrio's automatic
scores), with the largest Dmdas advantages on AMD-A100 potrf/getrf. The
bench runs a reduced size sweep per kernel and asserts the *envelope*:
no dense configuration deviates by more than 35% either way.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.fig5_dense import format_fig5, run_fig5
from repro.platform.machines import amd_a100, intel_v100


@pytest.fixture(scope="module")
def fig5_result():
    scale = bench_scale()
    sizes = tuple(int(n * scale) for n in (11520, 23040))
    return run_fig5(
        machines=[intel_v100(1), amd_a100(1)],
        matrix_sizes=sizes,
        tile_sizes={
            "intel-v100": (1280, 2560),
            "amd-a100": (1920, 3840),
        },
    )


def test_fig5_dense_sweep(benchmark, fig5_result, report, results_dir):
    benchmark.pedantic(lambda: fig5_result, rounds=1, iterations=1)
    report(format_fig5(fig5_result), "fig5_dense")
    assert len(fig5_result.cells) == 12  # 2 machines x 3 kernels x 2 sizes
    for cell in fig5_result.cells:
        assert abs(cell.gain_over_dmdas) < 0.35, (
            f"{cell.machine}/{cell.kernel}/N={cell.matrix_size} deviates "
            f"{cell.gain_over_dmdas:+.0%} from Dmdas"
        )
    # Paper's clearest dense claim (duplicated from the granular test,
    # which --benchmark-only skips): AMD potrf/getrf favour Dmdas.
    amd_dense = [
        c for c in fig5_result.cells
        if c.machine == "amd-a100" and c.kernel in ("potrf", "getrf")
    ]
    mean_gain = sum(c.gain_over_dmdas for c in amd_dense) / len(amd_dense)
    assert mean_gain < 0.05


def test_fig5_amd_potrf_favors_dmdas(fig5_result):
    """The paper's clearest dense claim: on AMD-A100 the expert
    priorities win potrf/getrf."""
    amd_dense = [
        c for c in fig5_result.cells
        if c.machine == "amd-a100" and c.kernel in ("potrf", "getrf")
    ]
    assert amd_dense
    mean_gain = sum(c.gain_over_dmdas for c in amd_dense) / len(amd_dense)
    assert mean_gain < 0.05  # Dmdas ahead (or within noise) on average
