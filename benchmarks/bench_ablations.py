"""Ablation benches for MultiPrio's design choices (DESIGN.md Section 7).

Four knobs, each exercised on the workload most sensitive to it:

* **eviction / pop condition** — Cholesky on the Fig. 4 platform;
* **locality window ε** — the paper's ε = 0.8 vs the tie-only default
  (see the deviation note in ``repro.core.multiprio``), on Cholesky
  where tile reuse dominates transfers;
* **criticality (NOD)** — Cholesky, whose diamond DAG rewards releasing
  panel tasks early;
* **pop-condition variants** — raw-sum (the literal Alg. 2) vs
  drain-aware, and the slowdown cap, on the irregular FMM.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.apps.dense import cholesky_program
from repro.apps.fmm import fmm_program
from repro.core.multiprio import MultiPrio
from repro.experiments.reporting import format_table
from repro.platform.machines import amd_a100, fig4_machine, intel_v100
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel


def run(machine, program, sched, sigma=0.0, seed=0):
    sim = Simulator(
        machine.platform(),
        sched,
        AnalyticalPerfModel(machine.calibration(), noise_sigma=sigma),
        seed=seed,
        record_trace=False,
    )
    return sim.run(program).makespan


@pytest.fixture(scope="module")
def chol_program():
    n_tiles = max(10, int(20 * bench_scale()))
    return cholesky_program(n_tiles, 960, with_priorities=False)


@pytest.fixture(scope="module")
def fmm_workload():
    return fmm_program(
        n_particles=int(100_000 * bench_scale()),
        height=5,
        distribution="ellipsoid",
        seed=7,
    )


def test_ablation_eviction(benchmark, chol_program, report):
    machine = fig4_machine()

    def sweep():
        return {
            label: run(machine, chol_program, MultiPrio(eviction=ev))
            for label, ev in (("with-eviction", True), ("without-eviction", False))
        }

    spans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["variant", "makespan ms"],
            [[k, f"{v / 1e3:.1f}"] for k, v in spans.items()],
            title="Ablation: pop condition / eviction (Cholesky, 1 GPU + 6 CPUs)",
        ),
        "ablation_eviction",
    )
    assert spans["with-eviction"] <= spans["without-eviction"]


def test_ablation_locality_eps(benchmark, chol_program, report):
    machine = intel_v100(1)
    eps_values = (0.0, 0.05, 0.2, 0.8)

    def sweep():
        return {
            eps: run(machine, chol_program, MultiPrio(locality_eps=eps))
            for eps in eps_values
        }

    spans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["eps", "makespan ms"],
            [[e, f"{v / 1e3:.1f}"] for e, v in spans.items()],
            title="Ablation: locality window threshold (paper ε = 0.8)",
        ),
        "ablation_locality_eps",
    )
    best = min(spans.values())
    assert spans[0.0] <= 1.15 * best  # the tie-only default stays near-optimal


def test_ablation_locality_onoff(benchmark, chol_program, report):
    machine = intel_v100(1)

    def sweep():
        return {
            label: run(machine, chol_program, MultiPrio(use_locality=flag))
            for label, flag in (("locality", True), ("no-locality", False))
        }

    spans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["variant", "makespan ms"],
            [[k, f"{v / 1e3:.1f}"] for k, v in spans.items()],
            title="Ablation: LS_SDH2 locality selection at POP",
        ),
        "ablation_locality_onoff",
    )
    assert spans["locality"] <= 1.2 * spans["no-locality"]


def test_ablation_criticality(benchmark, chol_program, report):
    machine = intel_v100(1)

    def sweep():
        return {
            label: run(machine, chol_program, MultiPrio(use_criticality=flag))
            for label, flag in (("with-NOD", True), ("without-NOD", False))
        }

    spans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["variant", "makespan ms"],
            [[k, f"{v / 1e3:.1f}"] for k, v in spans.items()],
            title="Ablation: NOD criticality as the secondary heap key",
        ),
        "ablation_criticality",
    )
    assert spans["with-NOD"] <= 1.25 * spans["without-NOD"]


def test_ablation_pop_condition_variants(benchmark, fmm_workload, report):
    """Run on AMD-A100, where the interpretations diverge most: 62 weak
    CPUs + very fast GPUs punish over-permissive slow-worker admission
    (raw-sum) and the missing comparative-advantage cap."""
    machine = amd_a100(4)
    variants = {
        "drain+cap (default)": MultiPrio(),
        "raw-sum (literal Alg.2)": MultiPrio(drain_aware=False, slowdown_cap=None),
        "no-cap": MultiPrio(slowdown_cap=None),
        "evict-on-reject": MultiPrio(evict_on_reject=True),
    }

    def sweep():
        return {
            label: run(machine, fmm_workload, sched, sigma=0.15)
            for label, sched in variants.items()
        }

    spans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["variant", "makespan ms"],
            [[k, f"{v / 1e3:.2f}"] for k, v in spans.items()],
            title="Ablation: pop-condition interpretations (FMM, amd-a100)",
        ),
        "ablation_pop_condition",
    )
    best = min(spans.values())
    assert spans["drain+cap (default)"] <= 1.15 * best
    assert spans["raw-sum (literal Alg.2)"] > spans["drain+cap (default)"]
