"""Cluster throughput bench: wall-clock cost of the two-level scheduler.

No paper counterpart — this guards the global tier added above the
engine: placement, per-node sub-simulations and the cross-node
dependency fixed point. It measures how fast :func:`simulate_cluster`
chews through a chained workflow stream (simulated jobs per wall-clock
second), so a regression in placement costing, fabric routing or the
release fixed point shows up as a throughput drop.

Standalone (the CI perf-smoke entry, warn-only)::

    python -m benchmarks.bench_cluster --json bench_cluster_ci.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from benchmarks.conftest import bench_scale
from repro.cluster import simulate_cluster, star_cluster
from repro.experiments.cluster_scale import (
    cluster_workload,
    format_cluster_experiment,
    run_cluster_experiment,
)


def measure_cluster(n_nodes: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall time for one placement-heavy run."""
    stream = cluster_workload(
        n_chains=2 * n_nodes, chain_len=3,
        rate_chains_per_s=50.0 * n_nodes,
    )
    spec = star_cluster(n_nodes)
    best = float("inf")
    transfers = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = simulate_cluster(
            stream, spec, placement="locality-aware", isolated_baseline=False
        )
        best = min(best, time.perf_counter() - t0)
        assert len(res.jobs) == len(stream.jobs)
        transfers = len(res.transfers)
    return {
        "n_nodes": n_nodes,
        "n_jobs": len(stream.jobs),
        "n_cross_transfers": transfers,
        "wall_s": best,
        "jobs_per_s": len(stream.jobs) / best,
    }


def main(argv=None) -> int:
    """Measure and optionally write the JSON doc (always exit 0: CI
    treats cluster throughput as warn-only)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="write measurements to PATH")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    args = parser.parse_args(argv)
    doc = {"clusters": {}}
    for n_nodes in (4, 16):
        m = measure_cluster(n_nodes, repeats=args.repeats)
        doc["clusters"][f"star{n_nodes}"] = m
        print(
            f"star{n_nodes}: {m['n_jobs']} jobs, "
            f"{m['n_cross_transfers']} cross-node transfers, run "
            f"{m['wall_s'] * 1e3:.1f} ms ({m['jobs_per_s']:.0f} jobs/s)"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"measurements written to {args.json}")
    return 0


# -- pytest-benchmark guards -------------------------------------------------


def test_cluster_throughput(benchmark):
    """Simulated jobs per wall-clock second through the cluster facade."""
    n_nodes = max(4, int(8 * bench_scale()))
    stream = cluster_workload(
        n_chains=2 * n_nodes, rate_chains_per_s=50.0 * n_nodes
    )
    spec = star_cluster(n_nodes)

    def run():
        res = simulate_cluster(
            stream, spec, placement="locality-aware", isolated_baseline=False
        )
        return len(res.jobs)

    assert benchmark(run) == len(stream.jobs)


def test_cluster_scale_sweep(benchmark, report):
    """The cluster-scale experiment end to end (reduced grid)."""
    result = benchmark.pedantic(
        run_cluster_experiment,
        kwargs={
            "policies": ("random", "locality-aware"),
            "node_counts": (max(4, int(8 * bench_scale())),),
        },
        rounds=1,
        iterations=1,
    )
    for row in result.rows:
        assert row.makespan_us > 0.0
        assert row.converged
        assert 0.0 < row.mean_utilization <= 1.0
    by_policy = {row.policy: row for row in result.rows}
    assert (
        by_policy["locality-aware"].makespan_us
        < by_policy["random"].makespan_us
    )
    report(format_cluster_experiment(result), "cluster_scale")


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
