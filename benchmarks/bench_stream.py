"""Stream throughput bench: wall-clock cost of the online workload layer.

No paper counterpart — this guards the machinery added around the
engine, not a figure. It measures how fast the simulator chews through
a merged multi-job stream (simulated tasks per wall-clock second, and
the merge overhead itself), so a regression in the release-by-clock
reveal loop or in :func:`repro.workload.merge.merge_stream` shows up as
a throughput drop.

Standalone (the CI perf-smoke entry, warn-only)::

    python -m benchmarks.bench_stream --json bench_stream_ci.json
"""

from __future__ import annotations

import argparse
import gc
import json
import time
from pathlib import Path

from benchmarks.conftest import bench_scale
from repro.api import SimConfig, SimSpec, simulate_stream
from repro.apps.dense import cholesky_program, lu_program
from repro.experiments.stream_arrivals import (
    format_stream_experiment,
    run_stream_experiment,
)
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode
from repro.schedulers.base import Scheduler
from repro.schedulers.multiprio import MultiPrio
from repro.schedulers.registry import register_scheduler
from repro.workload.merge import merge_stream
from repro.workload.stream import poisson_stream

#: The committed per-event stream-path throughput this PR started from
#: (``BENCH_engine.json`` @ 1e21360, workload ``cholesky16-multiprio``).
#: The batched million-task entry reports its speedup against this pin so
#: the ≥10x acceptance stays anchored to the pre-batching engine even
#: after ``BENCH_engine.json`` is re-recorded.
COMMITTED_PER_EVENT_TASKS_PER_S = 7758.2

#: Committed 1M-task setup rates this PR started from (measured at
#: e7b427b on the 50000-job light stream: 27.6 s to build the Poisson
#: stream, 32.8 s to merge it — the "~70 s before the first task runs"
#: the million-task target exposed). The light-stream entry reports its
#: setup speedups against these pins as tasks/s ratios, so the
#: comparison holds at CI scale too.
COMMITTED_BUILD_TASKS_PER_S = 36_200.0
COMMITTED_MERGE_TASKS_PER_S = 30_500.0

class _SeqPushMultiPrio(MultiPrio):
    """MultiPrio with the bulk ``push_batch`` override disabled (the
    base class's sequential per-task pushes) — the baseline the bulk
    insert path is measured against. Schedules bit-identically."""

    push_batch = Scheduler.push_batch


register_scheduler("multiprio-seqpush", _SeqPushMultiPrio, override=True)

#: Scheduler/engine variants measured by the light-stream entry:
#: name -> (scheduler, batch_step, batch_drain_on_idle).
#: ``multiprio-batch500`` exercises MultiPrio's bulk ``push_batch``
#: override (one hoisted scoring/insert pass over the whole buffer);
#: ``multiprio-batch500-seqpush`` is the same engine configuration with
#: sequential pushes, isolating the override's sched-core saving.
LIGHT_VARIANTS: dict[str, tuple[str, float | None, bool]] = {
    "multiprio-per-event": ("multiprio", None, True),
    "multiprio-batch500": ("multiprio", 500.0, False),
    "multiprio-batch500-seqpush": ("multiprio-seqpush", 500.0, False),
    "multiqueue-per-event": ("multiqueue", None, True),
    "multiqueue-batch500": ("multiqueue", 500.0, False),
}


def _stream(n_jobs: int, rate: float = 120.0, seed: int = 0):
    return poisson_stream(
        [
            ("cholesky", lambda: cholesky_program(6, 512)),
            ("lu", lambda: lu_program(6, 512)),
        ],
        rate_jobs_per_s=rate,
        n_jobs=n_jobs,
        seed=seed,
        tenants=("tenant0", "tenant1"),
        name="bench",
    )


def measure_stream(n_jobs: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall times for merge and the full stream run."""
    stream = _stream(n_jobs)
    merge_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        merge_stream(stream)
        merge_s = min(merge_s, time.perf_counter() - t0)
    n_tasks = stream.n_tasks
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = simulate_stream(
            stream, "small-hetero", "multiprio", isolated_baseline=False
        )
        best = min(best, time.perf_counter() - t0)
        assert len(res.jobs) == n_jobs
    return {
        "n_jobs": n_jobs,
        "n_tasks": n_tasks,
        "merge_s": merge_s,
        "wall_s": best,
        "tasks_per_s": n_tasks / best,
    }


def light_bag_program(n_tasks: int = 20):
    """One job of ``n_tasks`` independent light tasks (one 4 KB write each).

    The per-task work is deliberately tiny so the bench measures engine
    and scheduler overhead, not kernel simulation: this is the workload
    shape behind the ROADMAP's million-job target.
    """
    tf = TaskFlow("light")
    for i in range(n_tasks):
        h = tf.data(4096, label=f"d{i}")
        tf.submit(
            "light", [(h, AccessMode.W)], flops=1e6,
            implementations=("cpu", "cuda"),
        )
    return tf.program()


def _light_stream(n_jobs: int, rate: float = 2000.0, seed: int = 1):
    # 2000 jobs/s (40k tasks/s simulated) keeps small-hetero near but
    # under saturation, so ready queues stay bounded and the wall clock
    # measures per-task cost rather than heap growth under overload.
    return poisson_stream(
        [("light", lambda: light_bag_program(20))],
        rate_jobs_per_s=rate,
        n_jobs=n_jobs,
        seed=seed,
        name="light",
    )


def measure_light_stream(n_jobs: int, repeats: int = 2) -> dict:
    """Engine-run throughput over a merged light-task stream.

    Merges once, then times only ``Simulator.run`` (the engine resets
    runtime state, so the merged program is reused across repeats and
    variants — same convention as ``BENCH_engine.json``, which excludes
    program construction). The GC is frozen and disabled around the
    timed runs: a merged million-task graph otherwise triggers gen-2
    collections that get billed to whatever allocates during them.
    """
    t0 = time.perf_counter()
    stream = _light_stream(n_jobs)
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    merged = merge_stream(stream)
    merge_s = time.perf_counter() - t0
    n_tasks = len(merged.tasks)
    doc: dict = {
        "n_jobs": n_jobs, "n_tasks": n_tasks,
        "build_s": build_s, "merge_s": merge_s,
        "build_speedup_vs_committed":
            (n_tasks / build_s) / COMMITTED_BUILD_TASKS_PER_S,
        "merge_speedup_vs_committed":
            (n_tasks / merge_s) / COMMITTED_MERGE_TASKS_PER_S,
        "variants": {},
    }
    gc.collect()
    gc.freeze()
    gc.disable()
    try:
        for name, (sched, batch_step, drain) in LIGHT_VARIANTS.items():
            cfg = SimConfig(batch_step=batch_step, batch_drain_on_idle=drain)
            best = None
            res = None
            for _ in range(max(1, repeats)):
                sim = SimSpec("small-hetero", sched, config=cfg).simulator()
                t0 = time.perf_counter()
                r = sim.run(merged)
                wall = time.perf_counter() - t0
                if best is None or wall < best:
                    best, res = wall, r
            assert best is not None and res is not None
            sample = {
                "wall_s": best,
                "tasks_per_s": n_tasks / best,
                "makespan_us": res.makespan,
                "speedup_vs_committed":
                    (n_tasks / best) / COMMITTED_PER_EVENT_TASKS_PER_S,
            }
            if res.batch_stats is not None:
                sample["batch"] = dict(res.batch_stats)
            doc["variants"][name] = sample
    finally:
        gc.enable()
        gc.unfreeze()
    return doc


def format_light_stream(doc: dict) -> str:
    lines = [
        f"light stream: {doc['n_tasks']} tasks "
        f"({doc['n_jobs']} jobs x 20), build {doc['build_s']:.2f} s "
        f"({doc['build_speedup_vs_committed']:.1f}x committed), merge "
        f"{doc['merge_s']:.2f} s "
        f"({doc['merge_speedup_vs_committed']:.1f}x committed)"
    ]
    for name, s in doc["variants"].items():
        batch = s.get("batch")
        extra = (
            f", mean batch {batch['mean_batch']:.1f} "
            f"({batch['n_flushes']:.0f} flushes)" if batch else ""
        )
        lines.append(
            f"  {name}: {s['tasks_per_s']:.0f} tasks/s "
            f"({s['speedup_vs_committed']:.1f}x committed per-event "
            f"baseline {COMMITTED_PER_EVENT_TASKS_PER_S:.0f}){extra}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """Measure and optionally write the JSON doc (always exit 0: CI
    treats stream throughput as warn-only)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="write measurements to PATH")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--million",
        action="store_true",
        help="run the light stream at full scale (50000 jobs = 1M tasks); "
        "the default is a CI-sized slice scaled by REPRO_BENCH_SCALE",
    )
    args = parser.parse_args(argv)
    doc = {"workloads": {}}
    for n_jobs in (4, 12):
        m = measure_stream(n_jobs, repeats=args.repeats)
        doc["workloads"][f"poisson{n_jobs}"] = m
        print(
            f"poisson{n_jobs}: {m['n_tasks']} tasks, merge "
            f"{m['merge_s'] * 1e3:.1f} ms, run {m['wall_s'] * 1e3:.1f} ms "
            f"({m['tasks_per_s']:.0f} tasks/s)"
        )
    light_jobs = 50000 if args.million else max(250, int(1500 * bench_scale()))
    light = measure_light_stream(light_jobs, repeats=max(1, args.repeats - 1))
    doc["light_stream"] = light
    print(format_light_stream(light))
    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"measurements written to {args.json}")
    return 0


# -- pytest-benchmark guards -------------------------------------------------


def test_stream_throughput(benchmark):
    """Simulated tasks per wall-clock second through the stream facade."""
    n_jobs = max(4, int(8 * bench_scale()))
    stream = _stream(n_jobs)

    def run():
        res = simulate_stream(
            stream, "small-hetero", "multiprio", isolated_baseline=False
        )
        return len(res.jobs)

    assert benchmark(run) == n_jobs


def test_light_stream_batched_speedup(report):
    """The batched relaxed path must beat per-event MultiPrio on light
    streams, and its flushes must carry batch-size provenance."""
    doc = measure_light_stream(max(100, int(500 * bench_scale())), repeats=1)
    per_event = doc["variants"]["multiprio-per-event"]
    batched = doc["variants"]["multiqueue-batch500"]
    assert batched["tasks_per_s"] > per_event["tasks_per_s"]
    assert batched["batch"]["n_flushes"] > 0
    assert batched["batch"]["mean_batch"] >= 1.0
    report(format_light_stream(doc), "stream_light")


def test_stream_arrival_sweep(benchmark, report):
    """The arrival-rate experiment end to end (reduced grid)."""
    result = benchmark.pedantic(
        run_stream_experiment,
        kwargs={
            "rates": (40.0, 160.0),
            "schedulers": ("multiprio", "dmdas"),
            "n_jobs": max(4, int(6 * bench_scale())),
        },
        rounds=1,
        iterations=1,
    )
    for row in result.rows:
        assert row.makespan_us > 0.0
        assert 0.0 < row.fairness <= 1.0
        assert row.mean_slowdown >= 1.0 - 1e-9
    report(format_stream_experiment(result), "stream_arrivals")


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
