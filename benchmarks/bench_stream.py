"""Stream throughput bench: wall-clock cost of the online workload layer.

No paper counterpart — this guards the machinery added around the
engine, not a figure. It measures how fast the simulator chews through
a merged multi-job stream (simulated tasks per wall-clock second, and
the merge overhead itself), so a regression in the release-by-clock
reveal loop or in :func:`repro.workload.merge.merge_stream` shows up as
a throughput drop.

Standalone (the CI perf-smoke entry, warn-only)::

    python -m benchmarks.bench_stream --json bench_stream_ci.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from benchmarks.conftest import bench_scale
from repro.api import simulate_stream
from repro.apps.dense import cholesky_program, lu_program
from repro.experiments.stream_arrivals import (
    format_stream_experiment,
    run_stream_experiment,
)
from repro.workload.merge import merge_stream
from repro.workload.stream import poisson_stream


def _stream(n_jobs: int, rate: float = 120.0, seed: int = 0):
    return poisson_stream(
        [
            ("cholesky", lambda: cholesky_program(6, 512)),
            ("lu", lambda: lu_program(6, 512)),
        ],
        rate_jobs_per_s=rate,
        n_jobs=n_jobs,
        seed=seed,
        tenants=("tenant0", "tenant1"),
        name="bench",
    )


def measure_stream(n_jobs: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall times for merge and the full stream run."""
    stream = _stream(n_jobs)
    merge_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        merge_stream(stream)
        merge_s = min(merge_s, time.perf_counter() - t0)
    n_tasks = stream.n_tasks
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = simulate_stream(
            stream, "small-hetero", "multiprio", isolated_baseline=False
        )
        best = min(best, time.perf_counter() - t0)
        assert len(res.jobs) == n_jobs
    return {
        "n_jobs": n_jobs,
        "n_tasks": n_tasks,
        "merge_s": merge_s,
        "wall_s": best,
        "tasks_per_s": n_tasks / best,
    }


def main(argv=None) -> int:
    """Measure and optionally write the JSON doc (always exit 0: CI
    treats stream throughput as warn-only)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="write measurements to PATH")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    args = parser.parse_args(argv)
    doc = {"workloads": {}}
    for n_jobs in (4, 12):
        m = measure_stream(n_jobs, repeats=args.repeats)
        doc["workloads"][f"poisson{n_jobs}"] = m
        print(
            f"poisson{n_jobs}: {m['n_tasks']} tasks, merge "
            f"{m['merge_s'] * 1e3:.1f} ms, run {m['wall_s'] * 1e3:.1f} ms "
            f"({m['tasks_per_s']:.0f} tasks/s)"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"measurements written to {args.json}")
    return 0


# -- pytest-benchmark guards -------------------------------------------------


def test_stream_throughput(benchmark):
    """Simulated tasks per wall-clock second through the stream facade."""
    n_jobs = max(4, int(8 * bench_scale()))
    stream = _stream(n_jobs)

    def run():
        res = simulate_stream(
            stream, "small-hetero", "multiprio", isolated_baseline=False
        )
        return len(res.jobs)

    assert benchmark(run) == n_jobs


def test_stream_arrival_sweep(benchmark, report):
    """The arrival-rate experiment end to end (reduced grid)."""
    result = benchmark.pedantic(
        run_stream_experiment,
        kwargs={
            "rates": (40.0, 160.0),
            "schedulers": ("multiprio", "dmdas"),
            "n_jobs": max(4, int(6 * bench_scale())),
        },
        rounds=1,
        iterations=1,
    )
    for row in result.rows:
        assert row.makespan_us > 0.0
        assert 0.0 < row.fairness <= 1.0
        assert row.mean_slowdown >= 1.0 - 1e-9
    report(format_stream_experiment(result), "stream_arrivals")


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
