"""Engine micro-benchmarks: simulator throughput and heap operations.

Not a paper figure — these guard the simulator's own performance, which
bounds how large the reproduction workloads can grow.

Besides the pytest-benchmark guards, this module is runnable as a
script implementing the *recorded baseline* workflow::

    python -m benchmarks.bench_engine --record BENCH_engine.json   # pin
    python -m benchmarks.bench_engine --check  BENCH_engine.json   # compare

``--record`` measures the reference workloads and writes the numbers to
a JSON file (committed at the repo root as ``BENCH_engine.json``);
``--check`` re-measures and reports the speedup versus the recorded
baseline, warning (exit 0) or failing (``--fail-under``) on regression.
The headline metric is **scheduler-core time**: the wall time spent
inside ``push``/``pop``/``force_pop``, isolated from the rest of the
engine by instrumenting the scheduler instance, so it measures exactly
the code the paper's Alg. 1/2 correspond to.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchmarks.conftest import bench_scale
from repro.apps.dense import cholesky_program
from repro.core.heap import TaskHeap
from repro.platform.machines import intel_v100, small_hetero
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.task import Task, TaskState
from repro.schedulers.registry import make_scheduler
from repro.utils.rng import make_rng

#: Reference workloads of the recorded baseline: name -> (scheduler,
#: n_tiles, tile_size, batch_step).  The headline acceptance workload is
#: the paper's Fig. 4/5 shape at n_tiles=16 under MultiPrio; the
#: ``-batch500`` variants exercise the coalesced hot path (drain-on-idle
#: enabled, so decisions still land the moment a worker would starve)
#: and record batch-size provenance alongside the timings.
BASELINE_WORKLOADS: dict[str, tuple[str, int, int, float | None]] = {
    "cholesky16-multiprio": ("multiprio", 16, 960, None),
    "cholesky16-dmdas": ("dmdas", 16, 960, None),
    "cholesky16-multiqueue": ("multiqueue", 16, 960, None),
    "cholesky16-multiprio-batch500": ("multiprio", 16, 960, 500.0),
    "cholesky16-multiqueue-batch500": ("multiqueue", 16, 960, 500.0),
}


def instrument_scheduler(scheduler) -> dict[str, float]:
    """Wrap ``push``/``pop``/``force_pop`` with wall-clock accounting.

    Returns the live totals dict (``seconds``, ``calls``); the wrappers
    are installed on the *instance*, so the class stays untouched.
    """
    totals = {"seconds": 0.0, "calls": 0.0}
    perf = time.perf_counter
    for name in ("push", "pop", "force_pop"):
        orig = getattr(scheduler, name)

        def timed(*args, _orig=orig):
            t0 = perf()
            out = _orig(*args)
            totals["seconds"] += perf() - t0
            totals["calls"] += 1
            return out

        setattr(scheduler, name, timed)
    return totals


def measure_workload(
    scheduler_name: str,
    n_tiles: int,
    tile_size: int,
    *,
    repeats: int = 3,
    batch_step: float | None = None,
) -> dict[str, float]:
    """Best-of-``repeats`` timing of one reference workload.

    The minimum over repeats is the standard noise-robust estimator for
    deterministic code; both the scheduler-core seconds and the full
    simulation wall seconds come from the same (best) repeat.
    """
    program = cholesky_program(n_tiles, tile_size)
    machine = intel_v100(gpu_streams=1)
    platform = machine.platform()
    pm = AnalyticalPerfModel(machine.calibration())
    best: dict[str, float] | None = None
    for _ in range(max(1, repeats)):
        sched = make_scheduler(scheduler_name)
        totals = instrument_scheduler(sched)
        sim = Simulator(
            platform, sched, pm, seed=0, record_trace=False,
            batch_step=batch_step,
        )
        t0 = time.perf_counter()
        res = sim.run(program)
        wall = time.perf_counter() - t0
        sample = {
            "sched_core_s": totals["seconds"],
            "sched_calls": totals["calls"],
            "wall_s": wall,
            "n_tasks": float(res.n_tasks),
            "tasks_per_s": res.n_tasks / wall if wall > 0 else 0.0,
            "makespan_us": res.makespan,
        }
        if res.batch_stats is not None:
            sample["batch_step"] = float(batch_step or 0.0)
            sample["mean_batch"] = res.batch_stats["mean_batch"]
            sample["n_flushes"] = res.batch_stats["n_flushes"]
        if best is None or sample["sched_core_s"] < best["sched_core_s"]:
            best = sample
    assert best is not None
    return best


def run_baseline(repeats: int = 3) -> dict:
    """Measure every reference workload; returns the JSON document."""
    workloads = {}
    for name, (sched, n_tiles, tile, batch_step) in BASELINE_WORKLOADS.items():
        workloads[name] = measure_workload(
            sched, n_tiles, tile, repeats=repeats, batch_step=batch_step
        )
    return {
        "schema": 2,
        "python": sys.version.split()[0],
        "workloads": workloads,
    }


def check_against(baseline: dict, measured: dict, fail_under: float | None) -> int:
    """Compare a fresh measurement to the recorded baseline.

    Prints one line per workload with the scheduler-core speedup
    (baseline seconds / measured seconds — higher is better).  Returns a
    non-zero exit code only when ``fail_under`` is given and the
    headline MultiPrio workload regresses below it.
    """
    code = 0
    for name, base in baseline.get("workloads", {}).items():
        now = measured["workloads"].get(name)
        if now is None:
            print(f"{name}: not measured (workload removed?)")
            continue
        speedup = base["sched_core_s"] / now["sched_core_s"] if now["sched_core_s"] else float("inf")
        wall_x = base["wall_s"] / now["wall_s"] if now["wall_s"] else float("inf")
        drift = ""
        if base.get("makespan_us") and base["makespan_us"] != now["makespan_us"]:
            drift = f"  [MAKESPAN DRIFT {base['makespan_us']:.3f} -> {now['makespan_us']:.3f}us]"
        print(
            f"{name}: sched-core {now['sched_core_s'] * 1e3:.1f} ms "
            f"(baseline {base['sched_core_s'] * 1e3:.1f} ms, speedup {speedup:.2f}x); "
            f"wall {wall_x:.2f}x{drift}"
        )
        if fail_under is not None and speedup < fail_under:
            print(f"{name}: REGRESSION — speedup {speedup:.2f}x < required {fail_under:.2f}x")
            code = 1
    return code


def main(argv=None) -> int:
    """Entry point of the record/check baseline workflow."""
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", metavar="PATH", help="measure and write the baseline JSON")
    mode.add_argument("--check", metavar="PATH", help="measure and compare against a baseline")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        metavar="X",
        help="with --check: exit 1 if any workload's sched-core speedup drops below X",
    )
    args = parser.parse_args(argv)
    doc = run_baseline(repeats=args.repeats)
    if args.record:
        Path(args.record).write_text(json.dumps(doc, indent=2) + "\n")
        for name, w in doc["workloads"].items():
            print(f"{name}: sched-core {w['sched_core_s'] * 1e3:.1f} ms, wall {w['wall_s'] * 1e3:.1f} ms")
        print(f"baseline written to {args.record}")
        return 0
    baseline = json.loads(Path(args.check).read_text())
    return check_against(baseline, doc, args.fail_under)


# -- pytest-benchmark guards -------------------------------------------------


def test_simulator_throughput_multiprio(benchmark):
    """Tasks simulated per second under MultiPrio."""
    n_tiles = max(8, int(14 * bench_scale()))
    program = cholesky_program(n_tiles, 512)
    machine = small_hetero(n_cpus=6, n_gpus=2, gpu_streams=2)
    pm = AnalyticalPerfModel(machine.calibration())
    platform = machine.platform()

    def run():
        sim = Simulator(platform, make_scheduler("multiprio"), pm, seed=0,
                        record_trace=False)
        return sim.run(program).n_tasks

    n = benchmark(run)
    assert n == len(program)


def test_simulator_throughput_dmdas(benchmark):
    n_tiles = max(8, int(14 * bench_scale()))
    program = cholesky_program(n_tiles, 512)
    machine = small_hetero(n_cpus=6, n_gpus=2, gpu_streams=2)
    pm = AnalyticalPerfModel(machine.calibration())
    platform = machine.platform()

    def run():
        sim = Simulator(platform, make_scheduler("dmdas"), pm, seed=0,
                        record_trace=False)
        return sim.run(program).n_tasks

    n = benchmark(run)
    assert n == len(program)


def test_heap_insert_pop_throughput(benchmark):
    """Raw binary-heap churn: 5k inserts + 5k best/remove."""
    rng = make_rng(1)
    gains = rng.random(5000)
    prios = rng.random(5000)
    tasks = []
    for i in range(5000):
        t = Task(i, "k", implementations=("cpu",))
        t.state = TaskState.READY
        tasks.append(t)

    def run():
        heap = TaskHeap()
        for t, g, p in zip(tasks, gains, prios):
            heap.insert(t, float(g), float(p))
        drained = 0
        while len(heap):
            heap.remove(heap.best())
            drained += 1
        return drained

    assert benchmark(run) == 5000


if __name__ == "__main__":  # pragma: no cover - exercised via CI perf-smoke
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    sys.exit(main())
