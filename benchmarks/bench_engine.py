"""Engine micro-benchmarks: simulator throughput and heap operations.

Not a paper figure — these guard the simulator's own performance, which
bounds how large the reproduction workloads can grow.
"""

from benchmarks.conftest import bench_scale
from repro.apps.dense import cholesky_program
from repro.core.heap import TaskHeap
from repro.platform.machines import small_hetero
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.task import Task, TaskState
from repro.schedulers.registry import make_scheduler
from repro.utils.rng import make_rng


def test_simulator_throughput_multiprio(benchmark):
    """Tasks simulated per second under MultiPrio."""
    n_tiles = max(8, int(14 * bench_scale()))
    program = cholesky_program(n_tiles, 512)
    machine = small_hetero(n_cpus=6, n_gpus=2, gpu_streams=2)
    pm = AnalyticalPerfModel(machine.calibration())
    platform = machine.platform()

    def run():
        sim = Simulator(platform, make_scheduler("multiprio"), pm, seed=0,
                        record_trace=False)
        return sim.run(program).n_tasks

    n = benchmark(run)
    assert n == len(program)


def test_simulator_throughput_dmdas(benchmark):
    n_tiles = max(8, int(14 * bench_scale()))
    program = cholesky_program(n_tiles, 512)
    machine = small_hetero(n_cpus=6, n_gpus=2, gpu_streams=2)
    pm = AnalyticalPerfModel(machine.calibration())
    platform = machine.platform()

    def run():
        sim = Simulator(platform, make_scheduler("dmdas"), pm, seed=0,
                        record_trace=False)
        return sim.run(program).n_tasks

    n = benchmark(run)
    assert n == len(program)


def test_heap_insert_pop_throughput(benchmark):
    """Raw binary-heap churn: 5k inserts + 5k best/remove."""
    rng = make_rng(1)
    gains = rng.random(5000)
    prios = rng.random(5000)
    tasks = []
    for i in range(5000):
        t = Task(i, "k", implementations=("cpu",))
        t.state = TaskState.READY
        tasks.append(t)

    def run():
        heap = TaskHeap()
        for t, g, p in zip(tasks, gains, prios):
            heap.insert(t, float(g), float(p))
        drained = 0
        while len(heap):
            heap.remove(heap.best())
            drained += 1
        return drained

    assert benchmark(run) == 5000
