"""Energy subsystem bench (the paper's Section VII future work).

Three guards around the power/energy stack:

* the classic policy comparison — baseline MultiPrio against the
  energy-aware variant on the FMM workload: the variant shifts work
  toward the ~20x-leaner CPU cores when the energy trade is
  favourable, saving joules within a bounded makespan premium;
* the *metering gate* — attaching a passive
  :class:`~repro.runtime.power.PowerStateModel` adds admission, booking
  and charging calls to the engine's hot path; the wall-clock cost must
  stay small, and the joules-per-wall-second figure documents metering
  throughput;
* the *EDP scoring overhead* — ``multiprio-edp``'s admission test costs
  two extra estimates and a power lookup per rejected pop; its
  wall-clock premium over plain ``multiprio`` is recorded (warn-only).

Standalone (the CI perf-smoke entry, warn-only)::

    python -m benchmarks.bench_energy --json bench_energy_ci.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from benchmarks.conftest import bench_scale
from repro.api import SimConfig, simulate_stream
from repro.apps.fmm import fmm_program
from repro.core.multiprio import MultiPrio
from repro.experiments.energy_pareto import energy_workload
from repro.experiments.reporting import format_table
from repro.extensions.energy import EnergyAwareMultiPrio, energy_of_result
from repro.platform.machines import intel_v100
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.power import PowerStateModel


def _stream(n_jobs: int, seed: int = 0, rate: float = 300.0):
    return energy_workload(
        rate_jobs_per_s=rate, n_tenants=4, n_jobs=n_jobs, seed=seed,
    )


def _run(stream, scheduler: str = "multiprio", **cfg_kwargs):
    return simulate_stream(
        stream, "small-hetero", scheduler,
        isolated_baseline=False, config=SimConfig(**cfg_kwargs),
    )


def measure_metering(n_jobs: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall times: plain vs power-metered.

    The metering model is bit-identical to ``power=None`` by
    construction (the ``power`` differential of ``repro check`` proves
    it); here we price the admission/booking/charging hooks themselves
    and record the simulated joules metered per wall-clock second.
    """
    stream = _stream(n_jobs)
    n_tasks = stream.n_tasks

    def best_of(**cfg_kwargs) -> tuple[float, object]:
        best, res = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = _run(stream, **cfg_kwargs)
            dt = time.perf_counter() - t0
            if dt < best:
                best, res = dt, out
        return best, res

    plain_s, _ = best_of()
    metered_s, metered = best_of(power=PowerStateModel.metering())
    joules = metered.sim.energy.total_j
    return {
        "n_jobs": n_jobs,
        "n_tasks": n_tasks,
        "plain_s": plain_s,
        "metered_s": metered_s,
        "metering_gate_frac":
            (metered_s - plain_s) / plain_s if plain_s else 0.0,
        "total_energy_j": joules,
        "joules_per_wall_s": joules / metered_s if metered_s else 0.0,
        "tasks_per_s": n_tasks / plain_s if plain_s else 0.0,
    }


def measure_edp_overhead(n_jobs: int, repeats: int = 3) -> dict:
    """Wall-clock premium of EDP-scored admission over plain MultiPrio.

    ``multiprio-edp`` pays two perf-model estimates and two power
    lookups per backlog-rejected pop; the fraction documents what that
    costs on the scheduler's hot path (warn-only in CI).
    """
    stream = _stream(n_jobs)

    def best_of(scheduler: str) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            _run(stream, scheduler=scheduler)
            best = min(best, time.perf_counter() - t0)
        return best

    base_s = best_of("multiprio")
    edp_s = best_of("multiprio-edp")
    return {
        "n_jobs": n_jobs,
        "n_tasks": stream.n_tasks,
        "multiprio_s": base_s,
        "multiprio_edp_s": edp_s,
        "edp_overhead_frac": (edp_s - base_s) / base_s if base_s else 0.0,
    }


def main(argv=None) -> int:
    """Measure and optionally write the JSON doc (always exit 0: CI
    treats energy machinery cost as warn-only)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="write measurements to PATH")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    args = parser.parse_args(argv)
    doc = {"metering": {}, "edp": {}}
    for n_jobs in (8, 24):
        m = measure_metering(n_jobs, repeats=args.repeats)
        doc["metering"][f"energy{n_jobs}"] = m
        print(
            f"energy{n_jobs}: {m['n_tasks']} tasks, plain "
            f"{m['plain_s'] * 1e3:.1f} ms, metering gate "
            f"{m['metering_gate_frac'] * 100:+.1f}% "
            f"({m['joules_per_wall_s']:.1f} J metered/s, "
            f"{m['tasks_per_s']:.0f} tasks/s)"
        )
    e = measure_edp_overhead(24, repeats=args.repeats)
    doc["edp"]["energy24"] = e
    print(
        f"edp energy24: multiprio {e['multiprio_s'] * 1e3:.1f} ms vs "
        f"multiprio-edp {e['multiprio_edp_s'] * 1e3:.1f} ms "
        f"({e['edp_overhead_frac'] * 100:+.1f}% sched-core overhead)"
    )
    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"measurements written to {args.json}")
    return 0


# -- pytest-benchmark guards -------------------------------------------------


def test_energy_aware_multiprio(benchmark, report):
    program = fmm_program(
        n_particles=int(100_000 * bench_scale()),
        height=5,
        distribution="ellipsoid",
        seed=7,
    )
    machine = intel_v100(4)

    def sweep():
        out = {}
        for label, sched in (
            ("multiprio", MultiPrio()),
            ("multiprio-energy", EnergyAwareMultiPrio()),
        ):
            sim = Simulator(
                machine.platform(),
                sched,
                AnalyticalPerfModel(machine.calibration(), noise_sigma=0.15),
                seed=0,
                record_trace=False,
            )
            res = sim.run(program)
            out[label] = (res.makespan, energy_of_result(res, sim.platform))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["scheduler", "makespan ms", "energy J"],
            [[k, f"{ms / 1e3:.2f}", f"{joules:.2f}"] for k, (ms, joules) in results.items()],
            title="Energy-aware MultiPrio (FMM, intel-v100)",
        ),
        "energy_aware",
    )
    base_ms, base_j = results["multiprio"]
    ener_ms, ener_j = results["multiprio-energy"]
    assert ener_j <= base_j * 1.02
    assert ener_ms <= base_ms * 1.30


def test_energy_metering_bit_identity(report):
    """The metering power model must not move the schedule, and the
    engine's joule total must match the post-hoc conversion exactly."""
    stream = _stream(max(4, int(8 * bench_scale())))
    plain = _run(stream)
    metered = _run(stream, power=PowerStateModel.metering())
    assert metered.makespan_us == plain.makespan_us
    energy = metered.sim.energy
    assert energy is not None
    report(
        json.dumps({
            "makespan_us": metered.makespan_us,
            "total_energy_j": energy.total_j,
            "busy_j": energy.busy_j,
            "idle_j": energy.idle_j,
        }, indent=2),
        "energy_metering",
    )


if __name__ == "__main__":
    raise SystemExit(main())
