"""Energy extension bench (the paper's Section VII future work).

Compares baseline MultiPrio against the energy-aware variant on the FMM
workload: the variant shifts work toward the ~20x-leaner CPU cores when
the energy trade is favourable. Asserted envelope: it saves energy (or
breaks even) while staying within 30% of the baseline makespan.
"""

from benchmarks.conftest import bench_scale
from repro.apps.fmm import fmm_program
from repro.core.multiprio import MultiPrio
from repro.experiments.reporting import format_table
from repro.extensions.energy import EnergyAwareMultiPrio, energy_of_result
from repro.platform.machines import intel_v100
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel


def test_energy_aware_multiprio(benchmark, report):
    program = fmm_program(
        n_particles=int(100_000 * bench_scale()),
        height=5,
        distribution="ellipsoid",
        seed=7,
    )
    machine = intel_v100(4)

    def sweep():
        out = {}
        for label, sched in (
            ("multiprio", MultiPrio()),
            ("multiprio-energy", EnergyAwareMultiPrio()),
        ):
            sim = Simulator(
                machine.platform(),
                sched,
                AnalyticalPerfModel(machine.calibration(), noise_sigma=0.15),
                seed=0,
                record_trace=False,
            )
            res = sim.run(program)
            out[label] = (res.makespan, energy_of_result(res, sim.platform))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["scheduler", "makespan ms", "energy J"],
            [[k, f"{ms / 1e3:.2f}", f"{joules:.2f}"] for k, (ms, joules) in results.items()],
            title="Energy-aware MultiPrio (FMM, intel-v100)",
        ),
        "energy_aware",
    )
    base_ms, base_j = results["multiprio"]
    ener_ms, ener_j = results["multiprio-energy"]
    assert ener_j <= base_j * 1.02
    assert ener_ms <= base_ms * 1.30
