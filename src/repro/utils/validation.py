"""Argument validation helpers and the repository exception hierarchy."""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation."""


class SchedulingError(ReproError, RuntimeError):
    """A scheduler produced an inconsistent decision (e.g. popped a task
    twice or assigned a task to a worker that cannot execute it)."""


class DeadlockError(ReproError, RuntimeError):
    """The simulation stopped making progress with unfinished tasks."""


class InvariantError(ReproError, RuntimeError):
    """The opt-in invariant checker (:mod:`repro.check`) found the engine
    or a scheduler violating one of its structural contracts (MSI
    coherence, link-clock monotonicity, task conservation, ...)."""


class FaultError(ReproError, RuntimeError):
    """Base class for unrecoverable injected-fault outcomes."""


class DataLossError(FaultError):
    """A fail-stop worker failure destroyed the sole valid replica of a
    handle that an unfinished task still needs to read."""


class RetryExhaustedError(FaultError):
    """A task kept failing transiently past the configured retry cap."""


def check_positive(name: str, value: float) -> float:
    """Validate ``value > 0``; returns the value for inline use."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Validate ``value >= 0``; returns the value for inline use."""
    if not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Validate ``lo <= value <= hi``; returns the value for inline use."""
    if not (lo <= value <= hi):
        raise ValidationError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Validate ``isinstance(value, expected)``; returns the value."""
    if not isinstance(value, expected):
        exp = (
            expected.__name__
            if isinstance(expected, type)
            else "/".join(t.__name__ for t in expected)
        )
        raise ValidationError(f"{name} must be {exp}, got {type(value).__name__}")
    return value
