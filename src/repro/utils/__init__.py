"""Small shared utilities: units, RNG handling, validation helpers."""

from repro.utils.units import (
    US_PER_MS,
    US_PER_S,
    KIB,
    MIB,
    GIB,
    us_to_ms,
    us_to_s,
    ms_to_us,
    s_to_us,
    bytes_human,
    time_human,
    gflops,
)
from repro.utils.rng import make_rng, derive_rng
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    ReproError,
    ValidationError,
    SchedulingError,
    DeadlockError,
)

__all__ = [
    "US_PER_MS",
    "US_PER_S",
    "KIB",
    "MIB",
    "GIB",
    "us_to_ms",
    "us_to_s",
    "ms_to_us",
    "s_to_us",
    "bytes_human",
    "time_human",
    "gflops",
    "make_rng",
    "derive_rng",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "ReproError",
    "ValidationError",
    "SchedulingError",
    "DeadlockError",
]
