"""Unit conventions used across the simulator.

All simulated times are in **microseconds** (float). All data sizes are in
**bytes** (int). All computational work is in **flops** (float). These
helpers convert to and from human-facing units and format quantities for
reports.
"""

from __future__ import annotations

US_PER_MS: float = 1_000.0
US_PER_S: float = 1_000_000.0

KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB


def us_to_ms(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / US_PER_MS


def us_to_s(us: float) -> float:
    """Convert microseconds to seconds."""
    return us / US_PER_S


def ms_to_us(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * US_PER_MS


def s_to_us(s: float) -> float:
    """Convert seconds to microseconds."""
    return s * US_PER_S


def gflops(flops: float, time_us: float) -> float:
    """Achieved GFlop/s given total flops and elapsed time in microseconds.

    Returns 0.0 for non-positive durations so callers can report empty runs
    without special-casing.
    """
    if time_us <= 0.0:
        return 0.0
    return flops / (time_us * 1e-6) / 1e9


def bytes_human(n: int) -> str:
    """Format a byte count using binary prefixes, e.g. ``7.5 MiB``."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def time_human(us: float) -> str:
    """Format a duration in microseconds with an adaptive unit."""
    if us < 1_000.0:
        return f"{us:.1f} us"
    if us < US_PER_S:
        return f"{us / US_PER_MS:.2f} ms"
    return f"{us / US_PER_S:.3f} s"
