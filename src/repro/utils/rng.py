"""Deterministic random-number handling.

Every stochastic component in the repository receives an explicit
:class:`numpy.random.Generator`. Experiments derive per-component streams
from a single master seed so that a full benchmark grid is reproducible
bit-for-bit while the individual runs stay statistically independent.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0x5EED_2024


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a Generator.

    Accepts ``None`` (use the repository-wide default seed), an integer
    seed, or an existing generator (returned unchanged so call sites can be
    agnostic about what they were handed).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive an independent child stream from ``rng`` and a key path.

    String keys are hashed stably (not with ``hash()``, which is salted per
    process) so derived streams are reproducible across runs.
    """
    material: list[int] = []
    for key in keys:
        if isinstance(key, str):
            acc = 0
            for ch in key:
                acc = (acc * 131 + ord(ch)) % (2**63)
            material.append(acc)
        else:
            material.append(int(key) % (2**63))
    seed_seq = np.random.SeedSequence(
        entropy=int(rng.integers(0, 2**63)), spawn_key=tuple(material)
    )
    return np.random.default_rng(seed_seq)
