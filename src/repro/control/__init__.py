"""Overload control for multi-tenant job streams.

``repro.control`` keeps a simulated node alive under arbitrary
overload: a token-bucket :class:`QuotaAccountant` charges each tenant
for admitted work, the :class:`ControlPlane` accepts / delays / sheds
arriving jobs against per-tenant credit and a global in-flight budget,
and three priority classes (``guaranteed`` / ``burstable`` /
``best-effort``) decide who is protected, who backs off, and whose
unstarted work is evicted when a guaranteed job needs room. Outcomes
surface as :class:`ControlResult` on
:func:`repro.api.simulate_stream`'s stream result and as
``repro.obs`` job events.

With :meth:`ControlConfig.unlimited` the whole subsystem is a
structural no-op, bit-identical to the uncontrolled engine — the
property ``repro check`` verifies differentially.
"""

from repro.control.plane import (
    QOS_CLASSES,
    ControlConfig,
    ControlPlane,
    Decision,
    default_overload_config,
)
from repro.control.quota import QuotaAccountant, TenantQuota
from repro.control.result import ControlResult, JobOutcome

__all__ = [
    "QOS_CLASSES",
    "ControlConfig",
    "ControlPlane",
    "ControlResult",
    "Decision",
    "JobOutcome",
    "QuotaAccountant",
    "TenantQuota",
    "default_overload_config",
]
