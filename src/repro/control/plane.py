"""The admission controller: accept / delay / shed / evict decisions.

The :class:`ControlPlane` sits between a merged job stream and the
engine's reveal loop. When the STF submission pointer reaches a job's
first task, the engine asks :meth:`ControlPlane.decide`; the verdict is
one of

``accept``
    The job is admitted: its estimated work is charged to the tenant's
    token bucket (:mod:`repro.control.quota`) and added to the global
    in-flight budget. Guaranteed-class jobs are *always* accepted —
    under overload they may carry a list of best-effort jobs to evict
    first (the engine cancels those jobs' unstarted tasks).
``delay``
    The job is pushed back: the engine bumps the job's release times to
    ``retry_at`` (bounded exponential backoff) and re-decides when the
    clock gets there. Only burstable jobs are delayed, at most
    ``max_delays`` times. Because release times gate the reveal pointer,
    a delayed job blocks later arrivals — deliberate head-of-line
    backpressure mirroring a single STF submission thread.
``shed``
    The job is rejected outright: every task is cancelled before any
    ran. Best-effort jobs are shed on the first refusal; burstable jobs
    once their delay budget is spent. Guaranteed jobs are never shed.

The plane never touches engine randomness or link state, and with
:meth:`ControlConfig.unlimited` every decision is ``accept`` with no
side effects — a controlled run is then bit-identical to an
uncontrolled one (verified by ``repro check``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.control.quota import QuotaAccountant, TenantQuota
from repro.utils.validation import ValidationError
from repro.workload.stream import QOS_CLASSES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.perfmodel import PerfModel
    from repro.workload.merge import StreamProgram


@dataclass(frozen=True)
class ControlConfig:
    """Tuning knobs of the control plane.

    ``max_inflight_us`` is the global budget: total estimated work-µs of
    admitted-but-unfinished jobs the node will carry (``None`` =
    unbounded). ``backoff_us * backoff_factor**k`` (capped at
    ``max_backoff_us``) is the k-th delay of a burstable job, and
    ``max_delays`` bounds k before the job is shed. ``slo_slowdown`` is
    the deadline proxy: a completed job whose slowdown exceeds it counts
    as an SLO miss in :class:`~repro.control.result.ControlResult`.
    """

    quotas: Mapping[str, TenantQuota] = field(default_factory=dict)
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    max_inflight_us: float | None = None
    backoff_us: float = 1000.0
    backoff_factor: float = 2.0
    max_backoff_us: float = 16000.0
    max_delays: int = 4
    evict_on_overload: bool = True
    slo_slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.max_inflight_us is not None and self.max_inflight_us <= 0:
            raise ValidationError(
                f"max_inflight_us must be > 0 or None, got {self.max_inflight_us}"
            )
        if self.backoff_us <= 0 or self.backoff_factor < 1.0:
            raise ValidationError(
                "backoff_us must be > 0 and backoff_factor >= 1, got "
                f"{self.backoff_us}/{self.backoff_factor}"
            )
        if self.max_backoff_us < self.backoff_us:
            raise ValidationError(
                f"max_backoff_us {self.max_backoff_us} below backoff_us "
                f"{self.backoff_us}"
            )
        if self.max_delays < 0:
            raise ValidationError(f"max_delays must be >= 0, got {self.max_delays}")
        if self.slo_slowdown <= 0:
            raise ValidationError(f"slo_slowdown must be > 0, got {self.slo_slowdown}")

    @classmethod
    def unlimited(cls) -> "ControlConfig":
        """The structural no-op: infinite credits, no global budget, no
        eviction. Guaranteed bit-identical to an uncontrolled run."""
        return cls(
            default_quota=TenantQuota(),
            max_inflight_us=None,
            evict_on_overload=False,
        )


@dataclass(frozen=True)
class Decision:
    """One admission verdict handed back to the engine."""

    action: str  # "accept" | "delay" | "shed"
    retry_at_us: float = 0.0
    evict_jids: tuple[int, ...] = ()
    reason: str = ""
    #: How many delays the job has absorbed so far (event provenance).
    attempt: int = 0
    #: The job's estimated work in µs (event provenance).
    cost_us: float = 0.0


class JobRecord:
    """Mutable per-job control state (internal to the plane)."""

    __slots__ = (
        "jid", "name", "tenant", "qos", "arrival_us", "n_tasks", "cost_us",
        "status", "n_delays", "first_decided_us", "admitted_us", "settled_us",
        "remaining_us", "n_left", "n_cancelled", "shed_reason", "admit_seq",
    )

    def __init__(self, jid, name, tenant, qos, arrival_us, n_tasks, cost_us):
        self.jid = jid
        self.name = name
        self.tenant = tenant
        self.qos = qos
        self.arrival_us = arrival_us
        self.n_tasks = n_tasks
        self.cost_us = cost_us
        #: pending -> admitted -> done, or pending -> shed,
        #: or admitted -> evicted.
        self.status = "pending"
        self.n_delays = 0
        self.first_decided_us: float | None = None
        self.admitted_us: float | None = None
        self.settled_us: float | None = None
        self.remaining_us = 0.0
        self.n_left = n_tasks
        self.n_cancelled = 0
        self.shed_reason = ""
        self.admit_seq = -1


class ControlPlane:
    """Stateful admission controller bound to one engine run.

    The engine calls :meth:`begin_run` once (costing every job from the
    run's perf model), :meth:`decide` each time the reveal pointer hits
    an undecided job, and :meth:`on_task_done` /
    :meth:`on_task_cancelled` as tasks settle. :meth:`audit` re-derives
    the credit-conservation invariants for :mod:`repro.check`.
    """

    def __init__(self, config: ControlConfig | None = None) -> None:
        self.config = config if config is not None else ControlConfig()
        self.accountant = QuotaAccountant(
            self.config.quotas, self.config.default_quota
        )
        self._records: dict[int, JobRecord] = {}
        self._rec_of_tid: dict[int, JobRecord] = {}
        self._cost_of_tid: dict[int, float] = {}
        self.inflight_us = 0.0
        self._admit_seq = 0
        self.n_arrived = 0
        self.n_delays_total = 0
        self._violations: list[str] = []

    # -- run lifecycle -----------------------------------------------------

    def begin_run(
        self,
        program: "StreamProgram",
        perfmodel: "PerfModel",
        archs: Sequence[str],
    ) -> None:
        """Bind one merged stream: cost every job as Σ min-arch δ(t)."""
        self.accountant = QuotaAccountant(
            self.config.quotas, self.config.default_quota
        )
        self._records.clear()
        self._rec_of_tid.clear()
        self._cost_of_tid.clear()
        self.inflight_us = 0.0
        self._admit_seq = 0
        self.n_arrived = 0
        self.n_delays_total = 0
        self._violations = []
        archs = tuple(archs)
        for span in program.jobs:
            cost = 0.0
            rec = JobRecord(
                span.jid, span.name, span.tenant,
                getattr(span, "qos", "burstable"),
                span.arrival_us, span.n_tasks, 0.0,
            )
            for tid in range(span.first_tid, span.first_tid + span.n_tasks):
                task = program.tasks[tid]
                dmin = min(
                    perfmodel.estimate(task, a) for a in archs if task.can_exec(a)
                )
                cost += dmin
                self._cost_of_tid[tid] = dmin
                self._rec_of_tid[tid] = rec
            rec.cost_us = cost
            self._records[span.jid] = rec

    # -- the decision ------------------------------------------------------

    def decide(self, jid: int, now: float) -> Decision:
        """Admission verdict for job ``jid`` at virtual time ``now``."""
        cfg = self.config
        rec = self._records[jid]
        if rec.first_decided_us is None:
            rec.first_decided_us = now
            self.n_arrived += 1
        cost = rec.cost_us
        fits = (
            cfg.max_inflight_us is None
            or self.inflight_us + cost <= cfg.max_inflight_us + 1e-9
        )
        if rec.qos == "guaranteed":
            evict: tuple[int, ...] = ()
            if not fits and cfg.evict_on_overload:
                evict = self._pick_evictions(cost, now)
            self._admit(rec, now)
            return Decision(
                "accept", evict_jids=evict, attempt=rec.n_delays, cost_us=cost
            )
        affordable = self.accountant.can_afford(rec.tenant, cost, now)
        if affordable and fits:
            self._admit(rec, now)
            return Decision("accept", attempt=rec.n_delays, cost_us=cost)
        reason = "quota" if not affordable else "budget"
        if rec.qos == "burstable" and rec.n_delays < cfg.max_delays:
            backoff = min(
                cfg.max_backoff_us,
                cfg.backoff_us * cfg.backoff_factor ** rec.n_delays,
            )
            rec.n_delays += 1
            self.n_delays_total += 1
            return Decision(
                "delay", retry_at_us=now + backoff, reason=reason,
                attempt=rec.n_delays, cost_us=cost,
            )
        self._shed(rec, now, reason)
        return Decision("shed", reason=rec.shed_reason)

    def _admit(self, rec: JobRecord, now: float) -> None:
        self.accountant.charge(rec.tenant, rec.cost_us, now)
        rec.status = "admitted"
        rec.admitted_us = now
        rec.remaining_us = rec.cost_us
        rec.admit_seq = self._admit_seq
        self._admit_seq += 1
        self.inflight_us += rec.cost_us

    def _shed(self, rec: JobRecord, now: float, reason: str) -> None:
        if rec.qos == "guaranteed":  # structurally unreachable; audited anyway
            self._violations.append(
                f"guaranteed job j{rec.jid} ({rec.tenant}) was shed ({reason})"
            )
        rec.status = "shed"
        rec.settled_us = now
        rec.shed_reason = (
            f"{reason}-exhausted-after-{rec.n_delays}-delays"
            if rec.n_delays else reason
        )

    def _pick_evictions(self, cost_needed: float, now: float) -> tuple[int, ...]:
        """Evict best-effort jobs (newest admission first) until the
        incoming guaranteed job fits the global budget."""
        cfg = self.config
        assert cfg.max_inflight_us is not None
        headroom = cfg.max_inflight_us - self.inflight_us
        victims = [
            r for r in self._records.values()
            if r.status == "admitted" and r.qos == "best-effort"
            and r.remaining_us > 0.0
        ]
        victims.sort(key=lambda r: r.admit_seq, reverse=True)
        chosen: list[int] = []
        for rec in victims:
            if headroom + 1e-9 >= cost_needed:
                break
            headroom += rec.remaining_us
            self._evict(rec, now)
            chosen.append(rec.jid)
        return tuple(chosen)

    def _evict(self, rec: JobRecord, now: float) -> None:
        self.inflight_us -= rec.remaining_us
        if self.inflight_us < 1e-9:
            self.inflight_us = 0.0
        rec.remaining_us = 0.0
        rec.status = "evicted"
        rec.settled_us = now

    # -- task settlement ---------------------------------------------------

    def on_task_done(self, tid: int, now: float) -> None:
        """A task of a controlled job completed."""
        rec = self._rec_of_tid.get(tid)
        if rec is None:
            return
        rec.n_left -= 1
        if rec.status == "admitted":
            cost = self._cost_of_tid[tid]
            rec.remaining_us = max(0.0, rec.remaining_us - cost)
            self.inflight_us = max(0.0, self.inflight_us - cost)
            if rec.n_left == 0:
                rec.status = "done"
                rec.settled_us = now
        # Evicted jobs' already-running tasks drain without accounting:
        # their remaining work was returned to the budget at eviction.

    def on_task_cancelled(self, tid: int, now: float) -> None:
        """A task of a controlled job was cancelled (shed or evicted)."""
        rec = self._rec_of_tid.get(tid)
        if rec is None:
            return
        rec.n_left -= 1
        rec.n_cancelled += 1

    # -- reporting & auditing ----------------------------------------------

    def records(self) -> tuple[JobRecord, ...]:
        """Every job's control record, in jid order."""
        return tuple(self._records[j] for j in sorted(self._records))

    def counters(self) -> dict[str, int]:
        """Aggregate decision counters."""
        by_status: dict[str, int] = {}
        for rec in self._records.values():
            by_status[rec.status] = by_status.get(rec.status, 0) + 1
        return {
            "arrived": self.n_arrived,
            "admitted": (
                by_status.get("admitted", 0) + by_status.get("done", 0)
                + by_status.get("evicted", 0)
            ),
            "completed": by_status.get("done", 0),
            "rejected": by_status.get("shed", 0),
            "evicted": by_status.get("evicted", 0),
            "delays": self.n_delays_total,
            "pending": by_status.get("pending", 0),
        }

    def audit(self) -> list[str]:
        """Credit-conservation invariants, re-derived from scratch.

        * every decided job is admitted, shed, or pending another delay
          (``arrived == admitted + rejected + delayed``);
        * evicted/completed jobs were admitted first (status machine);
        * the in-flight gauge equals the sum of admitted jobs' remaining
          work;
        * no guaranteed job was ever shed;
        * no token bucket exceeds its burst capacity.
        """
        out = list(self._violations)
        n_seen = n_admitted = n_shed = n_pending = 0
        inflight = 0.0
        for rec in self._records.values():
            if rec.first_decided_us is None:
                continue
            n_seen += 1
            if rec.status in ("admitted", "done", "evicted"):
                n_admitted += 1
            elif rec.status == "shed":
                n_shed += 1
                if rec.qos == "guaranteed":
                    out.append(
                        f"guaranteed job j{rec.jid} has status 'shed'"
                    )
            elif rec.status == "pending":
                n_pending += 1
                if rec.n_delays == 0:
                    out.append(
                        f"job j{rec.jid} was decided but is pending with "
                        f"no delay recorded: the decision leaked"
                    )
            else:
                out.append(f"job j{rec.jid} has unknown status {rec.status!r}")
            if rec.status == "admitted":
                inflight += rec.remaining_us
            if rec.n_left < 0 or rec.n_cancelled > rec.n_tasks:
                out.append(
                    f"job j{rec.jid} task accounting corrupt: n_left="
                    f"{rec.n_left}, n_cancelled={rec.n_cancelled}/{rec.n_tasks}"
                )
        if n_seen != n_admitted + n_shed + n_pending:
            out.append(
                f"credit conservation broken: {n_seen} decided jobs != "
                f"{n_admitted} admitted + {n_shed} shed + {n_pending} delayed"
            )
        if n_seen != self.n_arrived:
            out.append(
                f"arrival counter {self.n_arrived} disagrees with "
                f"{n_seen} first-decided records"
            )
        if not math.isinf(inflight) and abs(inflight - self.inflight_us) > max(
            1e-6, 1e-9 * abs(inflight)
        ):
            out.append(
                f"in-flight gauge {self.inflight_us:.3f}us diverges from the "
                f"sum of admitted jobs' remaining work {inflight:.3f}us"
            )
        cfg = self.config
        if cfg.max_inflight_us is not None and self.inflight_us > (
            cfg.max_inflight_us + 1e-6
        ):
            # Only guaranteed overdraft may exceed the budget; verify the
            # excess is attributable to guaranteed jobs.
            g_work = sum(
                r.remaining_us for r in self._records.values()
                if r.status == "admitted" and r.qos == "guaranteed"
            )
            if self.inflight_us - g_work > cfg.max_inflight_us + 1e-6:
                out.append(
                    f"in-flight work {self.inflight_us:.1f}us exceeds the "
                    f"budget {cfg.max_inflight_us:.1f}us beyond what "
                    f"guaranteed-class overdraft ({g_work:.1f}us) explains"
                )
        out.extend(self.accountant.audit())
        return out


def default_overload_config(
    *,
    tenants: Sequence[str],
    sustainable_work_per_s: float,
    share: float = 1.0,
    burst_jobs: float = 2.0,
    job_cost_us: float = 1.0,
    max_inflight_jobs: float = 8.0,
    slo_slowdown: float = 4.0,
) -> ControlConfig:
    """A reasonable config for overload experiments.

    Each tenant gets ``share / len(tenants)`` of the node's sustainable
    service rate (``sustainable_work_per_s``, task-seconds of work per
    second) and a burst of ``burst_jobs`` typical jobs; the global
    budget carries ``max_inflight_jobs`` typical jobs of estimated work.
    """
    if not tenants:
        raise ValidationError("default_overload_config needs >= 1 tenant")
    per_tenant = TenantQuota(
        rate=share * sustainable_work_per_s / len(tenants),
        burst=max(1e-6, burst_jobs * job_cost_us / 1e6),
    )
    return ControlConfig(
        default_quota=per_tenant,
        max_inflight_us=max_inflight_jobs * job_cost_us,
        slo_slowdown=slo_slowdown,
    )


__all__ = [
    "QOS_CLASSES",
    "ControlConfig",
    "ControlPlane",
    "Decision",
    "JobRecord",
    "default_overload_config",
]
