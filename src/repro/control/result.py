"""Per-tenant / per-class SLO reporting for controlled stream runs.

:class:`ControlResult` is attached to
:class:`~repro.workload.results.StreamResult` by
:func:`repro.api.simulate_stream` when a control plane was active. It
carries one typed :class:`JobOutcome` per job of the stream — completed,
rejected (shed) or evicted — plus rollups: p99 slowdown, SLO
(deadline-proxy) miss rate, rejection and eviction rates, per tenant
and per priority class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.analysis.stats import percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.plane import ControlPlane
    from repro.workload.results import JobResult


@dataclass(frozen=True)
class JobOutcome:
    """Final control-plane fate of one job.

    ``status`` is ``"completed"``, ``"rejected"`` (shed at admission) or
    ``"evicted"`` (admitted, then preempted under overload — its
    already-running tasks drained, its unstarted tasks were cancelled).
    ``latency_us``/``slowdown`` are ``None`` unless the job completed
    (and, for slowdown, isolated baselines were run).
    """

    jid: int
    name: str
    tenant: str
    qos: str
    status: str
    arrival_us: float
    cost_us: float
    n_tasks: int
    n_delays: int = 0
    n_cancelled_tasks: int = 0
    shed_reason: str = ""
    admitted_us: float | None = None
    settled_us: float | None = None
    latency_us: float | None = None
    slowdown: float | None = None

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready mapping."""
        return {
            "jid": self.jid,
            "name": self.name,
            "tenant": self.tenant,
            "qos": self.qos,
            "status": self.status,
            "arrival_us": self.arrival_us,
            "cost_us": self.cost_us,
            "n_tasks": self.n_tasks,
            "n_delays": self.n_delays,
            "n_cancelled_tasks": self.n_cancelled_tasks,
            "shed_reason": self.shed_reason,
            "admitted_us": self.admitted_us,
            "settled_us": self.settled_us,
            "latency_us": self.latency_us,
            "slowdown": self.slowdown,
        }


_STATUS_OF_RECORD = {"done": "completed", "shed": "rejected", "evicted": "evicted"}


def _rollup(outcomes: list[JobOutcome], slo_slowdown: float) -> dict[str, float]:
    """Aggregate one group of outcomes into SLO metrics.

    Every metric is defined (and finite) for any group, including empty
    and all-rejected ones. The SLO miss rate counts, over all arrived
    jobs, those that were rejected, evicted, or completed slower than
    ``slo_slowdown`` × their isolated run.
    """
    n = len(outcomes)
    completed = [o for o in outcomes if o.status == "completed"]
    rejected = sum(1 for o in outcomes if o.status == "rejected")
    evicted = sum(1 for o in outcomes if o.status == "evicted")
    latencies = [o.latency_us for o in completed if o.latency_us is not None]
    slowdowns = [o.slowdown for o in completed if o.slowdown is not None]
    misses = rejected + evicted + sum(1 for s in slowdowns if s > slo_slowdown)
    return {
        "arrived": float(n),
        "completed": float(len(completed)),
        "rejected": float(rejected),
        "evicted": float(evicted),
        "delays": float(sum(o.n_delays for o in outcomes)),
        "rejection_rate": rejected / n if n else 0.0,
        "eviction_rate": evicted / n if n else 0.0,
        "slo_miss_rate": misses / n if n else 0.0,
        "mean_latency_us": sum(latencies) / len(latencies) if latencies else 0.0,
        "p99_latency_us": percentile(latencies, 0.99),
        "mean_slowdown": sum(slowdowns) / len(slowdowns) if slowdowns else 0.0,
        "p99_slowdown": percentile(slowdowns, 0.99),
    }


@dataclass(frozen=True)
class ControlResult:
    """Control-plane outcome of one stream run."""

    outcomes: tuple[JobOutcome, ...]
    slo_slowdown: float

    # -- counters ----------------------------------------------------------

    @property
    def n_arrived(self) -> int:
        return len(self.outcomes)

    @property
    def n_completed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "completed")

    @property
    def n_rejected(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "rejected")

    @property
    def n_evicted(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "evicted")

    @property
    def n_admitted(self) -> int:
        """Jobs that passed admission (completed or later evicted)."""
        return self.n_completed + self.n_evicted

    @property
    def n_delays(self) -> int:
        """Total backoff re-queues over every job."""
        return sum(o.n_delays for o in self.outcomes)

    # -- rollups -----------------------------------------------------------

    def overall(self) -> dict[str, float]:
        """SLO metrics over the whole stream."""
        return _rollup(list(self.outcomes), self.slo_slowdown)

    def per_tenant(self) -> dict[str, dict[str, float]]:
        """SLO metrics grouped by tenant."""
        return self._grouped(lambda o: o.tenant)

    def per_class(self) -> dict[str, dict[str, float]]:
        """SLO metrics grouped by priority class."""
        return self._grouped(lambda o: o.qos)

    def _grouped(self, key) -> dict[str, dict[str, float]]:
        grouped: dict[str, list[JobOutcome]] = {}
        for o in self.outcomes:
            grouped.setdefault(key(o), []).append(o)
        return {k: _rollup(v, self.slo_slowdown) for k, v in grouped.items()}

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready report: counters, rollups, and every outcome."""
        return {
            "slo_slowdown": self.slo_slowdown,
            "n_arrived": self.n_arrived,
            "n_admitted": self.n_admitted,
            "n_completed": self.n_completed,
            "n_rejected": self.n_rejected,
            "n_evicted": self.n_evicted,
            "n_delays": self.n_delays,
            "overall": self.overall(),
            "per_tenant": self.per_tenant(),
            "per_class": self.per_class(),
            "outcomes": [o.as_dict() for o in self.outcomes],
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def from_plane(
        cls,
        plane: "ControlPlane",
        job_results: "Iterable[JobResult]" = (),
    ) -> "ControlResult":
        """Build from a finished plane plus the completed jobs' results
        (source of latency/slowdown for completed outcomes)."""
        by_jid = {j.jid: j for j in job_results}
        outcomes = []
        for rec in plane.records():
            jr = by_jid.get(rec.jid)
            outcomes.append(JobOutcome(
                jid=rec.jid,
                name=rec.name,
                tenant=rec.tenant,
                qos=rec.qos,
                status=_STATUS_OF_RECORD.get(rec.status, rec.status),
                arrival_us=rec.arrival_us,
                cost_us=rec.cost_us,
                n_tasks=rec.n_tasks,
                n_delays=rec.n_delays,
                n_cancelled_tasks=rec.n_cancelled,
                shed_reason=rec.shed_reason,
                admitted_us=rec.admitted_us,
                settled_us=rec.settled_us,
                latency_us=jr.latency_us if jr is not None else None,
                slowdown=jr.slowdown if jr is not None else None,
            ))
        return cls(
            outcomes=tuple(outcomes),
            slo_slowdown=plane.config.slo_slowdown,
        )
