"""Per-tenant token-bucket credit accounting.

Admitted work is charged in *work-µs*: the sum over a job's tasks of
the best-architecture execution estimate δ_min(t) from the run's
:class:`~repro.runtime.perfmodel.PerfModel`. A tenant's bucket refills
at ``rate`` task-seconds of work per second of virtual time — i.e.
``rate`` is directly "how many workers' worth of service this tenant
may consume in steady state" — up to a capacity of ``burst``
task-seconds. The default quota is infinite on both axes, which makes
the accountant a structural no-op (every job affordable, balance never
finite), the property the control plane's bit-identity guarantee rests
on.

Guaranteed-class jobs may drive a balance negative (overdraft): the
admission policy in :mod:`repro.control.plane` always admits them and
lets the debt throttle the tenant's burstable traffic instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.utils.validation import ValidationError

#: Work-µs per task-second (quota rates/bursts are stated in task-seconds).
_US_PER_TASK_S = 1e6


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's credit contract.

    ``rate`` is in task-seconds of admitted work per second of virtual
    time; ``burst`` is the bucket capacity in task-seconds. Infinity
    (the default) on either axis means "unmetered".
    """

    rate: float = math.inf
    burst: float = math.inf

    def __post_init__(self) -> None:
        if math.isnan(self.rate) or self.rate < 0:
            raise ValidationError(f"quota rate must be >= 0, got {self.rate}")
        if math.isnan(self.burst) or self.burst <= 0:
            raise ValidationError(f"quota burst must be > 0, got {self.burst}")

    @property
    def unmetered(self) -> bool:
        """Whether this quota can never deny admission."""
        return math.isinf(self.burst)

    @property
    def burst_us(self) -> float:
        """Bucket capacity in work-µs."""
        return self.burst * _US_PER_TASK_S


class QuotaAccountant:
    """Token buckets over virtual time, one per tenant.

    Buckets are created lazily at a tenant's first sighting, full.
    ``now`` arguments are the engine's virtual clock in µs; refills are
    computed lazily from the elapsed gap, so the accountant costs one
    dict lookup per admission decision regardless of tenant count.
    """

    def __init__(
        self,
        quotas: Mapping[str, TenantQuota] | None = None,
        default: TenantQuota | None = None,
    ) -> None:
        self.quotas: dict[str, TenantQuota] = dict(quotas or {})
        self.default = default if default is not None else TenantQuota()
        self._balance_us: dict[str, float] = {}
        self._last_refill_us: dict[str, float] = {}

    def quota_of(self, tenant: str) -> TenantQuota:
        """The tenant's contract (the default when none was configured)."""
        return self.quotas.get(tenant, self.default)

    def balance_us(self, tenant: str, now: float) -> float:
        """Current credit in work-µs, after refilling up to ``now``."""
        quota = self.quota_of(tenant)
        bal = self._balance_us.get(tenant)
        if bal is None:
            bal = quota.burst_us
            self._balance_us[tenant] = bal
            self._last_refill_us[tenant] = now
            return bal
        dt = now - self._last_refill_us[tenant]
        self._last_refill_us[tenant] = now
        if dt > 0.0 and not math.isinf(bal):
            # rate task-s/s == work-µs per elapsed µs.
            bal = min(quota.burst_us, bal + quota.rate * dt)
            self._balance_us[tenant] = bal
        return bal

    def can_afford(self, tenant: str, cost_us: float, now: float) -> bool:
        """Whether ``tenant`` has credit for ``cost_us`` of work."""
        return self.balance_us(tenant, now) + 1e-9 >= cost_us

    def charge(self, tenant: str, cost_us: float, now: float) -> float:
        """Deduct ``cost_us`` (may overdraft); returns the new balance."""
        bal = self.balance_us(tenant, now)
        if math.isinf(bal):
            return bal
        bal -= cost_us
        self._balance_us[tenant] = bal
        return bal

    def tenants(self) -> tuple[str, ...]:
        """Tenants with a live bucket, in first-sighting order."""
        return tuple(self._balance_us)

    def audit(self) -> list[str]:
        """Internal-consistency check: no bucket above its capacity."""
        out: list[str] = []
        for tenant, bal in self._balance_us.items():
            cap = self.quota_of(tenant).burst_us
            if not math.isinf(bal) and bal > cap + 1e-6:
                out.append(
                    f"tenant {tenant!r} balance {bal:.1f}us exceeds its "
                    f"burst capacity {cap:.1f}us"
                )
        return out
