"""Concrete machine models and kernel calibrations for the evaluation."""

from repro.platform.machines import (
    intel_v100,
    amd_a100,
    small_hetero,
    fig4_machine,
    MACHINES,
)
from repro.platform.calibration import (
    default_calibration,
    dense_calibration,
    fmm_calibration,
    sparseqr_calibration,
)

__all__ = [
    "intel_v100",
    "amd_a100",
    "small_hetero",
    "fig4_machine",
    "MACHINES",
    "default_calibration",
    "dense_calibration",
    "fmm_calibration",
    "sparseqr_calibration",
]
