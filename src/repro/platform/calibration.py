"""Per-kernel throughput calibrations for the simulated machines.

Each entry is ``(cpu, gpu)`` with per-architecture asymptotic GFlop/s,
launch overhead and a throughput *ramp* (the flop count at which the
unit reaches half its peak — see
:class:`repro.runtime.perfmodel.KernelCalibration`). Absolute values are
drawn from public benchmarks of the two platforms' parts (Xeon Gold
6142 + V100-PCIe, EPYC 7513 + A100); what the reproduction relies on is
the published *structure*:

* GEMM-like kernels accelerate enormously on GPUs for large tiles but
  ramp slowly — small instances of the very same kernel run faster on a
  CPU core. Per-task affinity therefore differs from per-type affinity,
  which is the premise of MultiPrio (and the limitation of HeteroPrio);
* panel/diagonal kernels (potrf, getrf, geqrt) have poor GPU peaks;
* tiny tree kernels (FMM M2M/L2L) and scatter/gather (sparse assembly)
  barely benefit from GPUs at any size;
* the AMD-A100 node has twice as many CPU cores, each about half as
  fast, and much faster GPUs (the paper's Section VI-C discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.perfmodel import CalibrationTable, KernelCalibration


@dataclass(frozen=True)
class _Rate:
    """One kernel's two-architecture calibration, pre-scaling."""

    cpu_gflops: float
    gpu_gflops: float
    gpu_ramp: float
    cpu_ramp: float = 2.0e6
    cpu_overhead: float = 1.0
    gpu_overhead: float = 12.0


_DENSE_RATES: dict[str, _Rate] = {
    "potrf": _Rate(28.0, 300.0, 1.5e8),   # diagonal Cholesky block
    "trsm": _Rate(36.0, 1300.0, 2.0e8),
    "syrk": _Rate(42.0, 2100.0, 2.0e8),
    "gemm": _Rate(46.0, 2600.0, 2.0e8),
    "getrf": _Rate(24.0, 380.0, 1.5e8),   # LU diagonal block, no pivoting
    "geqrt": _Rate(18.0, 200.0, 1.5e8),   # QR panel: strongly CPU-favored
    "ormqr": _Rate(30.0, 1100.0, 2.0e8),
    "tsqrt": _Rate(20.0, 330.0, 1.5e8),
    "tsmqr": _Rate(32.0, 1500.0, 2.0e8),
}

_FMM_RATES: dict[str, _Rate] = {
    "p2p": _Rate(12.0, 900.0, 8.0e7),     # pairwise interactions: GPU excels
    "m2l": _Rate(16.0, 450.0, 6.0e7),
    "p2m": _Rate(14.0, 60.0, 2.0e7),      # small transforms: weak GPU benefit
    "l2p": _Rate(14.0, 60.0, 2.0e7),
    "m2m": _Rate(15.0, 18.0, 1.0e7),      # tiny tree kernels: CPU is best
    "l2l": _Rate(15.0, 18.0, 1.0e7),
}

_SPARSEQR_RATES: dict[str, _Rate] = {
    "assemble": _Rate(20.0, 90.0, 3.0e7),   # memory-bound scatter/gather
    "front_geqrt": _Rate(18.0, 260.0, 4.0e8),
    "front_tsqrt": _Rate(20.0, 420.0, 4.0e8),
    "front_ormqr": _Rate(30.0, 2400.0, 8.0e8),
    "front_tsmqr": _Rate(32.0, 3100.0, 8.0e8),
}

_DEFAULT_RATES: dict[str, _Rate] = {"*": _Rate(20.0, 1000.0, 2.0e8)}


def _build(
    rates: dict[str, _Rate], cpu_scale: float, gpu_scale: float
) -> dict[tuple[str, str], KernelCalibration]:
    entries: dict[tuple[str, str], KernelCalibration] = {}
    for kernel, r in rates.items():
        entries[(kernel, "cpu")] = KernelCalibration(
            r.cpu_gflops * cpu_scale, r.cpu_overhead, r.cpu_ramp
        )
        entries[(kernel, "cuda")] = KernelCalibration(
            r.gpu_gflops * gpu_scale, r.gpu_overhead, r.gpu_ramp
        )
    return entries


def dense_calibration(cpu_scale: float = 1.0, gpu_scale: float = 1.0) -> CalibrationTable:
    """Calibration of the CHAMELEON-like dense kernels."""
    entries = _build(_DENSE_RATES, cpu_scale, gpu_scale)
    entries.update(_build(_DEFAULT_RATES, cpu_scale, gpu_scale))
    return CalibrationTable(entries)


def fmm_calibration(cpu_scale: float = 1.0, gpu_scale: float = 1.0) -> CalibrationTable:
    """Calibration of the TBFMM-like kernels."""
    entries = _build(_FMM_RATES, cpu_scale, gpu_scale)
    entries.update(_build(_DEFAULT_RATES, cpu_scale, gpu_scale))
    return CalibrationTable(entries)


def sparseqr_calibration(cpu_scale: float = 1.0, gpu_scale: float = 1.0) -> CalibrationTable:
    """Calibration of the QR_MUMPS-like multifrontal kernels."""
    entries = _build(_SPARSEQR_RATES, cpu_scale, gpu_scale)
    entries.update(_build(_DEFAULT_RATES, cpu_scale, gpu_scale))
    return CalibrationTable(entries)


def default_calibration(cpu_scale: float = 1.0, gpu_scale: float = 1.0) -> CalibrationTable:
    """Union of all application calibrations plus per-arch defaults."""
    entries = _build(_DENSE_RATES, cpu_scale, gpu_scale)
    entries.update(_build(_FMM_RATES, cpu_scale, gpu_scale))
    entries.update(_build(_SPARSEQR_RATES, cpu_scale, gpu_scale))
    entries.update(_build(_DEFAULT_RATES, cpu_scale, gpu_scale))
    return CalibrationTable(entries)
