"""The evaluation machines of the paper, as simulated models.

* **Intel-V100** — 2x Xeon Gold 6142 (32 cores) + 2x NVIDIA V100 16 GB.
  StarPU dedicates one core per GPU to driving it, leaving 30 CPU
  workers. PCIe 3 x16 gives ~12 GB/s per GPU.
* **AMD-A100** — 2x EPYC 7513 (64 cores) + 2x NVIDIA A100 40 GB: 62 CPU
  workers, PCIe 4 x16 ~24 GB/s. Per the paper's Section VI-C: twice the
  CPUs, each about 2x slower, and much faster GPUs.

``gpu_streams`` controls how many workers share each GPU memory node —
the knob the paper's Fig. 6 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.runtime.perfmodel import CalibrationTable
from repro.runtime.platform_config import (
    LinkSpec,
    MachineSpec,
    MemoryNodeSpec,
    Platform,
)
from repro.platform.calibration import default_calibration
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class MachineModel:
    """A machine spec bundled with its kernel calibration scales."""

    spec: MachineSpec
    cpu_scale: float
    gpu_scale: float

    @property
    def name(self) -> str:
        """Machine name (from the spec)."""
        return self.spec.name

    def platform(self) -> Platform:
        """Instantiate a fresh :class:`Platform`."""
        return Platform(self.spec)

    def calibration(self) -> CalibrationTable:
        """Default all-application calibration at this machine's scales."""
        return default_calibration(self.cpu_scale, self.gpu_scale)


def _hetero_spec(
    name: str,
    n_cpu_workers: int,
    n_gpus: int,
    gpu_streams: int,
    pcie_gbps: float,
    pcie_latency_us: float = 8.0,
    gpu_memory_bytes: int | None = None,
) -> MachineSpec:
    nodes = [MemoryNodeSpec("ram", "ram", "cpu", n_cpu_workers)]
    links: list[LinkSpec] = []
    for g in range(n_gpus):
        gname = f"gpu{g}"
        nodes.append(
            MemoryNodeSpec(gname, "gpu", "cuda", gpu_streams, capacity=gpu_memory_bytes)
        )
        links.append(LinkSpec("ram", gname, pcie_gbps, pcie_latency_us))
        links.append(LinkSpec(gname, "ram", pcie_gbps, pcie_latency_us))
    return MachineSpec(name=name, nodes=tuple(nodes), links=tuple(links))


def intel_v100(
    gpu_streams: int = 4, gpu_memory_bytes: int | None = 16 * 2**30
) -> MachineModel:
    """The Intel-V100 platform (30 CPU workers + 2 V100, 16 GB each).

    ``gpu_memory_bytes`` overrides the device memory (None = unbounded) —
    shrink it to study memory pressure at simulation-sized working sets.
    """
    if gpu_streams < 1:
        raise ValidationError(f"gpu_streams must be >= 1, got {gpu_streams}")
    spec = _hetero_spec(
        "intel-v100", 30, 2, gpu_streams, pcie_gbps=12.0,
        gpu_memory_bytes=gpu_memory_bytes,
    )
    return MachineModel(spec, cpu_scale=1.0, gpu_scale=1.0)


def amd_a100(
    gpu_streams: int = 4, gpu_memory_bytes: int | None = 40 * 2**30
) -> MachineModel:
    """The AMD-A100 platform (62 CPU workers + 2 A100, 40 GB each)."""
    if gpu_streams < 1:
        raise ValidationError(f"gpu_streams must be >= 1, got {gpu_streams}")
    spec = _hetero_spec(
        "amd-a100", 62, 2, gpu_streams, pcie_gbps=24.0, pcie_latency_us=6.0,
        gpu_memory_bytes=gpu_memory_bytes,
    )
    return MachineModel(spec, cpu_scale=0.5, gpu_scale=2.6)


def small_hetero(
    n_cpus: int = 6, n_gpus: int = 1, gpu_streams: int = 1, pcie_gbps: float = 12.0
) -> MachineModel:
    """A small heterogeneous node for tests and quick examples."""
    spec = _hetero_spec("small-hetero", n_cpus, n_gpus, gpu_streams, pcie_gbps)
    return MachineModel(spec, cpu_scale=1.0, gpu_scale=1.0)


def fig4_machine() -> MachineModel:
    """The Fig. 4 ablation platform: 1 GPU + 6 CPU workers."""
    spec = _hetero_spec("fig4-1gpu-6cpu", 6, 1, 1, pcie_gbps=12.0)
    return MachineModel(spec, cpu_scale=1.0, gpu_scale=1.0)


def cpu_only(n_cpus: int = 8) -> MachineModel:
    """A homogeneous CPU node (for |A| = 1 corner cases)."""
    spec = MachineSpec(
        name="cpu-only",
        nodes=(MemoryNodeSpec("ram", "ram", "cpu", n_cpus),),
        links=(),
    )
    return MachineModel(spec, cpu_scale=1.0, gpu_scale=1.0)


MACHINES: dict[str, "Callable[..., MachineModel]"] = {
    "intel-v100": intel_v100,
    "amd-a100": amd_a100,
    "small-hetero": small_hetero,
    "fig4": fig4_machine,
}
