"""repro — reproduction of *Dynamic Tasks Scheduling with Multiple
Priorities on Heterogeneous Computing Systems* (MultiPrio, IPPS 2024).

Public API quick tour::

    from repro import simulate
    from repro.platform import small_hetero
    from repro.apps.dense import cholesky_program

    machine = small_hetero(n_cpus=6, n_gpus=1)
    program = cholesky_program(n_tiles=10, tile_size=512)
    result = simulate(program, machine, "multiprio")
    print(result.makespan, result.gflops)

:func:`simulate` is the one-call facade; the underlying pieces
(:class:`Simulator`, :class:`MultiPrio`, the perf models, the
scheduler registry) remain public for fine-grained control.

Subpackages:

* :mod:`repro.core` — MultiPrio and its heuristics (the contribution);
* :mod:`repro.runtime` — the StarPU-like simulated runtime substrate;
* :mod:`repro.schedulers` — baseline policies (dmdas, heteroprio, ...);
* :mod:`repro.apps` — dense LA / FMM / sparse-QR task-graph generators;
* :mod:`repro.platform` — the Intel-V100 and AMD-A100 machine models;
* :mod:`repro.workload` — online multi-tenant job streams
  (:func:`simulate_stream` is their facade);
* :mod:`repro.control` — the overload control plane: per-tenant
  quotas, admission (accept / delay / shed), priority-class eviction;
* :mod:`repro.cluster` — multi-node platforms and the two-level
  hierarchical scheduler (:func:`simulate_cluster` is their facade);
* :mod:`repro.experiments` — one harness per paper table/figure.
"""

from repro.runtime import (
    AccessMode,
    Task,
    TaskFlow,
    Program,
    DataHandle,
    Simulator,
    SimResult,
    AnalyticalPerfModel,
    HistoryPerfModel,
    CalibrationTable,
    KernelCalibration,
    Platform,
    SchedOverheadModel,
    ResourceProtocol,
    ArchPower,
    PowerModel,
    PowerState,
    PowerStateModel,
    EnergyReport,
)
from repro.schedulers import MultiPrio
from repro.schedulers import make_scheduler, scheduler_names, register_scheduler
from repro.api import SimConfig, SimSpec, simulate, simulate_stream
from repro.workload import (
    QOS_CLASSES,
    Job,
    JobResult,
    JobStream,
    StreamResult,
    closed_loop_stream,
    merge_stream,
    poisson_stream,
    trace_stream,
)
from repro.control import (
    ControlConfig,
    ControlPlane,
    ControlResult,
    QuotaAccountant,
    TenantQuota,
    default_overload_config,
)
from repro.cluster import (
    ClusterResult,
    ClusterSpec,
    fat_tree_cluster,
    simulate_cluster,
    star_cluster,
)

__version__ = "1.1.0"

__all__ = [
    "AccessMode",
    "Task",
    "TaskFlow",
    "Program",
    "DataHandle",
    "Simulator",
    "SimResult",
    "AnalyticalPerfModel",
    "HistoryPerfModel",
    "CalibrationTable",
    "KernelCalibration",
    "Platform",
    "SchedOverheadModel",
    "ResourceProtocol",
    "ArchPower",
    "PowerModel",
    "PowerState",
    "PowerStateModel",
    "EnergyReport",
    "MultiPrio",
    "make_scheduler",
    "scheduler_names",
    "register_scheduler",
    "simulate",
    "simulate_stream",
    "SimConfig",
    "SimSpec",
    "Job",
    "JobStream",
    "JobResult",
    "StreamResult",
    "QOS_CLASSES",
    "closed_loop_stream",
    "merge_stream",
    "poisson_stream",
    "trace_stream",
    "ControlConfig",
    "ControlPlane",
    "ControlResult",
    "QuotaAccountant",
    "TenantQuota",
    "default_overload_config",
    "ClusterResult",
    "ClusterSpec",
    "fat_tree_cluster",
    "simulate_cluster",
    "star_cluster",
    "__version__",
]
