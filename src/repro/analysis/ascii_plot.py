"""ASCII charts for experiment outputs (no plotting dependencies).

The benches run in terminals and CI logs; these helpers render the
paper's figure *shapes* — grouped bars for Fig. 6/8-style comparisons
and simple series for sweeps — directly into the saved text artefacts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.utils.validation import ValidationError

_BLOCK = "#"


def hbar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    title: str = "",
    unit: str = "",
    reference: str | None = None,
) -> str:
    """Horizontal bar chart of label -> value.

    ``reference`` marks one label whose bar is annotated as the baseline
    (the Fig. 8 "ratio vs Dmdas" style).
    """
    if not values:
        raise ValidationError("hbar_chart needs at least one value")
    if any(v < 0 for v in values.values()):
        raise ValidationError("hbar_chart values must be >= 0")
    peak = max(values.values()) or 1.0
    label_w = max(len(str(k)) for k in values)
    lines: list[str] = [title] if title else []
    for label, value in values.items():
        bar = _BLOCK * max(1 if value > 0 else 0, round(value / peak * width))
        mark = "  <- reference" if reference == label else ""
        lines.append(f"{str(label):>{label_w}} |{bar:<{width}} {value:.3g}{unit}{mark}")
    return "\n".join(lines)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    *,
    width: int = 40,
    title: str = "",
    unit: str = "",
) -> str:
    """Grouped horizontal bars: group -> {series -> value}.

    All bars share one scale so groups are comparable (the Fig. 6 layout:
    machines as groups, schedulers as series).
    """
    if not groups:
        raise ValidationError("grouped_bars needs at least one group")
    all_values = [v for series in groups.values() for v in series.values()]
    if not all_values:
        raise ValidationError("grouped_bars needs at least one series value")
    if any(v < 0 for v in all_values):
        raise ValidationError("grouped_bars values must be >= 0")
    peak = max(all_values) or 1.0
    series_w = max(len(str(s)) for series in groups.values() for s in series)
    lines: list[str] = [title] if title else []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            bar = _BLOCK * max(1 if value > 0 else 0, round(value / peak * width))
            lines.append(f"  {str(name):>{series_w}} |{bar:<{width}} {value:.3g}{unit}")
    return "\n".join(lines)


def series_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    height: int = 12,
    width: int = 60,
    title: str = "",
) -> str:
    """A dot plot of one (x, y) series on a character grid."""
    if len(xs) != len(ys):
        raise ValidationError("series_plot needs equal-length xs and ys")
    if not xs:
        raise ValidationError("series_plot needs at least one point")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = round((x - x_lo) / x_span * (width - 1))
        row = height - 1 - round((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines: list[str] = [title] if title else []
    lines.append(f"{y_hi:10.3g} +{''.join(grid[0])}")
    for row in grid[1:-1]:
        lines.append(f"{'':10} |{''.join(row)}")
    lines.append(f"{y_lo:10.3g} +{''.join(grid[-1])}")
    lines.append(f"{'':11}{x_lo:<10.3g}{'':{max(0, width - 20)}}{x_hi:>10.3g}")
    return "\n".join(lines)
