"""Trace export: Chrome tracing JSON and CSV.

``to_chrome_trace`` emits the ``chrome://tracing`` / Perfetto event
format — load the file in a browser to inspect the schedule visually,
the closest equivalent to the paper's StarVZ plots. ``to_csv`` emits a
flat per-task table for pandas/R post-processing.
"""

from __future__ import annotations

import json
from typing import Any

from repro.runtime.trace import Trace


def to_chrome_trace(trace: Trace) -> str:
    """Serialize a trace to the Chrome tracing JSON format.

    One row (``tid``) per worker inside a single process; task
    executions become complete events (``ph: "X"``), residual data
    stalls become separate shaded events.
    """
    events: list[dict[str, Any]] = []
    for worker in trace.workers:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": worker.wid,
                "args": {"name": f"{worker.name} ({worker.arch})"},
            }
        )
    for rec in trace.task_records:
        if rec.wait_time > 0:
            events.append(
                {
                    "name": "data wait",
                    "cat": "transfer",
                    "ph": "X",
                    "pid": 0,
                    "tid": rec.worker,
                    "ts": rec.pop_time,
                    "dur": rec.wait_time,
                    "args": {"task": rec.tid},
                }
            )
        events.append(
            {
                "name": rec.type_name,
                "cat": "task",
                "ph": "X",
                "pid": 0,
                "tid": rec.worker,
                "ts": rec.start,
                "dur": rec.exec_time,
                "args": {"task": rec.tid, "node": rec.node},
            }
        )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def to_csv(trace: Trace) -> str:
    """Serialize the per-task records as CSV (header + one row each)."""
    lines = ["tid,type,worker,node,pop_time_us,start_us,end_us,exec_us,wait_us"]
    for rec in sorted(trace.task_records, key=lambda r: r.start):
        lines.append(
            f"{rec.tid},{rec.type_name},{rec.worker},{rec.node},"
            f"{rec.pop_time:.3f},{rec.start:.3f},{rec.end:.3f},"
            f"{rec.exec_time:.3f},{rec.wait_time:.3f}"
        )
    return "\n".join(lines) + "\n"
