"""Schedule validation: every trace must be a feasible execution.

Used by the integration tests to certify that a scheduler's output
respects the DAG (no task starts before all its predecessors finished),
worker exclusivity (a worker runs one task at a time) and completeness
(every task ran exactly once, on an architecture it implements).
"""

from __future__ import annotations

from repro.runtime.stf import Program
from repro.runtime.trace import Trace
from repro.runtime.worker import Worker
from repro.utils.validation import ValidationError

#: Tolerance for floating-point time comparisons (microseconds).
EPS = 1e-6


def check_schedule(program: Program, trace: Trace, workers: list[Worker]) -> None:
    """Raise :class:`ValidationError` on any infeasibility in ``trace``."""
    by_tid = {r.tid: r for r in trace.task_records}

    # Completeness and uniqueness.
    if len(trace.task_records) != len(program.tasks):
        raise ValidationError(
            f"trace has {len(trace.task_records)} records for "
            f"{len(program.tasks)} tasks"
        )
    if len(by_tid) != len(trace.task_records):
        raise ValidationError("a task appears twice in the trace")

    worker_by_id = {w.wid: w for w in workers}
    for task in program.tasks:
        rec = by_tid.get(task.tid)
        if rec is None:
            raise ValidationError(f"{task.name} never executed")
        worker = worker_by_id.get(rec.worker)
        if worker is None:
            raise ValidationError(f"{task.name} ran on unknown worker {rec.worker}")
        if not task.can_exec(worker.arch):
            raise ValidationError(
                f"{task.name} ran on {worker.arch} without an implementation"
            )
        if rec.end < rec.start - EPS or rec.start < rec.pop_time - EPS:
            raise ValidationError(f"{task.name} has inconsistent timestamps")
        # Dependencies: strictly after every predecessor's end.
        for pred in task.preds:
            pred_rec = by_tid[pred.tid]
            if rec.start < pred_rec.end - EPS:
                raise ValidationError(
                    f"{task.name} started at {rec.start} before predecessor "
                    f"{pred.name} finished at {pred_rec.end}"
                )

    # Worker exclusivity.
    per_worker: dict[int, list] = {}
    for rec in trace.task_records:
        per_worker.setdefault(rec.worker, []).append(rec)
    for wid, recs in per_worker.items():
        recs.sort(key=lambda r: r.start)
        for earlier, later in zip(recs, recs[1:]):
            if later.start < earlier.end - EPS:
                raise ValidationError(
                    f"worker {wid} overlaps tasks {earlier.tid} and {later.tid}"
                )
