"""Makespan lower bounds and scheduling-efficiency reports.

Two classic bounds, both valid for any scheduler on any platform:

* **critical-path bound** — the longest chain, each task at its fastest
  architecture, communication free;
* **work bound** — at most |W| tasks execute concurrently and each costs
  at least its fastest-architecture time, so
  ``T >= sum_t min_a δ(t, a) / |W|``. A per-architecture refinement
  covers tasks executable on a single architecture: the exclusive work
  of architecture ``a`` cannot spread beyond ``P_a``.

``efficiency_report`` relates a simulated makespan to these bounds — the
sanity lens for comparing schedulers beyond raw makespans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.dag import critical_path_length
from repro.runtime.engine import SimResult
from repro.runtime.perfmodel import PerfModel
from repro.runtime.platform_config import Platform
from repro.runtime.stf import Program


@dataclass(frozen=True)
class Bounds:
    """Lower bounds on the makespan of one program on one platform."""

    critical_path_us: float
    work_bound_us: float
    exclusive_work_bound_us: float

    @property
    def best_us(self) -> float:
        """The tightest of the bounds."""
        return max(
            self.critical_path_us, self.work_bound_us, self.exclusive_work_bound_us
        )


def _best_cost(task, perfmodel: PerfModel, archs: tuple[str, ...]) -> float:
    return min(perfmodel.estimate(task, a) for a in archs if task.can_exec(a))


def makespan_bounds(
    program: Program, platform: Platform, perfmodel: PerfModel
) -> Bounds:
    """Compute the lower bounds for ``program`` on ``platform``."""
    archs = tuple(a for a in platform.archs if platform.n_workers(a) > 0)
    cp = critical_path_length(
        program.tasks, lambda t: _best_cost(t, perfmodel, archs)
    )
    total_best = sum(_best_cost(t, perfmodel, archs) for t in program.tasks)
    work_bound = total_best / max(1, platform.n_workers())

    exclusive = 0.0
    for arch in archs:
        only_here = [
            t
            for t in program.tasks
            if [a for a in archs if t.can_exec(a)] == [arch]
        ]
        if only_here:
            arch_work = sum(perfmodel.estimate(t, arch) for t in only_here)
            exclusive = max(exclusive, arch_work / max(1, platform.n_workers(arch)))
    return Bounds(
        critical_path_us=cp,
        work_bound_us=work_bound,
        exclusive_work_bound_us=exclusive,
    )


def efficiency_report(
    result: SimResult, program: Program, platform: Platform, perfmodel: PerfModel
) -> dict[str, float]:
    """Bounds plus achieved makespan and the efficiency ratio.

    ``efficiency`` = tightest lower bound / achieved makespan, in (0, 1];
    1.0 means the schedule is provably optimal for this platform model.
    """
    bounds = makespan_bounds(program, platform, perfmodel)
    efficiency = bounds.best_us / result.makespan if result.makespan > 0 else 1.0
    return {
        "makespan_us": result.makespan,
        "critical_path_us": bounds.critical_path_us,
        "work_bound_us": bounds.work_bound_us,
        "exclusive_work_bound_us": bounds.exclusive_work_bound_us,
        "best_bound_us": bounds.best_us,
        "efficiency": min(1.0, efficiency),
    }
