"""Post-run analysis: schedule validation, statistics, trace tooling."""

from repro.analysis.validation import check_schedule
from repro.analysis.stats import (
    summarize_results,
    geometric_mean,
    jain_fairness_index,
    load_balance_index,
)
from repro.analysis.export import to_chrome_trace, to_csv
from repro.analysis.bounds import makespan_bounds, efficiency_report, Bounds
from repro.analysis.ascii_plot import hbar_chart, grouped_bars, series_plot

__all__ = [
    "check_schedule",
    "summarize_results",
    "geometric_mean",
    "jain_fairness_index",
    "load_balance_index",
    "to_chrome_trace",
    "to_csv",
    "makespan_bounds",
    "efficiency_report",
    "Bounds",
    "hbar_chart",
    "grouped_bars",
    "series_plot",
]
