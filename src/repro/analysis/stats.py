"""Aggregate statistics over experiment results."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.experiments.harness import ExperimentResult


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the standard aggregate for speedup ratios)."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load_balance_index(busy_times: Sequence[float]) -> float:
    """Mean/max busy-time ratio across workers: 1.0 = perfect balance."""
    if not busy_times:
        return 1.0
    peak = max(busy_times)
    if peak <= 0:
        return 1.0
    return sum(busy_times) / len(busy_times) / peak


def summarize_results(
    rows: Iterable[ExperimentResult],
) -> dict[str, dict[str, float]]:
    """Per-scheduler aggregates: mean makespan, mean gflops, run count."""
    grouped: dict[str, list[ExperimentResult]] = {}
    for row in rows:
        grouped.setdefault(row.scheduler, []).append(row)
    out: dict[str, dict[str, float]] = {}
    for scheduler, mine in grouped.items():
        out[scheduler] = {
            "runs": float(len(mine)),
            "mean_makespan_us": sum(r.makespan_us for r in mine) / len(mine),
            "mean_gflops": sum(r.gflops for r in mine) / len(mine),
            "total_bytes": float(sum(r.bytes_transferred for r in mine)),
        }
    return out
