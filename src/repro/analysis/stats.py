"""Aggregate statistics over experiment results."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle:
    # harness -> api -> workload -> stats -> harness)
    from repro.experiments.harness import ExperimentResult


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the standard aggregate for speedup ratios)."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load_balance_index(busy_times: Sequence[float]) -> float:
    """Mean/max busy-time ratio across workers: 1.0 = perfect balance."""
    if not busy_times:
        return 1.0
    peak = max(busy_times)
    if peak <= 0:
        return 1.0
    return sum(busy_times) / len(busy_times) / peak


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile at fraction ``q`` in [0, 1], NaN-free.

    An empty population returns 0.0 (not NaN, not an exception), so
    degenerate groups — e.g. the completed-job set of an all-rejected
    overload run — always report well-defined metrics. A singleton
    returns its only element at any ``q``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
    return ordered[idx]


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` over per-job metrics.

    1.0 means every job got an identical share (e.g. equal slowdowns);
    the index degrades toward ``1/n`` as one job monopolizes the
    resource. Values must be non-negative; an all-zero (or empty)
    population is perfectly fair by convention.
    """
    if any(v < 0 for v in values):
        raise ValueError("jain_fairness_index requires non-negative values")
    total_sq = sum(v * v for v in values)
    if not values or total_sq <= 0:
        return 1.0
    total = sum(values)
    return total * total / (len(values) * total_sq)


def summarize_results(
    rows: "Iterable[ExperimentResult]",
) -> dict[str, dict[str, float]]:
    """Per-scheduler aggregates: mean makespan, mean gflops, run count."""
    grouped: dict[str, list[ExperimentResult]] = {}
    for row in rows:
        grouped.setdefault(row.scheduler, []).append(row)
    out: dict[str, dict[str, float]] = {}
    for scheduler, mine in grouped.items():
        out[scheduler] = {
            "runs": float(len(mine)),
            "mean_makespan_us": sum(r.makespan_us for r in mine) / len(mine),
            "mean_gflops": sum(r.gflops for r in mine) / len(mine),
            "total_bytes": float(sum(r.bytes_transferred for r in mine)),
        }
    return out
