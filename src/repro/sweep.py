"""Declarative, process-parallel experiment execution.

The paper's evaluation is a large grid — machines × schedulers ×
applications × sizes (Figs. 5–8) — whose cells are *independent*
simulations. This module turns such grids into a declarative
:class:`SweepSpec` and executes them either serially or over a
:class:`concurrent.futures.ProcessPoolExecutor`, with

* **deterministic results** — cells are dispatched in chunks but results
  are reassembled in cell order, and every cell re-derives its inputs
  (program builder + explicit seed) inside the executing process, so
  ``jobs=N`` is bit-identical to ``jobs=1``;
* **deterministic seed fan-out** — :func:`fanout_seeds` derives
  independent per-cell seeds from one base seed via
  :class:`numpy.random.SeedSequence`;
* **crash resilience** — a worker-process crash (``BrokenProcessPool``)
  retries the affected chunks a bounded number of times on a fresh pool,
  while *deterministic* failures (the :class:`~repro.utils.validation.
  ReproError` taxonomy of PR 1) are never retried: the error of the
  lowest-indexed failing cell is re-raised, exactly as a serial run
  would have raised it;
* **progress callbacks** — ``progress(done, total)`` fires as cells
  complete.

Two layers:

* :func:`run_tasks` — an ordered parallel map over picklable
  :class:`CallSpec` deferred calls (any picklable result);
* :class:`SweepSpec` / :func:`run_sweep` — simulation sweeps whose cells
  produce :class:`~repro.experiments.harness.ExperimentResult` rows.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.api import simulate
from repro.experiments.harness import ExperimentResult
from repro.platform.machines import MachineModel
from repro.utils.validation import ReproError, RetryExhaustedError

__all__ = [
    "CallSpec",
    "SweepCell",
    "SweepSpec",
    "fanout_seeds",
    "run_sweep",
    "run_tasks",
]


@dataclass(frozen=True)
class CallSpec:
    """A picklable deferred call: a module-level callable plus arguments.

    Sweep cells cross process boundaries, so work is described *by
    reference* (importable function + arguments) instead of by closure;
    :meth:`build` performs the call in whichever process executes the
    cell. Builders must be deterministic functions of their arguments —
    that is what makes a parallel run bit-identical to a serial one.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def build(self) -> Any:
        """Execute the deferred call and return its result."""
        return self.fn(*self.args, **self.kwargs)


def fanout_seeds(base_seed: int, n: int) -> list[int]:
    """``n`` independent per-cell seeds derived from one base seed.

    Uses :class:`numpy.random.SeedSequence`, so the fan-out is
    deterministic, collision-resistant, and independent of how the
    cells are later chunked across processes.
    """
    return [int(s) for s in np.random.SeedSequence(base_seed).generate_state(n)]


# -- ordered parallel map ---------------------------------------------------


def _run_chunk(chunk: list[tuple[int, CallSpec]]) -> list[tuple[int, str, Any]]:
    """Execute one chunk of (index, spec) pairs in the worker process.

    Deterministic failures (the :class:`ReproError` taxonomy) are
    captured per cell instead of poisoning the whole chunk; any other
    exception propagates to the dispatcher (and is not retried — it is
    a bug, not a crash).
    """
    out: list[tuple[int, str, Any]] = []
    for idx, spec in chunk:
        try:
            out.append((idx, "ok", spec.build()))
        except ReproError as exc:
            out.append((idx, "err", exc))
    return out


def run_tasks(
    tasks: Iterable[CallSpec],
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    crash_retries: int = 2,
    progress: Callable[[int, int], None] | None = None,
) -> list[Any]:
    """Ordered (deterministic) parallel map over :class:`CallSpec` tasks.

    ``jobs <= 1`` runs serially in-process. ``jobs > 1`` dispatches
    chunks of ``chunk_size`` cells (default: enough chunks for ~4 waves
    per worker) to a process pool; results always come back in task
    order, so the output is independent of ``jobs``.

    Failure semantics: a :class:`ReproError` raised by a cell is
    deterministic — the lowest-indexed failing cell's error is raised
    (matching what a serial run raises first). A crashed worker process
    retries the affected chunks up to ``crash_retries`` times on a
    fresh pool before :class:`RetryExhaustedError`.
    """
    specs = list(tasks)
    total = len(specs)
    if total == 0:
        return []
    if jobs <= 1:
        results_list: list[Any] = []
        for i, spec in enumerate(specs):
            results_list.append(spec.build())
            if progress is not None:
                progress(i + 1, total)
        return results_list

    if chunk_size is None:
        chunk_size = max(1, math.ceil(total / (jobs * 4)))
    indexed = list(enumerate(specs))
    chunk_list = [indexed[i : i + chunk_size] for i in range(0, total, chunk_size)]
    remaining: dict[int, list[tuple[int, CallSpec]]] = dict(enumerate(chunk_list))
    attempts: dict[int, int] = {cid: 0 for cid in remaining}
    results: dict[int, Any] = {}
    errors: dict[int, ReproError] = {}
    done = 0

    while remaining:
        crashed: list[int] = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(_run_chunk, chunk): cid
                for cid, chunk in sorted(remaining.items())
            }
            for fut in as_completed(futures):
                cid = futures[fut]
                try:
                    chunk_out = fut.result()
                except BrokenProcessPool:
                    # The pool died under this chunk (or before it ran);
                    # retry it on a fresh pool, a bounded number of times.
                    attempts[cid] += 1
                    if attempts[cid] > crash_retries:
                        idxs = [i for i, _ in remaining[cid]]
                        raise RetryExhaustedError(
                            f"sweep chunk of cells {idxs} crashed the worker "
                            f"pool {attempts[cid]} times "
                            f"(crash_retries={crash_retries})"
                        ) from None
                    crashed.append(cid)
                    continue
                for idx, status, payload in chunk_out:
                    if status == "ok":
                        results[idx] = payload
                    else:
                        errors[idx] = payload
                    done += 1
                    if progress is not None:
                        progress(done, total)
        remaining = {cid: remaining[cid] for cid in crashed}

    if errors:
        raise errors[min(errors)]
    return [results[i] for i in range(total)]


# -- simulation sweeps ------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One (program × machine × scheduler × seed) point of a sweep.

    ``program`` is a :class:`CallSpec` so the (potentially large) task
    graph is rebuilt inside the executing process instead of being
    pickled across; builders are deterministic, so rebuilding is
    equivalent to reusing. ``perfmodel`` and ``faults`` are likewise
    factories, built fresh per cell. ``extra`` is cell metadata (tile
    size, stream count, injected fault rate, ...) copied into the
    result row's ``extra`` mapping.
    """

    program: CallSpec
    machine: MachineModel
    scheduler: str
    seed: int = 0
    noise_sigma: float = 0.0
    sched_params: dict = field(default_factory=dict)
    perfmodel: CallSpec | None = None
    faults: CallSpec | None = None
    extra: dict = field(default_factory=dict)


def _run_cell(cell: SweepCell, experiment: str) -> ExperimentResult:
    """Simulate one sweep cell (in whichever process executes it)."""
    program = cell.program.build()
    res = simulate(
        program,
        cell.machine,
        cell.scheduler,
        seed=cell.seed,
        noise_sigma=cell.noise_sigma,
        perfmodel=cell.perfmodel.build() if cell.perfmodel is not None else None,
        faults=cell.faults.build() if cell.faults is not None else None,
        sched_params=cell.sched_params,
    )
    extra = dict(cell.extra)
    if res.faults is not None:
        for key, value in res.faults.as_dict().items():
            extra.setdefault(f"faults.{key}", value)
    return ExperimentResult(
        experiment=experiment,
        machine=cell.machine.name,
        scheduler=cell.scheduler,
        workload=program.name,
        makespan_us=res.makespan,
        gflops=res.gflops,
        bytes_transferred=res.bytes_transferred,
        idle_frac_by_arch=dict(res.idle_frac_by_arch),
        extra=extra,
    )


@dataclass
class SweepSpec:
    """A declarative sweep: an experiment name plus an ordered cell list.

    Build the cell list directly for irregular sweeps (per-cell tile
    sizes, fault scenarios, ...), or via :meth:`grid` for a full
    cartesian product. Cell order *is* result order.
    """

    experiment: str
    cells: list[SweepCell] = field(default_factory=list)

    @classmethod
    def grid(
        cls,
        experiment: str,
        *,
        programs: Sequence[CallSpec],
        machines: Sequence[MachineModel],
        schedulers: Sequence[str],
        seeds: Sequence[int] | int = (0,),
        noise_sigma: float = 0.0,
        sched_params: dict | None = None,
    ) -> "SweepSpec":
        """Cartesian-product sweep over machines ▸ programs ▸ schedulers
        ▸ seeds (the nesting order the serial harness used).

        ``seeds`` may be an explicit sequence, or an int count ``n`` —
        then ``fanout_seeds(0, n)`` derives the per-replicate seeds.
        """
        seed_list = fanout_seeds(0, seeds) if isinstance(seeds, int) else list(seeds)
        params = dict(sched_params) if sched_params else {}
        cells = [
            SweepCell(
                program=program,
                machine=machine,
                scheduler=scheduler,
                seed=seed,
                noise_sigma=noise_sigma,
                sched_params=params,
            )
            for machine in machines
            for program in programs
            for scheduler in schedulers
            for seed in seed_list
        ]
        return cls(experiment=experiment, cells=cells)


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    crash_retries: int = 2,
    progress: Callable[[int, int], None] | None = None,
) -> list[ExperimentResult]:
    """Execute every cell of ``spec``; one result row per cell, in cell
    order, identical for any ``jobs`` value (see :func:`run_tasks`)."""
    tasks = [CallSpec(_run_cell, (cell, spec.experiment)) for cell in spec.cells]
    return run_tasks(
        tasks,
        jobs=jobs,
        chunk_size=chunk_size,
        crash_retries=crash_retries,
        progress=progress,
    )
