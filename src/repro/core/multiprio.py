"""Import shim — MultiPrio moved to :mod:`repro.schedulers.multiprio`.

The scheduler now lives with its peers in :mod:`repro.schedulers` (it
implements the same :class:`~repro.schedulers.base.Scheduler` contract
the baselines do); the heuristics it composes — gain, criticality,
locality, the per-node heaps — remain here in :mod:`repro.core`. This
module keeps the historical ``repro.core.multiprio`` import path
working.
"""

from repro.schedulers.multiprio import MultiPrio

__all__ = ["MultiPrio"]
