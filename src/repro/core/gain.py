"""The gain (affinity) heuristic — Eq. (1) of the paper.

For a ready task ``t`` and an architecture ``a``::

    gain(t, a) = 1                                          if |A| = 1
               = (δ(t, a_2nd) - δ(t, a) + hd(a)) / (2·hd(a))  if a is fastest
               = (δ(t, a_1st) - δ(t, a) + hd(a)) / (2·hd(a))  otherwise

``hd(a)`` is the highest execution-time difference recorded so far on
architecture ``a`` (a running maximum over pushed tasks of the absolute
difference appearing in the numerator — the semantics pinned down by the
paper's Table II worked example, where hd(a₁) = hd(a₂) = 19 ms).

The resulting scores are in [0, 1]: the fastest architecture always gets
a score in [0.5, 1], every slower one a score in [0, 0.5], so across any
heap pair the task "pulls" toward the unit it accelerates most on.
"""

from __future__ import annotations

from repro.utils.validation import ValidationError


def pairwise_gain(delta_a: float, delta_ref: float, hd: float, fastest: bool) -> float:
    """Gain of an architecture given its δ, the reference δ and hd(a).

    ``delta_ref`` is δ on the second-fastest architecture when ``fastest``
    is true, and δ on the fastest architecture otherwise. With ``hd == 0``
    (no difference ever recorded) the score degenerates to the neutral 0.5.
    """
    if hd < 0:
        raise ValidationError(f"hd must be >= 0, got {hd}")
    if hd == 0.0:
        return 0.5
    value = (delta_ref - delta_a + hd) / (2.0 * hd)
    # Clamp: a task's own difference may exceed a stale hd for a few pushes.
    return min(1.0, max(0.0, value))


def gain_scores(deltas: dict[str, float], hd: dict[str, float]) -> dict[str, float]:
    """Gain of every architecture for one task (pure function).

    ``deltas`` maps each executable architecture to δ(t, a); ``hd`` maps
    each architecture to its current highest-difference. Single-
    architecture tasks score 1 (the |A| = 1 branch of Eq. 1).
    """
    if not deltas:
        raise ValidationError("gain_scores needs at least one architecture")
    if len(deltas) == 1:
        return {arch: 1.0 for arch in deltas}
    ordered = sorted(deltas, key=lambda a: (deltas[a], a))
    fastest, second = ordered[0], ordered[1]
    out: dict[str, float] = {}
    for arch, delta in deltas.items():
        if arch == fastest:
            out[arch] = pairwise_gain(delta, deltas[second], hd.get(arch, 0.0), True)
        else:
            out[arch] = pairwise_gain(delta, deltas[fastest], hd.get(arch, 0.0), False)
    return out


class GainTracker:
    """Stateful gain computation with the running hd(a) maxima.

    ``observe_and_score`` first folds the task's execution-time
    differences into the per-architecture hd maxima, then scores the task
    — so the very first task on a fresh tracker already receives a
    non-degenerate score (its own difference defines hd), matching the
    Table II example where hd is the maximum over the displayed task set.
    """

    def __init__(self) -> None:
        self._hd: dict[str, float] = {}

    def hd(self, arch: str) -> float:
        """Current highest recorded difference for ``arch``."""
        return self._hd.get(arch, 0.0)

    def observe_and_score(self, deltas: dict[str, float]) -> dict[str, float]:
        """Update hd(a) with this task, then return its gain scores."""
        if not deltas:
            raise ValidationError("observe_and_score needs at least one architecture")
        if len(deltas) >= 2:
            ordered = sorted(deltas, key=lambda a: (deltas[a], a))
            fastest, second = ordered[0], ordered[1]
            for arch, delta in deltas.items():
                ref = deltas[second] if arch == fastest else deltas[fastest]
                diff = abs(ref - delta)
                if diff > self._hd.get(arch, 0.0):
                    self._hd[arch] = diff
        return gain_scores(deltas, self._hd)

    def reset(self) -> None:
        """Forget all recorded differences."""
        self._hd.clear()
