"""Task criticality — the Normalized Out-Degree (NOD) heuristic, Eq. (2).

::

    NOD(t) = Σ_{s ∈ λ⁺(t, P_m)}  1 / |λ⁻(s, P_m)|

A task whose completion releases many successors — each of which has few
other predecessors — is critical: executing it unlocks parallelism. The
paper's Fig. 3 example (NOD(T2) = 2.5, NOD(T3) = 1) is reproduced in the
tests.

The optional architecture filter restricts λ⁺/λ⁻ to tasks executable on
the considered processing-unit type, per the paper's λ⁺(t, P_m) notation;
with no filter the plain DAG degrees are used.
"""

from __future__ import annotations

from typing import Callable

from repro.runtime.task import Task

ArchFilter = Callable[[Task], bool]


def nod(task: Task, arch_filter: ArchFilter | None = None) -> float:
    """Normalized Out-Degree of ``task``.

    ``arch_filter`` selects the successors (and the predecessors counted
    in the denominator) relevant to one processing-unit type. A successor
    whose filtered predecessor set is empty cannot happen when the filter
    accepts ``task`` itself; as a safety net the denominator is clamped
    to at least 1.
    """
    total = 0.0
    for succ in task.succs:
        if arch_filter is not None and not arch_filter(succ):
            continue
        if arch_filter is None:
            n_preds = len(succ.preds)
        else:
            n_preds = sum(1 for p in succ.preds if arch_filter(p))
        total += 1.0 / max(1, n_preds)
    return total


class NODTracker:
    """Running-maximum normalization of NOD scores to [0, 1].

    MultiPrio's Alg. 1 pushes ``get_prio_score_normalized(t)``; since the
    DAG is revealed dynamically, the normalizer is the largest NOD seen
    so far (per tracker — MultiPrio keeps one per architecture type).
    """

    def __init__(self) -> None:
        self._max = 0.0

    @property
    def max_seen(self) -> float:
        """Largest raw NOD observed so far."""
        return self._max

    def observe_and_score(self, raw_nod: float) -> float:
        """Fold ``raw_nod`` into the running max and return it normalized."""
        if raw_nod < 0:
            raise ValueError(f"NOD cannot be negative, got {raw_nod}")
        if raw_nod > self._max:
            self._max = raw_nod
        if self._max == 0.0:
            return 0.0
        return raw_nod / self._max

    def reset(self) -> None:
        """Forget the running maximum."""
        self._max = 0.0
