"""Data locality — the LS_SDH² score, Eq. (3) (from Bramas [20]).

::

    LS_SDH²(m, t) = Σ_{d ∈ D_{t,m}^R} d.size  +  Σ_{d ∈ D_{t,m}^W} d.size²

where ``D_{t,m}`` is the data used by ``t`` already resident on memory
node ``m``, split by access mode. Write accesses count quadratically:
keeping the *output* data where it already lives avoids both the fetch
and the later invalidation traffic, so it dominates the score.

A handle accessed in RW (or COMMUTE) mode contributes to both sums, as
it is both read and written.
"""

from __future__ import annotations

from repro.runtime.task import Task


def ls_sdh2(task: Task, node: int) -> float:
    """Locality score of ``task`` on memory node ``node`` (higher = more local)."""
    score = 0.0
    for handle, mode in task.accesses:
        if not handle.is_valid_on(node):
            continue
        if mode.is_read:
            score += float(handle.size)
        if mode.is_write:
            score += float(handle.size) ** 2
    return score
