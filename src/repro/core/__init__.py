"""The paper's contribution: the MultiPrio scheduler and its heuristics.

* :mod:`repro.core.heap` — per-memory-node binary max-heaps with two-key
  scores, position-tracked removal (for eviction) and lazy invalidation
  of duplicated entries (Section III-B / IV-B).
* :mod:`repro.core.gain` — the gain (affinity) heuristic, Eq. (1).
* :mod:`repro.core.criticality` — Normalized Out-Degree, Eq. (2).
* :mod:`repro.core.locality` — the LS_SDH² locality score, Eq. (3).
The scheduler itself — Alg. 1 (PUSH), Alg. 2 (POP), the pop condition
and the eviction mechanism — lives with the other policies in
:mod:`repro.schedulers.multiprio`; ``repro.core.MultiPrio`` and the
:mod:`repro.core.multiprio` module remain as import shims (resolved
lazily to avoid a cycle through :mod:`repro.schedulers`).
"""

from repro.core.heap import TaskHeap, HeapEntry, RelaxedTaskHeap
from repro.core.gain import GainTracker, gain_scores, pairwise_gain
from repro.core.criticality import nod, NODTracker
from repro.core.locality import ls_sdh2

__all__ = [
    "TaskHeap",
    "HeapEntry",
    "RelaxedTaskHeap",
    "GainTracker",
    "gain_scores",
    "pairwise_gain",
    "nod",
    "NODTracker",
    "ls_sdh2",
    "MultiPrio",
]


def __getattr__(name: str):
    """Back-compat: ``repro.core.MultiPrio`` after the move (lazy)."""
    if name == "MultiPrio":
        from repro.schedulers.multiprio import MultiPrio

        return MultiPrio
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
