"""The paper's contribution: the MultiPrio scheduler and its heuristics.

* :mod:`repro.core.heap` — per-memory-node binary max-heaps with two-key
  scores, position-tracked removal (for eviction) and lazy invalidation
  of duplicated entries (Section III-B / IV-B).
* :mod:`repro.core.gain` — the gain (affinity) heuristic, Eq. (1).
* :mod:`repro.core.criticality` — Normalized Out-Degree, Eq. (2).
* :mod:`repro.core.locality` — the LS_SDH² locality score, Eq. (3).
* :mod:`repro.core.multiprio` — the scheduler itself: Alg. 1 (PUSH),
  Alg. 2 (POP), the pop condition and the eviction mechanism.
"""

from repro.core.heap import TaskHeap, HeapEntry
from repro.core.gain import GainTracker, gain_scores, pairwise_gain
from repro.core.criticality import nod, NODTracker
from repro.core.locality import ls_sdh2
from repro.core.multiprio import MultiPrio

__all__ = [
    "TaskHeap",
    "HeapEntry",
    "GainTracker",
    "gain_scores",
    "pairwise_gain",
    "nod",
    "NODTracker",
    "ls_sdh2",
    "MultiPrio",
]
