"""Binary max-heap of ready tasks with two-key scores.

One heap exists per memory node (|H| = |M|, Section III-B). Entries are
ordered by the *gain* score first and the *criticality* score second,
with insertion order as the final deterministic tiebreak (older first).

The heap supports what MultiPrio's POP needs beyond a textbook heap:

* ``top_candidates(n)`` — the live entries among the first ``n`` array
  slots, for the locality-aware selection window;
* ``remove(entry)`` — O(log n) removal of an arbitrary entry, for the
  eviction mechanism;
* lazy invalidation — a task popped from one node's heap leaves *stale*
  duplicates in the others; those are recognized and discarded when
  encountered, exactly as the paper describes ("when workers try to
  select these duplicates, they will recognize that they have already
  been processed and remove them").

Staleness is detected two ways, combined with *or*:

* the entry-level ``dead`` tombstone — the scheduler marks every
  duplicate of a taken task dead at take time, an O(#duplicates) flag
  write with no heap mutation. Tombstoned entries are physically purged
  only when ``best()``/``top_candidates()``/``purge_stale()`` encounter
  them, so the purge cost rides on queries that were already touching
  those slots. Because tombstones live on the *entry*, a task that is
  rolled back and re-pushed (fault retry) cannot resurrect its old
  duplicates — the stale entries stay dead even though the task itself
  is READY again;
* the optional task-level ``is_stale`` predicate, kept for schedulers
  (and tests) that derive staleness from task state instead of marking
  entries.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.runtime.task import Task


class HeapEntry:
    """One (task, gain, prio) node of a :class:`TaskHeap`.

    ``sort_key`` is the ordering tuple, computed once at construction —
    sift comparisons read the attribute instead of re-allocating the
    tuple. ``dead`` is the lazy-deletion tombstone: setting it costs one
    attribute write; the heap purges the entry whenever a query next
    encounters it.
    """

    __slots__ = ("task", "gain", "prio", "seq", "pos", "dead", "sort_key", "owner")

    def __init__(self, task: Task, gain: float, prio: float, seq: int) -> None:
        self.task = task
        self.gain = gain
        self.prio = prio
        self.seq = seq
        self.pos = -1  # maintained by the heap
        self.dead = False  # tombstone; set by the scheduler at take time
        self.sort_key = (gain, prio, -seq)
        # Sub-heap that physically holds this entry; only set (and used)
        # by RelaxedTaskHeap, whose remove() must route to the right sub.
        self.owner: "TaskHeap | None" = None

    def key(self) -> tuple[float, float, int]:
        """Ordering key; larger means more prioritized."""
        return self.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HeapEntry {self.task.name} gain={self.gain:.3f} prio={self.prio:.3f}>"


class TaskHeap:
    """Array-based binary max-heap with position tracking.

    Parameters
    ----------
    node:
        Memory node id this heap serves (informational).
    is_stale:
        Optional task-level predicate marking entries whose task was
        already taken from a duplicate heap; checked *in addition to*
        the entry-level ``dead`` tombstone. ``None`` (the fast path)
        relies on tombstones alone.
    on_discard:
        Callback invoked with each discarded stale entry (the scheduler
        uses it to keep its ready-task counters exact).
    """

    def __init__(
        self,
        node: int = -1,
        is_stale: Callable[[Task], bool] | None = None,
        on_discard: Callable[[HeapEntry], None] | None = None,
    ) -> None:
        self.node = node
        self._a: list[HeapEntry] = []
        self._seq = 0
        self._is_stale = is_stale
        self._on_discard = on_discard

    # -- basics ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._a)

    def __iter__(self) -> Iterator[HeapEntry]:
        return iter(self._a)

    def clear(self) -> None:
        """Drop all entries."""
        self._a.clear()

    def insert(self, task: Task, gain: float, prio: float) -> HeapEntry:
        """Insert a task with its two scores; returns the entry."""
        entry = HeapEntry(task, gain, prio, self._seq)
        self._seq += 1
        entry.pos = len(self._a)
        self._a.append(entry)
        self._sift_up(entry.pos)
        return entry

    def remove(self, entry: HeapEntry) -> None:
        """Remove an arbitrary entry in O(log n)."""
        pos = entry.pos
        if pos < 0 or pos >= len(self._a) or self._a[pos] is not entry:
            raise ValueError(f"entry {entry!r} is not in this heap")
        last = self._a.pop()
        entry.pos = -1
        if last is not entry:
            self._a[pos] = last
            last.pos = pos
            self._sift_down(pos)
            self._sift_up(pos)

    # -- MultiPrio-facing queries ------------------------------------------

    def best(self) -> HeapEntry | None:
        """The highest-scored live entry (stale roots are discarded)."""
        pred = self._is_stale
        while self._a:
            root = self._a[0]
            if root.dead or (pred is not None and pred(root.task)):
                self._discard(root)
            else:
                return root
        return None

    def top_candidates(self, n: int) -> list[HeapEntry]:
        """Live entries among the first ``n`` heap slots.

        This is the paper's "first n tasks in the heap" window for the
        locality selection. Stale entries found in the window are
        discarded and the window re-scanned, so the result contains only
        live tasks. The returned list is ordered by heap position (the
        root, if any, comes first).
        """
        pred = self._is_stale
        while True:
            window = self._a[: max(0, n)]
            if pred is None:
                stale = [e for e in window if e.dead]
            else:
                stale = [e for e in window if e.dead or pred(e.task)]
            if not stale:
                return window
            for entry in stale:
                self._discard(entry)

    def purge_stale(self) -> int:
        """Discard every stale entry in the heap; returns the count."""
        pred = self._is_stale
        if pred is None:
            stale = [e for e in self._a if e.dead]
        else:
            stale = [e for e in self._a if e.dead or pred(e.task)]
        for entry in stale:
            self._discard(entry)
        return len(stale)

    def _discard(self, entry: HeapEntry) -> None:
        self.remove(entry)
        if self._on_discard is not None:
            self._on_discard(entry)

    # -- heap mechanics ---------------------------------------------------

    def _sift_up(self, pos: int) -> None:
        a = self._a
        entry = a[pos]
        key = entry.sort_key
        while pos > 0:
            parent_pos = (pos - 1) >> 1
            parent = a[parent_pos]
            if key <= parent.sort_key:
                break
            a[pos] = parent
            parent.pos = pos
            pos = parent_pos
        a[pos] = entry
        entry.pos = pos

    def _sift_down(self, pos: int) -> None:
        a = self._a
        size = len(a)
        entry = a[pos]
        key = entry.sort_key
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and a[right].sort_key > a[child].sort_key:
                child = right
            if a[child].sort_key <= key:
                break
            a[pos] = a[child]
            a[pos].pos = pos
            pos = child
        a[pos] = entry
        entry.pos = pos

    # -- invariants (used by tests) ---------------------------------------------

    def check_invariants(self) -> None:
        """Assert heap order and position consistency (test helper)."""
        for i, entry in enumerate(self._a):
            assert entry.pos == i, f"entry at {i} thinks it is at {entry.pos}"
            parent = (i - 1) >> 1
            if i > 0:
                assert self._a[parent].key() >= entry.key(), (
                    f"heap order violated at {i}"
                )


_M64 = (1 << 64) - 1


class RelaxedTaskHeap:
    """MultiQueue-style relaxed priority heap: ``k`` sloppy sub-heaps.

    Postnikova et al. ("Multi-Queues Can Be State-of-the-Art Priority
    Schedulers") relax exact top-1 delete-min into *two-choice* queries
    over ``k`` independent heaps: inserts go to the shorter of two
    sampled sub-heaps, queries return the better root of two sampled
    sub-heaps. In the concurrent original this trades rank exactness for
    contention-freedom; here (single-threaded simulation) it trades
    exactness for O(log(n/k)) operations on smaller heaps and models the
    relaxed semantics a parallel runtime would exhibit.

    **Hard rank-error invariant**: a query compares the roots of the two
    sampled sub-heaps A and B and returns their max — which is the exact
    max of A ∪ B. Only elements outside both sub-heaps can beat it, so
    the returned entry's rank error is at most ``n - |A| - |B|``. The
    sizes of the last sampled pair are exposed as :attr:`last_sample`
    for property tests to assert exactly that bound.

    The class mirrors the :class:`TaskHeap` surface MultiPrio drives
    (``insert`` / ``remove`` / ``best`` / ``top_candidates`` /
    ``purge_stale`` / iteration / ``check_invariants``), so it is a
    drop-in replacement behind MultiPrio's ``relaxed=k`` knob. Queries
    that cover the whole structure (``top_candidates(n)`` with
    ``n >= len(self)``, as the engine's liveness rescue issues) fall
    back to an exact multi-heap scan, so relaxation never causes a
    spurious deadlock.

    The sampling RNG is a self-seeded xorshift64*, deterministic per
    (seed, node) and independent of the engine's RNG stream.
    """

    def __init__(
        self,
        k: int,
        node: int = -1,
        is_stale: Callable[[Task], bool] | None = None,
        on_discard: Callable[[HeapEntry], None] | None = None,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError(f"RelaxedTaskHeap needs k >= 1, got {k}")
        self.node = node
        self.k = k
        self._subs = [
            TaskHeap(node=node, is_stale=is_stale, on_discard=on_discard)
            for _ in range(k)
        ]
        # xorshift64* state; any odd non-zero seed mix works.
        self._rng = ((seed * 0x9E3779B97F4A7C15) ^ ((node + 7) * 0xBF58476D1CE4E5B9)
                     | 1) & _M64
        #: Sizes (|A|, |B|) of the two sub-heaps the last two-choice
        #: query sampled (after stale discards); (0, 0) before any query.
        self.last_sample: tuple[int, int] = (0, 0)

    # -- basics ---------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self._subs)

    def __iter__(self) -> Iterator[HeapEntry]:
        for sub in self._subs:
            yield from sub

    def clear(self) -> None:
        """Drop all entries from every sub-heap."""
        for sub in self._subs:
            sub.clear()

    def _pair(self) -> tuple[int, int]:
        """Two-choice sample: two (possibly equal) sub-heap indices."""
        s = self._rng
        s ^= (s << 13) & _M64
        s ^= s >> 7
        s ^= (s << 17) & _M64
        self._rng = s
        return s % self.k, (s >> 32) % self.k

    # -- TaskHeap surface ------------------------------------------------

    def insert(self, task: Task, gain: float, prio: float) -> HeapEntry:
        """Two-choice insert: the shorter of two sampled sub-heaps wins."""
        i, j = self._pair()
        sub = self._subs[i] if len(self._subs[i]) <= len(self._subs[j]) else self._subs[j]
        entry = sub.insert(task, gain, prio)
        entry.owner = sub
        return entry

    def remove(self, entry: HeapEntry) -> None:
        """Remove an arbitrary entry from whichever sub-heap holds it."""
        owner = entry.owner
        if owner is None:
            raise ValueError(f"entry {entry!r} has no owning sub-heap")
        owner.remove(entry)

    def best(self) -> HeapEntry | None:
        """Two-choice query: the better live root of two sampled sub-heaps.

        The result is the exact max of the sampled pair's union, hence
        rank error <= n - |A| - |B|. When both samples come up empty the
        query degrades to an exact scan over every sub-heap (liveness).
        """
        i, j = self._pair()
        a, b = self._subs[i], self._subs[j]
        root_a, root_b = a.best(), b.best()
        self.last_sample = (len(a), len(b) if b is not a else 0)
        if root_a is None and root_b is None:
            return self._exact_best()
        if root_a is None:
            return root_b
        if root_b is None or root_a.sort_key >= root_b.sort_key:
            return root_a
        return root_b

    def _exact_best(self) -> HeapEntry | None:
        best: HeapEntry | None = None
        for sub in self._subs:
            root = sub.best()
            if root is not None and (best is None or root.sort_key > best.sort_key):
                best = root
        return best

    def top_candidates(self, n: int) -> list[HeapEntry]:
        """Candidate window from the better of two sampled sub-heaps.

        ``n >= len(self)`` requests the whole structure (the engine's
        rescue path and MultiPrio's force-pop): that case is answered
        exactly by concatenating every sub-heap's live entries.
        """
        if n >= sum(len(s) for s in self._subs):
            out: list[HeapEntry] = []
            for sub in self._subs:
                out.extend(sub.top_candidates(len(sub)))
            return out
        i, j = self._pair()
        a, b = self._subs[i], self._subs[j]
        root_a, root_b = a.best(), b.best()
        self.last_sample = (len(a), len(b) if b is not a else 0)
        if root_a is None and root_b is None:
            for sub in self._subs:
                if sub.best() is not None:
                    return sub.top_candidates(n)
            return []
        if root_a is None:
            chosen = b
        elif root_b is None or root_a.sort_key >= root_b.sort_key:
            chosen = a
        else:
            chosen = b
        return chosen.top_candidates(n)

    def purge_stale(self) -> int:
        """Discard every stale entry in every sub-heap."""
        return sum(sub.purge_stale() for sub in self._subs)

    def check_invariants(self) -> None:
        """Assert order/position consistency of every sub-heap and that
        each entry's owner pointer matches the sub-heap holding it."""
        for sub in self._subs:
            sub.check_invariants()
            for entry in sub:
                assert entry.owner is sub, (
                    f"{entry!r} owned by the wrong sub-heap"
                )
