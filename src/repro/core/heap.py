"""Binary max-heap of ready tasks with two-key scores.

One heap exists per memory node (|H| = |M|, Section III-B). Entries are
ordered by the *gain* score first and the *criticality* score second,
with insertion order as the final deterministic tiebreak (older first).

The heap supports what MultiPrio's POP needs beyond a textbook heap:

* ``top_candidates(n)`` — the live entries among the first ``n`` array
  slots, for the locality-aware selection window;
* ``remove(entry)`` — O(log n) removal of an arbitrary entry, for the
  eviction mechanism;
* lazy invalidation — a task popped from one node's heap leaves *stale*
  duplicates in the others; those are recognized and discarded when
  encountered, exactly as the paper describes ("when workers try to
  select these duplicates, they will recognize that they have already
  been processed and remove them").

Staleness is detected two ways, combined with *or*:

* the entry-level ``dead`` tombstone — the scheduler marks every
  duplicate of a taken task dead at take time, an O(#duplicates) flag
  write with no heap mutation. Tombstoned entries are physically purged
  only when ``best()``/``top_candidates()``/``purge_stale()`` encounter
  them, so the purge cost rides on queries that were already touching
  those slots. Because tombstones live on the *entry*, a task that is
  rolled back and re-pushed (fault retry) cannot resurrect its old
  duplicates — the stale entries stay dead even though the task itself
  is READY again;
* the optional task-level ``is_stale`` predicate, kept for schedulers
  (and tests) that derive staleness from task state instead of marking
  entries.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.runtime.task import Task


class HeapEntry:
    """One (task, gain, prio) node of a :class:`TaskHeap`.

    ``sort_key`` is the ordering tuple, computed once at construction —
    sift comparisons read the attribute instead of re-allocating the
    tuple. ``dead`` is the lazy-deletion tombstone: setting it costs one
    attribute write; the heap purges the entry whenever a query next
    encounters it.
    """

    __slots__ = ("task", "gain", "prio", "seq", "pos", "dead", "sort_key")

    def __init__(self, task: Task, gain: float, prio: float, seq: int) -> None:
        self.task = task
        self.gain = gain
        self.prio = prio
        self.seq = seq
        self.pos = -1  # maintained by the heap
        self.dead = False  # tombstone; set by the scheduler at take time
        self.sort_key = (gain, prio, -seq)

    def key(self) -> tuple[float, float, int]:
        """Ordering key; larger means more prioritized."""
        return self.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HeapEntry {self.task.name} gain={self.gain:.3f} prio={self.prio:.3f}>"


class TaskHeap:
    """Array-based binary max-heap with position tracking.

    Parameters
    ----------
    node:
        Memory node id this heap serves (informational).
    is_stale:
        Optional task-level predicate marking entries whose task was
        already taken from a duplicate heap; checked *in addition to*
        the entry-level ``dead`` tombstone. ``None`` (the fast path)
        relies on tombstones alone.
    on_discard:
        Callback invoked with each discarded stale entry (the scheduler
        uses it to keep its ready-task counters exact).
    """

    def __init__(
        self,
        node: int = -1,
        is_stale: Callable[[Task], bool] | None = None,
        on_discard: Callable[[HeapEntry], None] | None = None,
    ) -> None:
        self.node = node
        self._a: list[HeapEntry] = []
        self._seq = 0
        self._is_stale = is_stale
        self._on_discard = on_discard

    # -- basics ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._a)

    def __iter__(self) -> Iterator[HeapEntry]:
        return iter(self._a)

    def clear(self) -> None:
        """Drop all entries."""
        self._a.clear()

    def insert(self, task: Task, gain: float, prio: float) -> HeapEntry:
        """Insert a task with its two scores; returns the entry."""
        entry = HeapEntry(task, gain, prio, self._seq)
        self._seq += 1
        entry.pos = len(self._a)
        self._a.append(entry)
        self._sift_up(entry.pos)
        return entry

    def remove(self, entry: HeapEntry) -> None:
        """Remove an arbitrary entry in O(log n)."""
        pos = entry.pos
        if pos < 0 or pos >= len(self._a) or self._a[pos] is not entry:
            raise ValueError(f"entry {entry!r} is not in this heap")
        last = self._a.pop()
        entry.pos = -1
        if last is not entry:
            self._a[pos] = last
            last.pos = pos
            self._sift_down(pos)
            self._sift_up(pos)

    # -- MultiPrio-facing queries ------------------------------------------

    def best(self) -> HeapEntry | None:
        """The highest-scored live entry (stale roots are discarded)."""
        pred = self._is_stale
        while self._a:
            root = self._a[0]
            if root.dead or (pred is not None and pred(root.task)):
                self._discard(root)
            else:
                return root
        return None

    def top_candidates(self, n: int) -> list[HeapEntry]:
        """Live entries among the first ``n`` heap slots.

        This is the paper's "first n tasks in the heap" window for the
        locality selection. Stale entries found in the window are
        discarded and the window re-scanned, so the result contains only
        live tasks. The returned list is ordered by heap position (the
        root, if any, comes first).
        """
        pred = self._is_stale
        while True:
            window = self._a[: max(0, n)]
            if pred is None:
                stale = [e for e in window if e.dead]
            else:
                stale = [e for e in window if e.dead or pred(e.task)]
            if not stale:
                return window
            for entry in stale:
                self._discard(entry)

    def purge_stale(self) -> int:
        """Discard every stale entry in the heap; returns the count."""
        pred = self._is_stale
        if pred is None:
            stale = [e for e in self._a if e.dead]
        else:
            stale = [e for e in self._a if e.dead or pred(e.task)]
        for entry in stale:
            self._discard(entry)
        return len(stale)

    def _discard(self, entry: HeapEntry) -> None:
        self.remove(entry)
        if self._on_discard is not None:
            self._on_discard(entry)

    # -- heap mechanics ---------------------------------------------------

    def _sift_up(self, pos: int) -> None:
        a = self._a
        entry = a[pos]
        key = entry.sort_key
        while pos > 0:
            parent_pos = (pos - 1) >> 1
            parent = a[parent_pos]
            if key <= parent.sort_key:
                break
            a[pos] = parent
            parent.pos = pos
            pos = parent_pos
        a[pos] = entry
        entry.pos = pos

    def _sift_down(self, pos: int) -> None:
        a = self._a
        size = len(a)
        entry = a[pos]
        key = entry.sort_key
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and a[right].sort_key > a[child].sort_key:
                child = right
            if a[child].sort_key <= key:
                break
            a[pos] = a[child]
            a[pos].pos = pos
            pos = child
        a[pos] = entry
        entry.pos = pos

    # -- invariants (used by tests) ---------------------------------------------

    def check_invariants(self) -> None:
        """Assert heap order and position consistency (test helper)."""
        for i, entry in enumerate(self._a):
            assert entry.pos == i, f"entry at {i} thinks it is at {entry.pos}"
            parent = (i - 1) >> 1
            if i > 0:
                assert self._a[parent].key() >= entry.key(), (
                    f"heap order violated at {i}"
                )
