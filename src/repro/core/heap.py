"""Binary max-heap of ready tasks with two-key scores.

One heap exists per memory node (|H| = |M|, Section III-B). Entries are
ordered by the *gain* score first and the *criticality* score second,
with insertion order as the final deterministic tiebreak (older first).

The heap supports what MultiPrio's POP needs beyond a textbook heap:

* ``top_candidates(n)`` — the live entries among the first ``n`` array
  slots, for the locality-aware selection window;
* ``remove(entry)`` — O(log n) removal of an arbitrary entry, for the
  eviction mechanism;
* lazy invalidation — a task popped from one node's heap leaves *stale*
  duplicates in the others; those are recognized through the
  ``is_stale`` predicate and discarded when encountered, exactly as the
  paper describes ("when workers try to select these duplicates, they
  will recognize that they have already been processed and remove them").
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.runtime.task import Task


class HeapEntry:
    """One (task, gain, prio) node of a :class:`TaskHeap`."""

    __slots__ = ("task", "gain", "prio", "seq", "pos")

    def __init__(self, task: Task, gain: float, prio: float, seq: int) -> None:
        self.task = task
        self.gain = gain
        self.prio = prio
        self.seq = seq
        self.pos = -1  # maintained by the heap

    def key(self) -> tuple[float, float, int]:
        """Ordering key; larger means more prioritized."""
        return (self.gain, self.prio, -self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HeapEntry {self.task.name} gain={self.gain:.3f} prio={self.prio:.3f}>"


class TaskHeap:
    """Array-based binary max-heap with position tracking.

    Parameters
    ----------
    node:
        Memory node id this heap serves (informational).
    is_stale:
        Predicate marking entries whose task was already taken from a
        duplicate heap; stale entries are discarded on sight.
    on_discard:
        Callback invoked with each discarded stale entry (the scheduler
        uses it to keep its ready-task counters exact).
    """

    def __init__(
        self,
        node: int = -1,
        is_stale: Callable[[Task], bool] | None = None,
        on_discard: Callable[[HeapEntry], None] | None = None,
    ) -> None:
        self.node = node
        self._a: list[HeapEntry] = []
        self._seq = 0
        self._is_stale = is_stale or (lambda task: False)
        self._on_discard = on_discard

    # -- basics ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._a)

    def __iter__(self) -> Iterator[HeapEntry]:
        return iter(self._a)

    def clear(self) -> None:
        """Drop all entries."""
        self._a.clear()

    def insert(self, task: Task, gain: float, prio: float) -> HeapEntry:
        """Insert a task with its two scores; returns the entry."""
        entry = HeapEntry(task, gain, prio, self._seq)
        self._seq += 1
        entry.pos = len(self._a)
        self._a.append(entry)
        self._sift_up(entry.pos)
        return entry

    def remove(self, entry: HeapEntry) -> None:
        """Remove an arbitrary entry in O(log n)."""
        pos = entry.pos
        if pos < 0 or pos >= len(self._a) or self._a[pos] is not entry:
            raise ValueError(f"entry {entry!r} is not in this heap")
        last = self._a.pop()
        entry.pos = -1
        if last is not entry:
            self._a[pos] = last
            last.pos = pos
            self._sift_down(pos)
            self._sift_up(pos)

    # -- MultiPrio-facing queries ------------------------------------------

    def best(self) -> HeapEntry | None:
        """The highest-scored live entry (stale roots are discarded)."""
        while self._a:
            root = self._a[0]
            if not self._is_stale(root.task):
                return root
            self._discard(root)
        return None

    def top_candidates(self, n: int) -> list[HeapEntry]:
        """Live entries among the first ``n`` heap slots.

        This is the paper's "first n tasks in the heap" window for the
        locality selection. Stale entries found in the window are
        discarded and the window re-scanned, so the result contains only
        live tasks. The returned list is ordered by heap position (the
        root, if any, comes first).
        """
        while True:
            window = self._a[: max(0, n)]
            stale = [e for e in window if self._is_stale(e.task)]
            if not stale:
                return window
            for entry in stale:
                self._discard(entry)

    def purge_stale(self) -> int:
        """Discard every stale entry in the heap; returns the count."""
        stale = [e for e in self._a if self._is_stale(e.task)]
        for entry in stale:
            self._discard(entry)
        return len(stale)

    def _discard(self, entry: HeapEntry) -> None:
        self.remove(entry)
        if self._on_discard is not None:
            self._on_discard(entry)

    # -- heap mechanics ---------------------------------------------------

    def _sift_up(self, pos: int) -> None:
        a = self._a
        entry = a[pos]
        key = entry.key()
        while pos > 0:
            parent_pos = (pos - 1) >> 1
            parent = a[parent_pos]
            if key <= parent.key():
                break
            a[pos] = parent
            parent.pos = pos
            pos = parent_pos
        a[pos] = entry
        entry.pos = pos

    def _sift_down(self, pos: int) -> None:
        a = self._a
        size = len(a)
        entry = a[pos]
        key = entry.key()
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and a[right].key() > a[child].key():
                child = right
            if a[child].key() <= key:
                break
            a[pos] = a[child]
            a[pos].pos = pos
            pos = child
        a[pos] = entry
        entry.pos = pos

    # -- invariants (used by tests) ---------------------------------------------

    def check_invariants(self) -> None:
        """Assert heap order and position consistency (test helper)."""
        for i, entry in enumerate(self._a):
            assert entry.pos == i, f"entry at {i} thinks it is at {entry.pos}"
            parent = (i - 1) >> 1
            if i > 0:
                assert self._a[parent].key() >= entry.key(), (
                    f"heap order violated at {i}"
                )
