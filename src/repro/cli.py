"""Command-line interface: run workloads and experiments from a shell.

Examples::

    python -m repro.cli run --app cholesky --size 16 --tile 960 \
        --machine intel-v100 --scheduler multiprio dmdas
    python -m repro.cli run --app fmm --particles 50000 --height 4 \
        --machine amd-a100 --scheduler multiprio --gantt
    python -m repro.cli experiment table2
    python -m repro.cli experiment fig4
    python -m repro.cli list
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.api import SimConfig, SimSpec
from repro.analysis.export import to_chrome_trace, to_csv
from repro.apps.dense import cholesky_program, lu_program, qr_program
from repro.check.differential import DEFAULT_SCHEDULERS, run_differential_suite
from repro.apps.fmm import fmm_program
from repro.apps.sparseqr import MATRICES, matrix_by_name, matrix_tree, sparse_qr_program
from repro.cluster.placement import placement_names
from repro.experiments.cluster_scale import (
    DEFAULT_NODE_COUNTS as CLUSTER_NODES,
    DEFAULT_POLICIES as CLUSTER_POLICIES,
    format_cluster_experiment,
    run_cluster_experiment,
    write_cluster_report,
)
from repro.experiments.energy_pareto import (
    DEFAULT_CAP_FRACTIONS,
    DEFAULT_LOAD,
    DEFAULT_SCHEDULERS as ENERGY_SCHEDULERS,
    QUICK_CAP_FRACTIONS,
    format_energy_experiment,
    run_energy_experiment,
    write_energy_report,
)
from repro.experiments.faults_sweep import format_faults_sweep, run_faults_sweep
from repro.experiments.fig3_nod import format_fig3, run_fig3
from repro.experiments.fig4_eviction import format_fig4, run_fig4
from repro.experiments.fig5_dense import format_fig5, run_fig5
from repro.experiments.fig6_fmm import format_fig6, run_fig6
from repro.experiments.fig7_matrices import format_fig7, run_fig7
from repro.experiments.fig8_sparseqr import format_fig8, run_fig8
from repro.experiments.overload import (
    DEFAULT_MULTIPLIERS,
    QUICK_MULTIPLIERS,
    format_overload_experiment,
    run_overload_experiment,
    write_overload_report,
)
from repro.experiments.reporting import format_table
from repro.experiments.rt_sweep import (
    DEFAULT_DEADLINE_FACTOR,
    DEFAULT_MULTIPLIERS as RT_MULTIPLIERS,
    DEFAULT_SCHEDULERS as RT_SCHEDULERS,
    QUICK_MULTIPLIERS as RT_QUICK_MULTIPLIERS,
    format_rt_experiment,
    run_rt_experiment,
    write_rt_report,
)
from repro.experiments.stream_arrivals import (
    DEFAULT_RATES as STREAM_RATES,
    DEFAULT_SCHEDULERS as STREAM_SCHEDULERS,
    format_stream_experiment,
    run_stream_experiment,
    write_stream_report,
)
from repro.experiments.table2_gain import format_table2, run_table2
from repro.obs.export import (
    events_to_chrome,
    events_to_jsonl,
    summary_report,
    trace_from_events,
)
from repro.platform.machines import MACHINES
from repro.runtime.faults import FaultModel, parse_fault_rates, parse_kill_spec

from repro.schedulers.registry import parse_sched_opts, scheduler_names
from repro.utils.units import time_human


def _build_program(args: argparse.Namespace):
    if args.app == "cholesky":
        return cholesky_program(args.size, args.tile)
    if args.app == "lu":
        return lu_program(args.size, args.tile)
    if args.app == "qr":
        return qr_program(args.size, args.tile)
    if args.app == "fmm":
        return fmm_program(
            n_particles=args.particles,
            height=args.height,
            distribution=args.distribution,
            seed=args.seed,
        )
    if args.app == "sparseqr":
        tree = matrix_tree(matrix_by_name(args.matrix), scale=args.scale, seed=args.seed)
        return sparse_qr_program(tree, name=args.matrix)
    raise SystemExit(f"unknown app {args.app!r}")


def _build_fault_model(args: argparse.Namespace) -> FaultModel | None:
    """A :class:`FaultModel` from CLI flags, or ``None`` when all are unset."""
    if not (args.fault_rate or args.kill_worker):
        return None
    return FaultModel(
        task_failure_rate=parse_fault_rates(args.fault_rate) if args.fault_rate else 0.0,
        worker_kills=[parse_kill_spec(s) for s in args.kill_worker],
        max_retries=args.max_retries,
        seed=args.seed,
    )


def cmd_run(args: argparse.Namespace) -> int:
    machine = MACHINES[args.machine](gpu_streams=args.streams)
    program = _build_program(args)
    fault_model = _build_fault_model(args)
    print(f"{program}: {program.total_flops() / 1e9:.1f} Gflop on {machine.name}")
    rows = []
    want_trace = bool(args.gantt or args.chrome_trace or args.csv_trace)
    sched_opts = parse_sched_opts(args.sched_opt)
    for name in args.scheduler:
        spec = SimSpec(
            machine,
            name,
            config=SimConfig(
                seed=args.seed,
                noise_sigma=args.noise,
                record_trace=want_trace,
                submission_window=args.window,
                faults=fault_model,
                batch_step=args.batch_step,
                batch_drain_on_idle=not args.no_batch_drain,
                sched_params=dict(sched_opts),
            ),
        )
        res = spec.run(program)
        if res.faults is not None:
            print(f"{name} faults: " + ", ".join(
                f"{k}={v:g}" for k, v in res.faults.as_dict().items()
            ))
        rows.append(
            [
                name,
                time_human(res.makespan),
                f"{res.gflops:.0f}",
                f"{res.bytes_transferred / 2**20:.0f}",
                " ".join(
                    f"{a}:{v * 100:.0f}%" for a, v in sorted(res.idle_frac_by_arch.items())
                ),
            ]
        )
        if args.gantt and res.trace is not None:
            print(f"\n--- {name} ---")
            print(res.trace.gantt_ascii(width=100))
        if args.chrome_trace and res.trace is not None:
            path = f"{args.chrome_trace}.{name}.json"
            with open(path, "w") as fh:
                fh.write(to_chrome_trace(res.trace))
            print(f"chrome trace written to {path}")
        if args.csv_trace and res.trace is not None:
            path = f"{args.csv_trace}.{name}.csv"
            with open(path, "w") as fh:
                fh.write(to_csv(res.trace))
            print(f"csv trace written to {path}")
    print()
    print(
        format_table(
            ["scheduler", "makespan", "GFlop/s", "MiB moved", "idle"],
            rows,
            title=f"{program.name} on {machine.name}",
        )
    )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.smoke:
        args.quick = True
    progress = None
    if args.jobs > 1:
        # stderr, so parallel runs stay byte-identical to serial on stdout
        def progress(done: int, total: int) -> None:
            print(f"\r{args.name}: {done}/{total} cells", end="", file=sys.stderr)
            if done == total:
                print(file=sys.stderr)

    if args.name == "table2":
        print(format_table2(run_table2()))
    elif args.name == "fig3":
        print(format_fig3(run_fig3()))
    elif args.name == "fig4":
        print(format_fig4(run_fig4(), gantt=args.gantt))
    elif args.name == "fig5":
        # reduced default grid (one matrix size) so the CLI run stays
        # interactive; the full sweep lives in benchmarks/
        print(format_fig5(run_fig5(
            matrix_sizes=tuple(args.sizes) if args.sizes else (11520,),
            jobs=args.jobs, progress=progress,
        )))
    elif args.name == "fig6":
        print(format_fig6(run_fig6(
            n_particles=args.particles, height=args.height,
            jobs=args.jobs, progress=progress,
        )))
    elif args.name == "fig7":
        print(format_fig7(run_fig7(scale=args.scale, jobs=args.jobs)))
    elif args.name == "fig8":
        matrices = sorted(MATRICES, key=lambda s: s.gflops)
        if args.matrices:
            matrices = [matrix_by_name(n) for n in args.matrices]
        else:
            matrices = matrices[: args.n_matrices]
        print(format_fig8(run_fig8(
            matrices=matrices, scale=args.scale,
            jobs=args.jobs, progress=progress,
        )))
    elif args.name == "faults":
        print(format_faults_sweep(run_faults_sweep(jobs=args.jobs, progress=progress)))
    elif args.name == "stream":
        result = run_stream_experiment(
            rates=tuple(args.rates) if args.rates else STREAM_RATES,
            schedulers=tuple(args.stream_schedulers),
            n_jobs=args.stream_jobs,
            seed=args.stream_seed,
            window=args.stream_window,
            jobs=args.jobs,
            progress=progress,
        )
        print(format_stream_experiment(result))
        if args.json:
            write_stream_report(result, args.json)
            print(f"json report written to {args.json}")
    elif args.name == "overload":
        quick = args.quick
        result = run_overload_experiment(
            multipliers=(
                tuple(args.overload_multipliers)
                if args.overload_multipliers
                else (QUICK_MULTIPLIERS if quick else DEFAULT_MULTIPLIERS)
            ),
            n_tenants=(
                args.overload_tenants
                if args.overload_tenants is not None
                else (6 if quick else 24)
            ),
            n_jobs=(
                args.overload_jobs
                if args.overload_jobs is not None
                else (18 if quick else 72)
            ),
            seed=args.stream_seed,
            check_invariants=args.check_invariants,
            jobs=args.jobs,
            progress=progress,
        )
        print(format_overload_experiment(result))
        if args.json:
            write_overload_report(result, args.json)
            print(f"json report written to {args.json}")
    elif args.name == "rt":
        quick = args.quick
        result = run_rt_experiment(
            multipliers=(
                tuple(args.rt_multipliers)
                if args.rt_multipliers
                else (RT_QUICK_MULTIPLIERS if quick else RT_MULTIPLIERS)
            ),
            schedulers=tuple(args.rt_schedulers),
            n_tenants=(
                args.rt_tenants
                if args.rt_tenants is not None
                else (4 if quick else 8)
            ),
            n_jobs=(
                args.rt_jobs
                if args.rt_jobs is not None
                else (16 if quick else 48)
            ),
            deadline_factor=args.rt_deadline_factor,
            seed=args.stream_seed,
            check_invariants=args.check_invariants,
            jobs=args.jobs,
            progress=progress,
        )
        print(format_rt_experiment(result))
        if args.json:
            write_rt_report(result, args.json)
            print(f"json report written to {args.json}")
    elif args.name == "energy":
        quick = args.quick
        result = run_energy_experiment(
            schedulers=tuple(args.energy_schedulers),
            cap_fractions=(
                (None, *args.energy_caps)
                if args.energy_caps
                else (QUICK_CAP_FRACTIONS if quick else DEFAULT_CAP_FRACTIONS)
            ),
            n_tenants=(
                args.energy_tenants
                if args.energy_tenants is not None
                else (4 if quick else 6)
            ),
            n_jobs=(
                args.energy_jobs
                if args.energy_jobs is not None
                else (12 if quick else 24)
            ),
            load=args.energy_load,
            seed=args.stream_seed,
            check_invariants=args.check_invariants,
            jobs=args.jobs,
            progress=progress,
        )
        print(format_energy_experiment(result))
        if args.json:
            write_energy_report(result, args.json)
            print(f"json report written to {args.json}")
    elif args.name == "cluster":
        result = run_cluster_experiment(
            policies=tuple(args.placements),
            node_counts=(
                tuple(args.nodes) if args.nodes
                else ((8,) if args.quick else CLUSTER_NODES)
            ),
            scheduler=args.cluster_scheduler,
            topology=args.topology,
            chains_per_node=args.chains_per_node,
            chain_len=args.chain_len,
            rate_per_node=args.rate_per_node,
            seed=args.stream_seed,
            check_invariants=args.check_invariants,
            jobs=args.jobs,
            progress=progress,
        )
        print(format_cluster_experiment(result))
        if args.json:
            write_cluster_report(result, args.json)
            print(f"json report written to {args.json}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a workload with event recording and export/analyze the stream."""
    machine = MACHINES[args.machine](gpu_streams=args.streams)
    program = _build_program(args)
    fault_model = _build_fault_model(args)
    sched_opts = parse_sched_opts(args.sched_opt)
    for name in args.scheduler:
        sim = SimSpec(
            machine,
            name,
            config=SimConfig(
                seed=args.seed,
                noise_sigma=args.noise,
                record_trace=False,
                record_level=args.level,
                submission_window=args.window,
                faults=fault_model,
                batch_step=args.batch_step,
                batch_drain_on_idle=not args.no_batch_drain,
                sched_params=dict(sched_opts),
            ),
        ).simulator()
        res = sim.run(program)
        events = res.events or ()
        workers = sim.platform.workers
        if args.action == "export":
            if args.format == "chrome":
                payload = events_to_chrome(
                    events, workers=workers, metrics=sim.obs.metrics
                )
                ext = "json"
            elif args.format == "jsonl":
                payload = events_to_jsonl(events)
                ext = "jsonl"
            else:  # csv
                payload = to_csv(trace_from_events(events, workers))
                ext = "csv"
            path = f"{args.out}.{name}.{ext}"
            with open(path, "w") as fh:
                fh.write(payload)
            print(f"{args.format} trace ({len(events)} events) written to {path}")
        elif args.action == "summary":
            print(f"--- {name} ---")
            print(summary_report(events, workers=workers, tasks=program.tasks))
            print()
        else:  # criticalpath
            trace = trace_from_events(events, workers)
            chain = trace.practical_critical_path(list(program.tasks))
            span = trace.makespan()
            on_chain = sum(r.exec_time for r in chain)
            share = 100.0 * on_chain / span if span > 0 else 0.0
            print(f"--- {name}: {len(chain)} tasks on the practical critical "
                  f"path ({share:.1f}% of {span:.1f} us executing) ---")
            for rec in chain:
                print(f"  {rec.type_name}#{rec.tid:<5} worker {rec.worker:<3} "
                      f"[{rec.start:>10.1f} -> {rec.end:>10.1f}]")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the correctness suite: invariant-checked sweeps + differential
    properties over the built-in apps × schedulers."""
    outcomes = run_differential_suite(
        machine=args.machine,
        schedulers=args.scheduler,
        quick=args.quick,
        fault_rate=args.fault_rate_check,
        progress=lambda outcome: print(outcome),
    )
    failed = [o for o in outcomes if not o.passed]
    print()
    print(f"{len(outcomes) - len(failed)}/{len(outcomes)} checks passed")
    if failed:
        print("failing checks:")
        for outcome in failed:
            print(f"  {outcome}")
        return 1
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("schedulers:", ", ".join(scheduler_names()))
    print("machines:  ", ", ".join(sorted(MACHINES)))
    print("apps:       cholesky, lu, qr, fmm, sparseqr")
    print("placements:", ", ".join(placement_names()))
    return 0


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    """Workload/machine/fault flags shared by ``run`` and ``trace``."""
    p.add_argument("--app", default="cholesky",
                   choices=["cholesky", "lu", "qr", "fmm", "sparseqr"])
    p.add_argument("--machine", default="intel-v100", choices=sorted(MACHINES))
    p.add_argument("--scheduler", nargs="+", default=["multiprio", "dmdas"],
                   choices=scheduler_names())
    p.add_argument("--sched-opt", metavar="KEY=VALUE", action="append", default=[],
                   help="scheduler constructor parameter forwarded to every "
                        "selected scheduler (repeatable), e.g. "
                        "--sched-opt locality_eps=0.2 --sched-opt eviction=false")
    p.add_argument("--streams", type=int, default=1, help="GPU streams")
    p.add_argument("--window", type=int, default=None, metavar="N",
                   help="submission window: max submitted-but-unfinished "
                        "tasks (StarPU's STARPU_LIMIT_MAX_SUBMITTED_TASKS); "
                        "default: unbounded")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--noise", type=float, default=0.0,
                   help="lognormal execution-noise sigma")
    p.add_argument("--batch-step", type=float, default=None, metavar="US",
                   help="batched hot path: coalesce ready-task reveals and "
                        "invoke the scheduler at this virtual-time step (µs); "
                        "default: per-event scheduling")
    p.add_argument("--no-batch-drain", action="store_true",
                   help="with --batch-step: do not flush the batch buffer "
                        "early when a worker idles (pure fixed-step batching)")
    p.add_argument("--size", type=int, default=16, help="dense: tile count")
    p.add_argument("--tile", type=int, default=960, help="dense: tile size")
    p.add_argument("--particles", type=int, default=20000, help="fmm")
    p.add_argument("--height", type=int, default=4, help="fmm octree height")
    p.add_argument("--distribution", default="ellipsoid",
                   choices=["uniform", "ellipsoid", "plummer"])
    p.add_argument("--matrix", default="e18", help="sparseqr: Fig. 7 matrix name")
    p.add_argument("--scale", type=float, default=0.02,
                   help="sparseqr: op-count scale")
    p.add_argument("--fault-rate", metavar="P|ARCH=P,...",
                   help="transient per-attempt failure probability, either a "
                        "bare float or per-arch 'cuda=0.1,cpu=0.01'")
    p.add_argument("--kill-worker", metavar="WID@TIME", action="append",
                   default=[], help="fail-stop worker WID at TIME (µs); repeatable")
    p.add_argument("--max-retries", type=int, default=3,
                   help="retries per task before RetryExhaustedError")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload under schedulers")
    _add_workload_args(run)
    run.add_argument("--gantt", action="store_true", help="print ASCII Gantt")
    run.add_argument("--chrome-trace", metavar="PREFIX",
                     help="write chrome://tracing JSON per scheduler")
    run.add_argument("--csv-trace", metavar="PREFIX",
                     help="write per-task CSV per scheduler")
    run.set_defaults(func=cmd_run)

    trace = sub.add_parser(
        "trace",
        help="run with event recording; export or analyze the event stream",
    )
    trace.add_argument("action", choices=["export", "summary", "criticalpath"])
    _add_workload_args(trace)
    trace.add_argument("--level", default="decisions",
                       choices=["tasks", "decisions", "all"],
                       help="event granularity to record")
    trace.add_argument("--format", default="chrome",
                       choices=["chrome", "jsonl", "csv"],
                       help="export format (export action only)")
    trace.add_argument("--out", default="trace", metavar="PREFIX",
                       help="export file prefix (export action only)")
    trace.set_defaults(func=cmd_trace)

    exp = sub.add_parser("experiment", help="run a light paper experiment")
    exp.add_argument("name", choices=[
        "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "faults",
        "stream", "overload", "cluster", "rt", "energy",
    ])
    exp.add_argument("--jobs", type=int, default=1,
                     help="worker processes for sweep experiments "
                          "(fig5/fig6/fig7/fig8/faults/stream/cluster); "
                          "results are identical for any value")
    exp.add_argument("--gantt", action="store_true")
    exp.add_argument("--scale", type=float, default=0.05,
                     help="sparseqr op-count scale (fig7/fig8)")
    exp.add_argument("--sizes", type=int, nargs="+",
                     help="fig5: matrix sizes (default: 11520)")
    exp.add_argument("--particles", type=int, default=50_000,
                     help="fig6: particle count (reduced CLI default)")
    exp.add_argument("--height", type=int, default=4,
                     help="fig6: octree height (reduced CLI default)")
    exp.add_argument("--matrices", nargs="+", metavar="NAME",
                     help="fig8: explicit matrix subset")
    exp.add_argument("--n-matrices", type=int, default=4,
                     help="fig8: smallest-N matrix subset when --matrices unset")
    exp.add_argument("--rates", type=float, nargs="+", metavar="JOBS_PER_S",
                     help=f"stream: arrival rates (default: "
                          f"{' '.join(f'{r:g}' for r in STREAM_RATES)})")
    exp.add_argument("--stream-jobs", type=int, default=8,
                     help="stream: jobs per Poisson stream")
    exp.add_argument("--stream-schedulers", nargs="+",
                     default=list(STREAM_SCHEDULERS), choices=scheduler_names(),
                     help="stream: schedulers to sweep")
    exp.add_argument("--stream-seed", type=int, default=0,
                     help="stream: arrival-process seed")
    exp.add_argument("--stream-window", type=int, default=None, metavar="N",
                     help="stream: submission window forwarded to every run")
    exp.add_argument("--quick", action="store_true",
                     help="overload: trimmed grid (2 multipliers, 6 tenants); "
                          "cluster: 8-node column only; "
                          "rt: 2 multipliers, 4 tenants, 16 jobs; "
                          "energy: 2 cap levels, 4 tenants, 12 jobs")
    exp.add_argument("--smoke", action="store_true",
                     help="alias for --quick (CI smoke jobs)")
    exp.add_argument("--overload-multipliers", type=float, nargs="+",
                     metavar="X",
                     help="overload: load multiples of the sustainable rate "
                          f"(default: "
                          f"{' '.join(f'{m:g}' for m in DEFAULT_MULTIPLIERS)})")
    exp.add_argument("--overload-tenants", type=int, default=None,
                     help="overload: tenant count (default 24, quick 6)")
    exp.add_argument("--overload-jobs", type=int, default=None,
                     help="overload: jobs per stream (default 72, quick 18)")
    exp.add_argument("--rt-multipliers", type=float, nargs="+", metavar="X",
                     help="rt: load multiples of the sustainable rate "
                          f"(default: "
                          f"{' '.join(f'{m:g}' for m in RT_MULTIPLIERS)})")
    exp.add_argument("--rt-schedulers", nargs="+",
                     default=list(RT_SCHEDULERS), choices=scheduler_names(),
                     help="rt: schedulers to sweep")
    exp.add_argument("--rt-tenants", type=int, default=None,
                     help="rt: tenant count (default 8, quick 4)")
    exp.add_argument("--rt-jobs", type=int, default=None,
                     help="rt: jobs per stream (default 48, quick 16)")
    exp.add_argument("--rt-deadline-factor", type=float,
                     default=DEFAULT_DEADLINE_FACTOR,
                     help="rt: relative deadline as a multiple of the "
                          "isolated job makespan")
    exp.add_argument("--energy-schedulers", nargs="+",
                     default=list(ENERGY_SCHEDULERS), choices=scheduler_names(),
                     help="energy: schedulers to sweep")
    exp.add_argument("--energy-caps", type=float, nargs="+", metavar="FRAC",
                     help="energy: node cap levels as fractions of each "
                          "node's peak busy draw (uncapped is always "
                          "included; default: "
                          f"{' '.join(f'{f:g}' for f in DEFAULT_CAP_FRACTIONS if f is not None)})")
    exp.add_argument("--energy-tenants", type=int, default=None,
                     help="energy: tenant count (default 6, quick 4)")
    exp.add_argument("--energy-jobs", type=int, default=None,
                     help="energy: jobs per stream (default 24, quick 12)")
    exp.add_argument("--energy-load", type=float, default=DEFAULT_LOAD,
                     help="energy: offered load as a multiple of the "
                          "sustainable rate")
    exp.add_argument("--check-invariants", action="store_true",
                     help="overload/cluster/rt/energy: run every cell under "
                          "the invariant checker (slower)")
    exp.add_argument("--placements", nargs="+", default=list(CLUSTER_POLICIES),
                     choices=placement_names(),
                     help="cluster: global placement policies to sweep")
    exp.add_argument("--nodes", type=int, nargs="+", metavar="N",
                     help="cluster: node counts (default: "
                          f"{' '.join(str(n) for n in CLUSTER_NODES)})")
    exp.add_argument("--topology", default="star", choices=["star", "fat-tree"],
                     help="cluster: fabric preset joining the nodes")
    exp.add_argument("--cluster-scheduler", default="multiprio",
                     choices=scheduler_names(),
                     help="cluster: per-node scheduler (unchanged engine)")
    exp.add_argument("--chains-per-node", type=int, default=2,
                     help="cluster: workflow chains per node in the stream")
    exp.add_argument("--chain-len", type=int, default=3,
                     help="cluster: jobs per dependent workflow chain")
    exp.add_argument("--rate-per-node", type=float, default=50.0,
                     help="cluster: chain arrivals per second per node")
    exp.add_argument("--json", metavar="PATH",
                     help="stream/overload/cluster/rt/energy: write the JSON "
                          "report to PATH")
    exp.set_defaults(func=cmd_experiment)

    check = sub.add_parser(
        "check",
        help="run the correctness suite: invariant-checked app x scheduler "
             "sweeps plus differential properties (determinism, lower "
             "bounds, fault-free equivalence, pipeline bound)",
    )
    check.add_argument("--quick", action="store_true",
                       help="trimmed app grid; cross-run properties on one "
                            "scheduler per app")
    check.add_argument("--machine", default="intel-v100",
                       choices=sorted(MACHINES))
    check.add_argument("--scheduler", nargs="+",
                       default=list(DEFAULT_SCHEDULERS),
                       choices=scheduler_names())
    check.add_argument("--fault-rate-check", type=float, default=0.05,
                       help="transient failure rate of the fault-loaded "
                            "invariant sweep")
    check.set_defaults(func=cmd_check)

    lst = sub.add_parser("list", help="list schedulers, machines and apps")
    lst.set_defaults(func=cmd_list)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
