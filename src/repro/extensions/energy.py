"""Energy accounting and the energy/EDP-aware MultiPrio variants.

The paper's Section VII: *"we aim to extend this to incorporate energy
efficiency heuristics to take advantage of the CPUs and re-balance the
workload between them and the accelerators without compromising overall
performance."*

Three pieces:

* :class:`ArchPower` / :class:`PowerModel` (re-exported from
  :mod:`repro.runtime.power`, their canonical home since the power
  subsystem landed) plus :func:`energy_of_result`, which converts any
  :class:`~repro.runtime.engine.SimResult` into joules — each worker's
  idle draw is clamped to its *live* horizon, so fail-stop casualties
  stop drawing at death;
* :class:`EnergyAwareMultiPrio`, which relaxes the pop condition for
  admissions that *save energy*: a slower-but-leaner worker (a CPU core
  at ~12 W vs a GPU at ~250 W) may take a task at a smaller fast-worker
  backlog than the baseline requires, as long as the comparative-
  advantage guard still holds. The effect — measured by
  ``benchmarks/bench_energy.py`` — is a lower joule count at a bounded
  makespan cost;
* :class:`EdpMultiPrio` (registered ``multiprio-edp``), the same
  relaxation scored on the energy-delay product δ²·P instead of plain
  energy δ·P: it only sheds work to lean units when the energy saved
  outweighs the quadratically-penalized slowdown, trading fewer joules
  of savings for a tighter makespan than ``multiprio-energy``.

For engine-level power states, node caps and native joule reporting see
:mod:`repro.runtime.power` (``SimConfig(power=...)``).
"""

from __future__ import annotations

from repro.schedulers.multiprio import MultiPrio
from repro.runtime.engine import SimResult
from repro.runtime.platform_config import Platform
from repro.runtime.power import ArchPower, PowerModel
from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "ArchPower",
    "PowerModel",
    "energy_of_result",
    "EnergyAwareMultiPrio",
    "EdpMultiPrio",
]


def energy_of_result(
    result: SimResult, platform: Platform, power: PowerModel | None = None
) -> float:
    """Total energy (joules) consumed by a simulated execution.

    Per worker: the recorded busy time draws busy power, the rest of the
    worker's **live horizon** draws idle power. The horizon is
    ``min(makespan, death time)`` — exactly the clamp the engine applies
    to utilization — so a worker lost to a fail-stop failure stops
    drawing idle watts at its death rather than for the whole run.

    Results predating per-worker busy accounting (an empty
    ``busy_us_by_worker``) fall back to the per-architecture totals,
    with every worker's timeline spanning the full makespan.
    """
    power = power or PowerModel()
    total = 0.0
    busy_by_worker = result.busy_us_by_worker
    deaths = result.death_us_by_worker
    per_worker = len(busy_by_worker) == len(platform.workers) > 0
    for arch in platform.archs:
        workers = platform.workers_of_arch(arch)
        if per_worker:
            for w in workers:
                horizon = min(result.makespan, deaths.get(w.wid, result.makespan))
                busy = busy_by_worker[w.wid]
                idle = max(0.0, horizon - busy)
                total += power.energy_us(arch, busy, idle)
        else:
            busy = result.exec_time_by_arch.get(arch, 0.0)
            idle = max(0.0, len(workers) * result.makespan - busy)
            total += power.energy_us(arch, busy, idle)
    return total


class EnergyAwareMultiPrio(MultiPrio):
    """MultiPrio with an energy-saving admission relaxation.

    A non-best worker whose execution would consume *less energy* than
    the best architecture's (δ·P comparison) is admitted at a fraction
    (``energy_relax``) of the baseline backlog requirement — shifting
    work toward low-power units exactly when the energy trade is
    favourable. All other mechanisms (heaps, scores, locality, eviction,
    the slowdown cap) are inherited unchanged: the relaxation only
    applies to admissions the base test *rejected on backlog*, so
    best-arch workers and the slowdown-cap guard behave exactly as in
    :class:`~repro.schedulers.multiprio.MultiPrio` (a neutral power
    model — equal watts everywhere — is bit-identical to the base
    scheduler; ``tests/extensions/test_energy.py`` pins this).
    """

    name = "multiprio-energy"

    #: Admission objective: ``"energy"`` compares δ·P, ``"edp"``
    #: compares the energy-delay product δ²·P.
    objective = "energy"

    def __init__(
        self,
        *,
        power: PowerModel | None = None,
        energy_relax: float = 0.25,
        objective: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.power = power or PowerModel()
        self.energy_relax = check_positive("energy_relax", energy_relax)
        if objective is not None:
            if objective not in ("energy", "edp"):
                raise ValidationError(
                    f"objective must be 'energy' or 'edp', got {objective!r}"
                )
            self.objective = objective

    def _energy_saving(self, task: Task, worker: Worker, best_arch: str) -> bool:
        """Whether running on ``worker`` beats the best arch on the
        configured objective (δ·P for energy, δ²·P for EDP)."""
        ctx = self.ctx
        d_here = ctx.estimate(task, worker.arch)
        d_best = ctx.estimate(task, best_arch)
        p_here = self.power.arch_power(worker.arch).busy_watts
        p_best = self.power.arch_power(best_arch).busy_watts
        if self.objective == "edp":
            return d_here * d_here * p_here < d_best * d_best * p_best
        return d_here * p_here < d_best * p_best

    def _admission(self, task: Task, worker: Worker) -> tuple[bool, float | None, float]:
        """The base admission test plus the energy relaxation.

        Delegates to :meth:`MultiPrio._admission` first, so every base
        branch — best-arch early accept, eviction-disabled accept, the
        slowdown-cap rejection — is honoured verbatim. Only a *backlog*
        rejection (``brw`` was read and fell short) may be overturned:
        when this worker wins on the objective, the backlog requirement
        shrinks to ``energy_relax`` of the baseline.
        """
        admitted, brw, delta = super()._admission(task, worker)
        if admitted or brw is None:
            # Accepted outright, or rejected before the backlog was read
            # (slowdown cap): the relaxation honours the same cap, so
            # there is nothing to overturn.
            return admitted, brw, delta
        if not self._energy_saving(task, worker, self.ctx.best_arch(task)):
            return False, brw, delta
        return brw > self.energy_relax * self.brw_safety * delta, brw, delta


class EdpMultiPrio(EnergyAwareMultiPrio):
    """Energy-delay-product scoring as a MultiPrio mode.

    Identical machinery to :class:`EnergyAwareMultiPrio`, but the
    relaxation fires only when the *energy-delay product* δ²·P improves:
    the extra delay of a lean worker is penalized quadratically, so work
    only shifts off the accelerators when the joules saved are worth the
    slowdown. Registered as ``multiprio-edp``.
    """

    name = "multiprio-edp"
    objective = "edp"
