"""Energy accounting and the energy-aware MultiPrio variant.

The paper's Section VII: *"we aim to extend this to incorporate energy
efficiency heuristics to take advantage of the CPUs and re-balance the
workload between them and the accelerators without compromising overall
performance."*

Two pieces:

* a :class:`PowerModel` (per-architecture busy/idle watts per worker)
  plus :func:`energy_of_result`, which converts any
  :class:`~repro.runtime.engine.SimResult` into joules;
* :class:`EnergyAwareMultiPrio`, which relaxes the pop condition for
  admissions that *save energy*: a slower-but-leaner worker (a CPU core
  at ~12 W vs a GPU at ~250 W) may take a task at a smaller fast-worker
  backlog than the baseline requires, as long as the comparative-
  advantage guard still holds. The effect — measured by
  ``benchmarks/bench_energy.py`` — is a lower joule count at a bounded
  makespan cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedulers.multiprio import MultiPrio
from repro.runtime.engine import SimResult
from repro.runtime.platform_config import Platform
from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ArchPower:
    """Per-worker power draw of one architecture, in watts."""

    busy_watts: float
    idle_watts: float

    def __post_init__(self) -> None:
        check_positive("busy_watts", self.busy_watts)
        check_non_negative("idle_watts", self.idle_watts)
        if self.idle_watts > self.busy_watts:
            raise ValueError("idle_watts cannot exceed busy_watts")


class PowerModel:
    """Power draw per architecture, per worker.

    Defaults approximate the evaluation platforms: one CPU core at 12 W
    busy / 3 W idle; one GPU execution context at 250 W busy / 50 W idle
    (a full device — divide by the stream count when modelling
    multi-stream sharing precisely; for scheduler comparisons the
    constant-per-worker approximation is sufficient and identical across
    policies).
    """

    DEFAULTS = {
        "cpu": ArchPower(busy_watts=12.0, idle_watts=3.0),
        "cuda": ArchPower(busy_watts=250.0, idle_watts=50.0),
    }

    def __init__(self, per_arch: dict[str, ArchPower] | None = None) -> None:
        self._per_arch = dict(self.DEFAULTS)
        if per_arch:
            self._per_arch.update(per_arch)

    def arch_power(self, arch: str) -> ArchPower:
        """Power profile of one architecture (defaults for unknown)."""
        return self._per_arch.get(arch, ArchPower(50.0, 10.0))

    def energy_us(self, arch: str, busy_us: float, idle_us: float) -> float:
        """Energy in joules for the given busy/idle microseconds."""
        power = self.arch_power(arch)
        return (busy_us * power.busy_watts + idle_us * power.idle_watts) * 1e-6


def energy_of_result(
    result: SimResult, platform: Platform, power: PowerModel | None = None
) -> float:
    """Total energy (joules) consumed by a simulated execution.

    Per architecture: the recorded execution time draws busy power, the
    rest of every worker's timeline draws idle power.
    """
    power = power or PowerModel()
    total = 0.0
    for arch in platform.archs:
        n_workers = platform.n_workers(arch)
        busy = result.exec_time_by_arch.get(arch, 0.0)
        idle = max(0.0, n_workers * result.makespan - busy)
        total += power.energy_us(arch, busy, idle)
    return total


class EnergyAwareMultiPrio(MultiPrio):
    """MultiPrio with an energy-saving admission relaxation.

    A non-best worker whose execution would consume *less energy* than
    the best architecture's (δ·P comparison) is admitted at a fraction
    (``energy_relax``) of the baseline backlog requirement — shifting
    work toward low-power units exactly when the energy trade is
    favourable. All other mechanisms (heaps, scores, locality, eviction)
    are inherited unchanged.
    """

    name = "multiprio-energy"

    def __init__(
        self,
        *,
        power: PowerModel | None = None,
        energy_relax: float = 0.25,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.power = power or PowerModel()
        self.energy_relax = check_positive("energy_relax", energy_relax)

    def _energy_saving(self, task: Task, worker: Worker, best_arch: str) -> bool:
        ctx = self.ctx
        e_here = (
            ctx.estimate(task, worker.arch)
            * self.power.arch_power(worker.arch).busy_watts
        )
        e_best = (
            ctx.estimate(task, best_arch) * self.power.arch_power(best_arch).busy_watts
        )
        return e_here < e_best

    def _pop_condition(self, task: Task, worker: Worker) -> bool:
        ctx = self.ctx
        best_arch = ctx.best_arch(task)
        if worker.arch == best_arch:
            return True
        if super()._pop_condition(task, worker):
            return True
        # Energy relaxation: admit earlier when this worker is the
        # energy-cheaper choice (still respecting the slowdown cap).
        if not self._energy_saving(task, worker, best_arch):
            return False
        if (
            self.slowdown_cap is not None
            and ctx.estimate(task, worker.arch)
            > self.slowdown_cap * ctx.estimate(task, best_arch)
        ):
            return False
        brw = max(
            (
                self.best_remaining_work[node.mid]
                for node in ctx.platform.nodes_of_arch(best_arch)
                if node.mid in self.best_remaining_work
            ),
            default=0.0,
        )
        if self.drain_aware:
            brw /= max(1, ctx.n_workers(best_arch))
        return brw > self.energy_relax * self.brw_safety * ctx.estimate(
            task, worker.arch
        )
