"""Extensions beyond the paper's evaluated system.

These implement the *future work* directions of the paper's Section VII
so they can be studied quantitatively:

* :mod:`repro.extensions.energy` — per-architecture power models, energy
  accounting for simulation results, and an energy-aware MultiPrio
  variant that re-balances work toward the low-power units when that
  does not compromise the makespan;
* :mod:`repro.extensions.hierarchical` — hierarchical task submission
  (tasks that expand into subgraphs at runtime), mirroring the StarPU
  feature the paper cites as the natural next workload.
"""

from repro.extensions.energy import (
    ArchPower,
    PowerModel,
    energy_of_result,
    EnergyAwareMultiPrio,
)
from repro.extensions.hierarchical import HierarchicalFlow, BubbleSpec

__all__ = [
    "ArchPower",
    "PowerModel",
    "energy_of_result",
    "EnergyAwareMultiPrio",
    "HierarchicalFlow",
    "BubbleSpec",
]
