"""Hierarchical tasks: coarse tasks that expand into subgraphs.

The paper's Section VII points to StarPU's *hierarchical tasks* [30] —
tasks that submit subgraphs at runtime, "exposing different task sizes
in the DAG: a sufficient amount of large-granularity tasks to
efficiently utilize GPUs, along with fine-granularity tasks to take
advantage of CPUs" — as the workload class where MultiPrio should shine
next.

:class:`HierarchicalFlow` reproduces that structure on top of the STF
front-end: a *bubble* submission either stays one coarse task or, when
its work exceeds ``threshold_flops``, expands into

* one ``split`` task per read-write output (scatter the coarse handle
  into partition sub-handles),
* ``partitions`` fine-grained compute tasks over the sub-handles, and
* one ``merge`` task gathering the sub-handles back,

so the scheduler faces exactly the mixed-granularity DAGs the paper
describes. Expansion is decided per bubble, making a single program a
blend of coarse GPU-sized and fine CPU-sized work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.runtime.data import DataHandle
from repro.runtime.stf import Program, TaskFlow
from repro.runtime.task import AccessMode, Task
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BubbleSpec:
    """Expansion policy for hierarchical submissions.

    ``threshold_flops`` — bubbles at or above this expand;
    ``partitions`` — fine tasks per expanded bubble;
    ``split_merge_overhead`` — flops charged to each split/merge task
    per byte scattered (models the partitioning cost that makes
    over-decomposition unprofitable).
    """

    threshold_flops: float = 1e9
    partitions: int = 4
    split_merge_overhead: float = 0.25

    def __post_init__(self) -> None:
        check_positive("threshold_flops", self.threshold_flops)
        check_positive("partitions", self.partitions)
        check_positive("split_merge_overhead", self.split_merge_overhead)


class HierarchicalFlow:
    """A :class:`TaskFlow` front-end with bubble expansion."""

    def __init__(self, spec: BubbleSpec | None = None, name: str = "") -> None:
        self.flow = TaskFlow(name or "hierarchical")
        self.spec = spec or BubbleSpec()
        self.n_expanded = 0
        self.n_coarse = 0

    def data(self, size: int, **kwargs) -> DataHandle:
        """Register application data (forwards to the inner flow)."""
        return self.flow.data(size, **kwargs)

    def submit_bubble(
        self,
        type_name: str,
        accesses: list[tuple[DataHandle, AccessMode]],
        *,
        flops: float,
        implementations: Iterable[str] = ("cpu", "cuda"),
        tag=None,
    ) -> list[Task]:
        """Submit a bubble; returns the task(s) it materialized into."""
        if flops < self.spec.threshold_flops:
            self.n_coarse += 1
            return [
                self.flow.submit(
                    type_name,
                    accesses,
                    flops=flops,
                    implementations=implementations,
                    tag=tag,
                )
            ]
        self.n_expanded += 1
        return self._expand(type_name, accesses, flops, implementations, tag)

    def _expand(
        self,
        type_name: str,
        accesses: list[tuple[DataHandle, AccessMode]],
        flops: float,
        implementations: Iterable[str],
        tag,
    ) -> list[Task]:
        spec = self.spec
        reads = [(h, m) for h, m in accesses if not m.is_write]
        writes = [(h, m) for h, m in accesses if m.is_write]
        tasks: list[Task] = []

        # Scatter every written handle into partition sub-handles.
        sub_handles: dict[int, list[DataHandle]] = {}
        for handle, mode in writes:
            parts = [
                self.flow.data(
                    max(1, handle.size // spec.partitions),
                    label=f"{handle.label}/p{i}",
                )
                for i in range(spec.partitions)
            ]
            sub_handles[handle.hid] = parts
            if mode.is_read:  # RW bubbles need the current contents
                split_acc = [(handle, AccessMode.R)]
                split_acc += [(p, AccessMode.W) for p in parts]
                tasks.append(
                    self.flow.submit(
                        "split",
                        split_acc,
                        flops=spec.split_merge_overhead * handle.size,
                        implementations=("cpu",),
                        tag=("split", tag),
                    )
                )

        # Fine-grained compute over each partition slice.
        for i in range(spec.partitions):
            fine_acc: list[tuple[DataHandle, AccessMode]] = list(reads)
            for handle, mode in writes:
                part = sub_handles[handle.hid][i]
                fine_acc.append((part, AccessMode.RW if mode.is_read else AccessMode.W))
            tasks.append(
                self.flow.submit(
                    f"{type_name}_fine",
                    fine_acc,
                    flops=flops / spec.partitions,
                    implementations=implementations,
                    tag=(tag, i),
                )
            )

        # Gather each written handle back from its partitions.
        for handle, _mode in writes:
            merge_acc = [(p, AccessMode.R) for p in sub_handles[handle.hid]]
            merge_acc.append((handle, AccessMode.W))
            tasks.append(
                self.flow.submit(
                    "merge",
                    merge_acc,
                    flops=spec.split_merge_overhead * handle.size,
                    implementations=("cpu",),
                    tag=("merge", tag),
                )
            )
        return tasks

    def program(self) -> Program:
        """Finalize and return the expanded program."""
        return self.flow.program()
