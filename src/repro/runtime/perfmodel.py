"""Performance models: what the scheduler's δ(t, a) comes from.

StarPU calibrates per-kernel, per-architecture history models from
measured execution times. We mirror that split:

* :class:`AnalyticalPerfModel` — the *ground truth* of the simulated
  machine: per (kernel, architecture) throughput plus a fixed overhead,
  optionally with lognormal execution noise. It answers both
  ``estimate`` (noise-free expectation, what a perfectly calibrated
  model would report) and ``sample`` (one actual execution).
* :class:`HistoryPerfModel` — wraps a truth model and estimates from the
  running mean of observed samples per (kernel, arch, size-bucket),
  falling back to the analytical expectation while uncalibrated. This is
  the faithful analog of StarPU's history-based model [21, 22].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.runtime.task import Task
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class KernelCalibration:
    """Throughput calibration of one kernel on one architecture.

    ``gflops`` is the *asymptotic* sustained throughput in GFlop/s;
    ``overhead_us`` the fixed per-invocation cost (kernel launch, runtime
    overhead). ``ramp_flops`` models the throughput ramp of wide
    architectures: the effective rate follows the saturation curve
    ``gflops * f / (f + ramp_flops)``, i.e. the kernel reaches half its
    peak at ``ramp_flops`` — large for GPUs (small kernels cannot fill
    the device), ~0 for a single CPU core. This size-dependent relative
    speed is what makes *per-task* affinity differ from per-type
    affinity, the heterogeneity MultiPrio exploits.

    A kernel with zero flops costs ``overhead_us``.
    """

    gflops: float
    overhead_us: float = 2.0
    ramp_flops: float = 0.0

    def __post_init__(self) -> None:
        if self.gflops <= 0:
            raise ValidationError(f"gflops must be > 0, got {self.gflops}")
        if self.overhead_us < 0:
            raise ValidationError(f"overhead_us must be >= 0, got {self.overhead_us}")
        if self.ramp_flops < 0:
            raise ValidationError(f"ramp_flops must be >= 0, got {self.ramp_flops}")

    def time_us(self, flops: float) -> float:
        """Expected execution time for ``flops`` floating-point operations.

        With the saturation model, ``f / rate(f)`` collapses to
        ``(f + ramp) / peak``; the ramp term only applies to non-empty
        kernels.
        """
        if flops <= 0.0:
            return self.overhead_us
        return self.overhead_us + (flops + self.ramp_flops) / (self.gflops * 1e3)


class CalibrationTable:
    """Lookup of :class:`KernelCalibration` per (kernel type, architecture).

    A per-architecture default entry (key ``"*"``) covers kernel types
    without a dedicated calibration.
    """

    def __init__(self, entries: dict[tuple[str, str], KernelCalibration]) -> None:
        self._entries = dict(entries)

    def lookup(self, type_name: str, arch: str) -> KernelCalibration:
        """Calibration for ``type_name`` on ``arch`` (default fallback)."""
        entry = self._entries.get((type_name, arch))
        if entry is None:
            entry = self._entries.get(("*", arch))
        if entry is None:
            raise ValidationError(f"no calibration for kernel {type_name!r} on {arch!r}")
        return entry

    def has(self, type_name: str, arch: str) -> bool:
        """Whether any calibration (specific or default) exists."""
        return (type_name, arch) in self._entries or ("*", arch) in self._entries

    def with_entry(
        self, type_name: str, arch: str, calib: KernelCalibration
    ) -> "CalibrationTable":
        """A copy of the table with one entry replaced/added."""
        entries = dict(self._entries)
        entries[(type_name, arch)] = calib
        return CalibrationTable(entries)


class PerfModel(Protocol):
    """What the engine and schedulers need from a performance model.

    Implementations may additionally expose a ``stable_estimates``
    class attribute: ``True`` promises that ``estimate()`` is constant
    for a given (task, arch) over a whole run, licensing schedulers to
    cache the value at push time. Absent or ``False`` (e.g. history
    models that learn mid-run) means estimates must be queried live.
    """

    def estimate(self, task: Task, arch: str) -> float:
        """δ(t, a): expected execution time in microseconds."""

    def sample(self, task: Task, arch: str, rng: np.random.Generator) -> float:
        """One actual execution time in microseconds."""

    def record(self, task: Task, arch: str, measured: float) -> None:
        """Feed back a measured execution time (history models learn)."""


class AnalyticalPerfModel:
    """Ground-truth model driven by a :class:`CalibrationTable`.

    ``noise_sigma`` is the standard deviation of the lognormal
    multiplicative execution noise (0 = deterministic). Estimates are
    always the noise-free expectation.
    """

    #: δ(t, a) never changes during a run, so schedulers may cache it.
    stable_estimates = True

    def __init__(self, table: CalibrationTable, noise_sigma: float = 0.0) -> None:
        if noise_sigma < 0:
            raise ValidationError(f"noise_sigma must be >= 0, got {noise_sigma}")
        self.table = table
        self.noise_sigma = noise_sigma
        # δ is a pure function of (kernel type, arch, flops), so the
        # memo lives on the model and is shared by every task: a stream
        # of a million structurally-identical tasks costs one table
        # lookup per (type, arch) instead of one per task.
        self._memo: dict[tuple[str, str, float], float] = {}

    def estimate(self, task: Task, arch: str) -> float:
        key = (task.type_name, arch, task.flops)
        cached = self._memo.get(key)
        if cached is None:
            cached = self.table.lookup(task.type_name, arch).time_us(task.flops)
            self._memo[key] = cached
        return cached

    def sample(self, task: Task, arch: str, rng: np.random.Generator) -> float:
        mean = self.estimate(task, arch)
        if self.noise_sigma == 0.0:
            return mean
        # Lognormal with unit mean: exp(N(-sigma^2/2, sigma)).
        factor = math.exp(rng.normal(-0.5 * self.noise_sigma**2, self.noise_sigma))
        return mean * factor

    def record(self, task: Task, arch: str, measured: float) -> None:
        """Analytical models do not learn; provided for API uniformity."""


class HistoryPerfModel:
    """StarPU-like history-based estimator on top of a truth model.

    Estimates are running means per (kernel type, architecture, size
    bucket); buckets are log2 of the flop count, matching StarPU's
    footprint-hashed history entries closely enough for scheduling
    studies. Until ``min_samples`` measurements exist for a bucket the
    estimator falls back to the truth model's expectation scaled by
    ``cold_factor`` (1.0 = oracle fallback; >1 models pessimistic
    uncalibrated guesses).
    """

    #: Estimates drift as history accrues; schedulers must query live.
    stable_estimates = False

    def __init__(
        self,
        truth: AnalyticalPerfModel,
        min_samples: int = 3,
        cold_factor: float = 1.0,
    ) -> None:
        if min_samples < 1:
            raise ValidationError(f"min_samples must be >= 1, got {min_samples}")
        if cold_factor <= 0:
            raise ValidationError(f"cold_factor must be > 0, got {cold_factor}")
        self.truth = truth
        self.min_samples = min_samples
        self.cold_factor = cold_factor
        self._sums: dict[tuple[str, str, int], float] = {}
        self._counts: dict[tuple[str, str, int], int] = {}

    @staticmethod
    def _bucket(task: Task) -> int:
        return int(math.log2(task.flops)) if task.flops >= 1.0 else 0

    def _key(self, task: Task, arch: str) -> tuple[str, str, int]:
        return (task.type_name, arch, self._bucket(task))

    def estimate(self, task: Task, arch: str) -> float:
        key = self._key(task, arch)
        count = self._counts.get(key, 0)
        if count >= self.min_samples:
            return self._sums[key] / count
        return self.truth.estimate(task, arch) * self.cold_factor

    def sample(self, task: Task, arch: str, rng: np.random.Generator) -> float:
        return self.truth.sample(task, arch, rng)

    def record(self, task: Task, arch: str, measured: float) -> None:
        key = self._key(task, arch)
        self._sums[key] = self._sums.get(key, 0.0) + measured
        self._counts[key] = self._counts.get(key, 0) + 1

    def n_samples(self, task: Task, arch: str) -> int:
        """How many measurements the bucket of ``task`` has accumulated."""
        return self._counts.get(self._key(task, arch), 0)
