"""Execution traces: per-task records, idle accounting, ASCII Gantt.

This is the repository's StarVZ-lite: enough trace tooling to reproduce
the elements of the paper's Fig. 4 — per-resource idle percentages, the
makespan, and the *practical critical path* (the chain of records in
which each task was the one actually delaying the next).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.task import Task
from repro.runtime.worker import Worker


@dataclass(frozen=True)
class TaskRecord:
    """One executed task: who ran it and when."""

    tid: int
    type_name: str
    worker: int
    node: int
    pop_time: float
    start: float
    end: float

    @property
    def exec_time(self) -> float:
        """Pure execution duration."""
        return self.end - self.start

    @property
    def wait_time(self) -> float:
        """Time between assignment and start (data transfers)."""
        return self.start - self.pop_time


@dataclass(frozen=True)
class TransferRecord:
    """One committed data movement."""

    hid: int
    src: int
    dst: int
    nbytes: int
    start: float
    end: float


class Trace:
    """Ordered collection of task (and optional transfer) records."""

    def __init__(self, workers: list[Worker]) -> None:
        self.workers = workers
        self.task_records: list[TaskRecord] = []
        self.transfer_records: list[TransferRecord] = []
        self._by_tid: dict[int, TaskRecord] = {}

    # -- recording ---------------------------------------------------------

    def record_task(self, task: Task, worker: Worker, pop_time: float, start: float, end: float) -> None:
        """Append one task execution record."""
        rec = TaskRecord(task.tid, task.type_name, worker.wid, worker.memory_node, pop_time, start, end)
        self.task_records.append(rec)
        self._by_tid[task.tid] = rec

    def record_transfer(self, hid: int, src: int, dst: int, nbytes: int, start: float, end: float) -> None:
        """Append one transfer record."""
        self.transfer_records.append(TransferRecord(hid, src, dst, nbytes, start, end))

    # -- aggregate metrics ---------------------------------------------------

    def makespan(self) -> float:
        """End time of the last task (0 for an empty trace)."""
        return max((r.end for r in self.task_records), default=0.0)

    def busy_time(self, wid: int) -> float:
        """Total execution time of worker ``wid``."""
        return sum(r.exec_time for r in self.task_records if r.worker == wid)

    def wait_time(self, wid: int) -> float:
        """Total transfer-wait time of worker ``wid``."""
        return sum(r.wait_time for r in self.task_records if r.worker == wid)

    def idle_fraction(self, wid: int) -> float:
        """Fraction of the makespan worker ``wid`` spent neither executing
        nor waiting on data. Matches the idle percentages of Fig. 4."""
        span = self.makespan()
        if span <= 0:
            return 0.0
        occupied = self.busy_time(wid) + self.wait_time(wid)
        return max(0.0, 1.0 - occupied / span)

    def idle_fraction_by_arch(self, arch: str) -> float:
        """Mean idle fraction over all workers of one architecture."""
        wids = [w.wid for w in self.workers if w.arch == arch]
        if not wids:
            return 0.0
        return sum(self.idle_fraction(w) for w in wids) / len(wids)

    def per_worker_summary(self) -> list[dict[str, float | int | str]]:
        """One summary row per worker: busy/wait/idle breakdown."""
        rows: list[dict[str, float | int | str]] = []
        for worker in self.workers:
            rows.append(
                {
                    "worker": worker.name,
                    "arch": worker.arch,
                    "n_tasks": sum(1 for r in self.task_records if r.worker == worker.wid),
                    "busy_us": self.busy_time(worker.wid),
                    "wait_us": self.wait_time(worker.wid),
                    "idle_frac": self.idle_fraction(worker.wid),
                }
            )
        return rows

    def record_of(self, tid: int) -> TaskRecord | None:
        """The execution record of task ``tid`` if it ran."""
        return self._by_tid.get(tid)

    # -- practical critical path ----------------------------------------------

    def practical_critical_path(self, tasks: list[Task]) -> list[TaskRecord]:
        """The chain of records that actually determined the makespan.

        Starting from the last-finishing task, repeatedly step to the
        record that delayed the current one the most: either its
        latest-finishing DAG predecessor or the task that occupied the
        same worker immediately before it — whichever ended last. This is
        the red-bordered chain highlighted in the paper's Fig. 4.
        """
        if not self.task_records:
            return []
        by_tid = {t.tid: t for t in tasks}
        # Previous record on the same worker, by end time.
        per_worker: dict[int, list[TaskRecord]] = {}
        for rec in self.task_records:
            per_worker.setdefault(rec.worker, []).append(rec)
        for recs in per_worker.values():
            recs.sort(key=lambda r: r.start)
        prev_on_worker: dict[int, TaskRecord] = {}
        for recs in per_worker.values():
            for earlier, later in zip(recs, recs[1:]):
                prev_on_worker[later.tid] = earlier

        current = max(self.task_records, key=lambda r: r.end)
        chain = [current]
        while True:
            task = by_tid.get(current.tid)
            candidates: list[TaskRecord] = []
            if task is not None:
                candidates.extend(
                    self._by_tid[p.tid] for p in task.preds if p.tid in self._by_tid
                )
            worker_prev = prev_on_worker.get(current.tid)
            if worker_prev is not None:
                candidates.append(worker_prev)
            candidates = [c for c in candidates if c.end <= current.start + 1e-9]
            if not candidates:
                break
            blocker = max(candidates, key=lambda r: r.end)
            # Stop when nothing meaningfully delayed the current record.
            if blocker.end <= 1e-9 and current.start <= 1e-9:
                break
            chain.append(blocker)
            current = blocker
        chain.reverse()
        return chain

    # -- visualization -----------------------------------------------------------

    def gantt_ascii(self, width: int = 100) -> str:
        """A fixed-width ASCII Gantt chart, one row per worker.

        Each column covers ``makespan / width``; a cell shows the first
        letter of the task type executing there, ``.`` when idle and
        ``~`` when waiting for data.
        """
        span = self.makespan()
        if span <= 0 or not self.workers:
            return "(empty trace)"
        width = max(1, int(width))
        lines: list[str] = []
        name_width = max(len(w.name) for w in self.workers)
        for worker in self.workers:
            cells = ["."] * width
            for rec in self.task_records:
                if rec.worker != worker.wid:
                    continue
                lo = int(rec.pop_time / span * width)
                mid = int(rec.start / span * width)
                hi = int(rec.end / span * width)
                hi = min(max(hi, mid + 1), width)
                for i in range(lo, min(mid, width)):
                    cells[i] = "~"
                letter = rec.type_name[0].upper() if rec.type_name else "#"
                for i in range(mid, hi):
                    cells[i] = letter
            lines.append(f"{worker.name:>{name_width}} |{''.join(cells)}|")
        pad = max(0, width - 12)
        lines.append(f"{'':>{name_width}}  0{'':>{pad}}{span:10.0f}us")
        return "\n".join(lines)
