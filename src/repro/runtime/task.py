"""Tasks, access modes and task lifecycle states.

A :class:`Task` is the unit of scheduling: a named kernel invocation with a
list of ``(DataHandle, AccessMode)`` accesses, a set of architectures it has
implementations for, a flop count used by performance models, and DAG
linkage (predecessors / successors) filled in by the STF front-end.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.data import DataHandle


class AccessMode(enum.IntEnum):
    """Data access modes, mirroring StarPU's ``STARPU_R/W/RW/COMMUTE``.

    ``COMMUTE`` is a read-write access whose order against other commuting
    accesses on the same handle is irrelevant (used e.g. for the FMM's
    accumulating M2L kernels). Commuting tasks do not depend on each other,
    but they all depend on the preceding exclusive access and the following
    exclusive access depends on all of them.
    """

    R = 1
    W = 2
    RW = 3
    COMMUTE = 4

    @property
    def is_read(self) -> bool:
        """True when the access observes the current contents."""
        return self in _READ_MODES

    @property
    def is_write(self) -> bool:
        """True when the access produces new contents."""
        return self in _WRITE_MODES


_READ_MODES = frozenset((AccessMode.R, AccessMode.RW, AccessMode.COMMUTE))
_WRITE_MODES = frozenset((AccessMode.W, AccessMode.RW, AccessMode.COMMUTE))

#: ``frozenset`` memo for implementation tuples: programs submit the same
#: handful of architecture combinations millions of times, and building a
#: fresh frozenset per task was a measurable slice of large-stream setup.
_IMPL_MEMO: dict[tuple[str, ...], frozenset[str]] = {}


class TaskState(enum.IntEnum):
    """Lifecycle of a task inside the simulator.

    ``CANCELLED`` is terminal like ``DONE`` but means the task never
    executed: the control plane (:mod:`repro.control`) shed its job at
    admission or evicted its job's unstarted work under overload. Only
    controlled runs ever produce it — the classic engine path uses the
    first four states exclusively.
    """

    SUBMITTED = 0
    READY = 1
    RUNNING = 2
    DONE = 3
    CANCELLED = 4


class Task:
    """A schedulable kernel invocation.

    Parameters
    ----------
    tid:
        Dense integer id, unique within one :class:`~repro.runtime.stf.Program`.
    type_name:
        Kernel type (e.g. ``"gemm"``); performance calibration and the
        HeteroPrio bucket mapping key off this.
    accesses:
        Sequence of ``(handle, mode)`` pairs.
    flops:
        Floating-point operation count, consumed by analytical performance
        models.
    implementations:
        Architectures this task can run on (e.g. ``("cpu", "cuda")``).
    priority:
        Application-provided priority (used by Dmdas); higher runs earlier.
        Defaults to 0, i.e. "the user provided no priorities".
    tag:
        Free-form coordinates for debugging/reporting (e.g. tile indices).
    resources:
        Names of shared non-processor resources (locks) this task holds for
        its whole execution. The engine serializes tasks sharing a resource
        (see :mod:`repro.runtime.resources`); empty means no contention.
    deadline_us:
        Absolute deadline (µs on the simulated clock). ``inf`` (the
        default) means "no deadline"; deadline-aware schedulers (``edf``,
        MultiPrio ``deadline_boost=``) and the stream miss-rate report read
        it, everything else ignores it.
    """

    __slots__ = (
        "tid",
        "type_name",
        "accesses",
        "flops",
        "implementations",
        "priority",
        "tag",
        "resources",
        "deadline_us",
        "preds",
        "succs",
        "n_unfinished_preds",
        "state",
        "sched",
        "_reads",
        "_writes",
    )

    def __init__(
        self,
        tid: int,
        type_name: str,
        accesses: Iterable[tuple["DataHandle", AccessMode]] = (),
        flops: float = 0.0,
        implementations: Iterable[str] = ("cpu",),
        priority: int = 0,
        tag: Any = None,
        resources: Iterable[str] = (),
        deadline_us: float = float("inf"),
    ) -> None:
        self.tid = tid
        self.type_name = type_name
        acc: list[tuple[DataHandle, AccessMode]] = list(accesses)
        self.accesses = acc
        self.flops = float(flops)
        if type(implementations) is not frozenset:
            key = (
                implementations
                if type(implementations) is tuple
                else tuple(implementations)
            )
            cached = _IMPL_MEMO.get(key)
            if cached is None:
                cached = _IMPL_MEMO[key] = frozenset(key)
            implementations = cached
        self.implementations: frozenset[str] = implementations
        if not self.implementations:
            raise ValueError(f"task {type_name}#{tid} has no implementation")
        self.priority = int(priority)
        self.tag = tag
        self.resources: tuple[str, ...] = tuple(resources)
        self.deadline_us = float(deadline_us)
        if self.deadline_us <= 0.0:
            raise ValueError(
                f"task {type_name}#{tid} deadline_us must be positive, "
                f"got {deadline_us}"
            )
        self.preds: list[Task] = []
        self.succs: list[Task] = []
        self.n_unfinished_preds = 0
        self.state = TaskState.SUBMITTED
        # Scratch area for schedulers (per-run, reset by the engine).
        self.sched: dict[str, Any] = {}
        # Access lists split once for the engine's hot path: transferable
        # read handles (size > 0) and written handles. Derived from
        # `accesses`, which is immutable after program construction.
        self._reads: tuple[DataHandle, ...] = tuple(
            h for h, m in acc if m in _READ_MODES and h.size > 0
        )
        self._writes: tuple[DataHandle, ...] = tuple(
            h for h, m in acc if m in _WRITE_MODES
        )

    # -- convenience -----------------------------------------------------

    def can_exec(self, arch: str) -> bool:
        """Whether an implementation exists for architecture ``arch``."""
        return arch in self.implementations

    @property
    def name(self) -> str:
        """Readable identifier like ``gemm#42``."""
        return f"{self.type_name}#{self.tid}"

    def handles(self, *, written: bool | None = None) -> list["DataHandle"]:
        """Handles accessed by this task.

        ``written=True`` restricts to write accesses, ``written=False`` to
        read accesses; ``None`` returns all (a handle accessed RW appears
        once).
        """
        out: list[DataHandle] = []
        seen: set[int] = set()
        for handle, mode in self.accesses:
            if written is True and not mode.is_write:
                continue
            if written is False and not mode.is_read:
                continue
            if handle.hid not in seen:
                seen.add(handle.hid)
                out.append(handle)
        return out

    def footprint_bytes(self) -> int:
        """Total bytes touched (each handle counted once)."""
        return sum(h.size for h in self.handles())

    def reset_runtime_state(self) -> None:
        """Restore the task to its freshly-submitted state.

        Called by the engine so that a single :class:`Program` can be
        simulated repeatedly (e.g. once per scheduler in a benchmark grid).
        """
        self.n_unfinished_preds = len(self.preds)
        self.state = TaskState.SUBMITTED
        self.sched.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name} {self.state.name} prio={self.priority}>"
