"""Charged scheduler-decision overheads.

The engine's default contract is that scheduling is free: ``push``,
``pop`` and batch flushes take zero simulated time. Production runtimes
pay for every decision on a real core, and batch schedulers exist
precisely because one bulk decision amortizes that cost over many tasks.
A :class:`SchedOverheadModel` makes that trade-off simulable: the engine
charges each decision to a single virtual *scheduler core* and delays
popped tasks until their decision has been paid for, so batching's
coalescing shows up as a *simulated*-time win rather than only a
wall-clock one.

Semantics (see ``DESIGN.md`` §5h):

* one scheduler core — decisions serialize on a ``sched_free`` clock
  that never runs ahead of more than one decision at a time;
* ``push_us`` per per-event reveal, ``pop_us`` per successful pop
  (empty polls are free: the engine's worker wake-ups poll far more
  often than a real runtime would), ``flush_us + n·batch_task_us`` per
  batch flush of ``n`` tasks;
* a popped task's data-arrival time is clamped to the end of its pop
  decision, so a congested scheduler core visibly delays execution;
* an all-zero model is bit-identical to ``overhead=None`` (the
  ``rt.overhead_noop`` differential enforces this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class SchedOverheadModel:
    """Per-decision scheduling costs, in µs of simulated time.

    ``batch_task_us`` defaults to ``push_us`` — batching then costs
    exactly what per-event pushes would, and only a genuine bulk
    discount (``batch_task_us < push_us``, e.g. from a measured bulk
    ``push_batch`` speedup) makes coalescing win simulated time.
    """

    push_us: float = 0.0
    pop_us: float = 0.0
    flush_us: float = 0.0
    batch_task_us: float | None = None

    def __post_init__(self) -> None:
        for name in ("push_us", "pop_us", "flush_us"):
            v = getattr(self, name)
            if not (isinstance(v, (int, float)) and math.isfinite(v) and v >= 0.0):
                raise ValidationError(
                    f"SchedOverheadModel.{name} must be a finite non-negative "
                    f"µs cost, got {v!r}"
                )
        if self.batch_task_us is None:
            object.__setattr__(self, "batch_task_us", float(self.push_us))
        elif not (
            isinstance(self.batch_task_us, (int, float))
            and math.isfinite(self.batch_task_us)
            and self.batch_task_us >= 0.0
        ):
            raise ValidationError(
                f"SchedOverheadModel.batch_task_us must be a finite "
                f"non-negative µs cost or None, got {self.batch_task_us!r}"
            )

    @property
    def is_free(self) -> bool:
        """True when every cost is zero (the bit-identity no-op)."""
        return (
            self.push_us == 0.0
            and self.pop_us == 0.0
            and self.flush_us == 0.0
            and self.batch_task_us == 0.0
        )

    @classmethod
    def calibrated(
        cls,
        sched_core_s: float,
        n_decisions: int,
        *,
        batch_speedup: float = 1.0,
    ) -> "SchedOverheadModel":
        """Build a model from a measured scheduler-core wall time.

        ``sched_core_s`` over ``n_decisions`` (e.g. from
        ``benchmarks/bench_engine.py`` sched-core seconds and the run's
        push+pop count) gives the mean per-decision cost; pushes and
        pops are charged that cost symmetrically. ``batch_speedup`` is
        the measured bulk ``push_batch`` advantage: per-task batch cost
        is the per-decision cost divided by it (a flush still pays one
        full decision as its fixed cost).
        """
        if not (math.isfinite(sched_core_s) and sched_core_s >= 0.0):
            raise ValidationError(
                f"sched_core_s must be finite and >= 0, got {sched_core_s!r}"
            )
        if n_decisions < 1:
            raise ValidationError(f"n_decisions must be >= 1, got {n_decisions}")
        if not (math.isfinite(batch_speedup) and batch_speedup >= 1.0):
            raise ValidationError(
                f"batch_speedup must be finite and >= 1, got {batch_speedup!r}"
            )
        per_decision_us = sched_core_s / n_decisions * 1e6
        return cls(
            push_us=per_decision_us,
            pop_us=per_decision_us,
            flush_us=per_decision_us,
            batch_task_us=per_decision_us / batch_speedup,
        )


class OverheadLedger:
    """Per-run charging state for one :class:`SchedOverheadModel`.

    The engine owns exactly one ledger per run; the invariant checker's
    ``rt`` family audits it (``charged_us`` must equal the counter-
    weighted sum of the model's costs, and ``sched_free`` may never
    retreat).
    """

    __slots__ = (
        "model", "sched_free", "charged_us",
        "n_push", "n_pop", "n_flush", "n_flush_tasks",
    )

    def __init__(self, model: SchedOverheadModel) -> None:
        self.model = model
        self.sched_free = 0.0
        self.charged_us = 0.0
        self.n_push = 0
        self.n_pop = 0
        self.n_flush = 0
        self.n_flush_tasks = 0

    def _charge(self, now: float, cost: float) -> float:
        start = self.sched_free if self.sched_free > now else now
        self.sched_free = start + cost
        self.charged_us += cost
        return self.sched_free

    def push(self, now: float) -> float:
        """Charge one per-event reveal; returns the decision end time."""
        self.n_push += 1
        return self._charge(now, self.model.push_us)

    def pop(self, now: float) -> float:
        """Charge one successful pop; returns the decision end time."""
        self.n_pop += 1
        return self._charge(now, self.model.pop_us)

    def flush(self, now: float, n_tasks: int) -> float:
        """Charge one batch flush of ``n_tasks``; returns its end time."""
        self.n_flush += 1
        self.n_flush_tasks += n_tasks
        return self._charge(
            now, self.model.flush_us + n_tasks * self.model.batch_task_us
        )

    def stats(self) -> dict[str, float]:
        """Counters for :class:`~repro.runtime.engine.SimResult.rt_stats`."""
        return {
            "overhead_charged_us": self.charged_us,
            "overhead_n_push": float(self.n_push),
            "overhead_n_pop": float(self.n_pop),
            "overhead_n_flush": float(self.n_flush),
            "overhead_n_flush_tasks": float(self.n_flush_tasks),
        }
