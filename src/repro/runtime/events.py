"""Event taxonomy of the discrete-event engine.

Events are plain tuples ``(time, seq, kind, payload)`` on a binary heap —
the sequence number makes simultaneous events deterministic and keeps
tuple comparison away from payload objects. The kinds:

* ``TASK_COMPLETION`` — a worker finishes a task; payload ``(worker, task)``.
* ``WORKER_REQUEST`` — an idle worker asks the scheduler for work
  (StarPU's POP hook); payload ``worker``.
* ``TASK_FAILURE`` — an injected transient failure aborts a running
  attempt; payload ``(worker, task)``. Scheduled *instead of* the
  completion event when the fault model fails the attempt.
* ``WORKER_FAILURE`` — an injected fail-stop failure kills a worker;
  payload ``wid``.
* ``TASK_RETRY`` — a previously-failed task's virtual-time backoff
  expires and it re-enters the scheduler; payload ``task``.
* ``JOB_ARRIVAL`` — a job of a merged stream reaches its release time
  and the STF "main thread" resumes submitting; payload ``None`` (the
  engine re-runs its submission loop against the clock).
* ``BATCH_FLUSH`` — batch-mode scheduling only: the configured
  ``batch_step`` elapsed since ready tasks started buffering, so the
  engine hands the whole batch to the scheduler; payload ``None``.
"""

from __future__ import annotations

TASK_COMPLETION = 0
WORKER_REQUEST = 1
TASK_FAILURE = 2
WORKER_FAILURE = 3
TASK_RETRY = 4
JOB_ARRIVAL = 5
BATCH_FLUSH = 6

KIND_NAMES = {
    TASK_COMPLETION: "completion",
    WORKER_REQUEST: "request",
    TASK_FAILURE: "task-failure",
    WORKER_FAILURE: "worker-failure",
    TASK_RETRY: "retry",
    JOB_ARRIVAL: "job-arrival",
    BATCH_FLUSH: "batch-flush",
}
