"""Event taxonomy of the discrete-event engine.

Events are plain tuples ``(time, seq, kind, payload)`` on a binary heap —
the sequence number makes simultaneous events deterministic and keeps
tuple comparison away from payload objects. The kinds:

* ``TASK_COMPLETION`` — a worker finishes a task; payload ``(worker, task)``.
* ``WORKER_REQUEST`` — an idle worker asks the scheduler for work
  (StarPU's POP hook); payload ``worker``.
"""

from __future__ import annotations

TASK_COMPLETION = 0
WORKER_REQUEST = 1

KIND_NAMES = {TASK_COMPLETION: "completion", WORKER_REQUEST: "request"}
