"""StarPU-like task runtime substrate, simulated.

This subpackage provides everything the paper's scheduler needs from a
runtime system:

* a **Sequential Task Flow** front-end (:mod:`repro.runtime.stf`) that
  infers the task DAG from data handles and access modes, exactly like
  StarPU's STF model;
* **memory nodes, replicas and transfer links** with MSI-style coherence
  (:mod:`repro.runtime.data`, :mod:`repro.runtime.memory`);
* **workers / processing units / architectures**
  (:mod:`repro.runtime.worker`);
* **history-based performance models** (:mod:`repro.runtime.perfmodel`);
* a **discrete-event simulation engine** (:mod:`repro.runtime.engine`)
  that drives schedulers through the same two hook points StarPU exposes
  (PUSH when a task becomes ready, POP when a worker idles);
* **execution traces** (:mod:`repro.runtime.trace`) for the idle-time and
  critical-path analyses of the paper's Fig. 4.
"""

from repro.runtime.task import AccessMode, Task, TaskState
from repro.runtime.data import DataHandle
from repro.runtime.stf import TaskFlow, Program
from repro.runtime.dag import (
    validate_dag,
    critical_path_length,
    bottom_levels,
    topological_order,
    task_type_histogram,
)
from repro.runtime.worker import Worker
from repro.runtime.memory import MemoryNode, Link, TransferEngine
from repro.runtime.platform_config import (
    MemoryNodeSpec,
    LinkSpec,
    MachineSpec,
    Platform,
)
from repro.runtime.perfmodel import (
    KernelCalibration,
    CalibrationTable,
    AnalyticalPerfModel,
    HistoryPerfModel,
    PerfModel,
)
from repro.runtime.engine import Simulator, SimResult, SchedContext
from repro.runtime.overhead import OverheadLedger, SchedOverheadModel
from repro.runtime.power import (
    ArchPower,
    EnergyReport,
    PowerLedger,
    PowerModel,
    PowerState,
    PowerStateModel,
    WorkerEnergy,
)
from repro.runtime.resources import ResourceLedger, ResourceProtocol
from repro.runtime.trace import Trace, TaskRecord, TransferRecord

__all__ = [
    "AccessMode",
    "Task",
    "TaskState",
    "DataHandle",
    "TaskFlow",
    "Program",
    "validate_dag",
    "critical_path_length",
    "bottom_levels",
    "topological_order",
    "task_type_histogram",
    "Worker",
    "MemoryNode",
    "Link",
    "TransferEngine",
    "MemoryNodeSpec",
    "LinkSpec",
    "MachineSpec",
    "Platform",
    "KernelCalibration",
    "CalibrationTable",
    "AnalyticalPerfModel",
    "HistoryPerfModel",
    "PerfModel",
    "Simulator",
    "SimResult",
    "SchedContext",
    "SchedOverheadModel",
    "OverheadLedger",
    "ArchPower",
    "PowerModel",
    "PowerState",
    "PowerStateModel",
    "PowerLedger",
    "EnergyReport",
    "WorkerEnergy",
    "ResourceProtocol",
    "ResourceLedger",
    "Trace",
    "TaskRecord",
    "TransferRecord",
]
