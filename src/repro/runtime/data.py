"""Data handles: the unit of data management and coherence.

A :class:`DataHandle` names a region of application data (a matrix tile, a
cell's multipole expansion, a particle block). The simulator tracks on
which memory nodes a *valid replica* of each handle currently lives, with
MSI-style semantics: reads create shared replicas, writes invalidate every
replica but the writer's.
"""

from __future__ import annotations

from typing import Any


class DataHandle:
    """A named, sized piece of application data.

    Parameters
    ----------
    hid:
        Dense integer id, unique within a :class:`~repro.runtime.stf.TaskFlow`.
    size:
        Size in bytes. May be zero for pure-synchronization handles.
    home_node:
        Memory node id where the data initially resides (usually RAM = 0).
    label:
        Readable name for traces, e.g. ``"A[3,2]"``.
    key:
        Optional structured coordinates (tuple) for application bookkeeping.
    """

    __slots__ = (
        "hid",
        "size",
        "home_node",
        "label",
        "key",
        "valid_nodes",
        "_in_flight",
        "_pins",
    )

    def __init__(
        self,
        hid: int,
        size: int,
        home_node: int = 0,
        label: str = "",
        key: Any = None,
    ) -> None:
        if size < 0:
            raise ValueError(f"handle size must be >= 0, got {size}")
        self.hid = hid
        self.size = int(size)
        self.home_node = int(home_node)
        self.label = label or f"d{hid}"
        self.key = key
        # Runtime coherence state (managed by the engine / TransferEngine).
        self.valid_nodes: set[int] = {self.home_node}
        # node id -> completion time of a transfer currently bringing the
        # handle to that node (lets concurrent readers share one transfer).
        self._in_flight: dict[int, float] = {}
        # node id -> count of running tasks using this replica (pinned
        # replicas are exempt from capacity eviction).
        self._pins: dict[int, int] = {}

    def reset_runtime_state(self) -> None:
        """Restore initial residency (home node only). Called per-run."""
        self.valid_nodes = {self.home_node}
        self._in_flight.clear()
        self._pins.clear()

    def is_valid_on(self, node: int) -> bool:
        """Whether a valid replica lives on memory node ``node``."""
        return node in self.valid_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DataHandle {self.label} {self.size}B on {sorted(self.valid_nodes)}>"
