"""Sequential Task Flow front-end: infer the DAG from data accesses.

Applications never wire dependencies by hand. They submit tasks in a
sequential order together with the data handles each task reads and
writes, and the task flow derives the DAG exactly like StarPU's STF model:

* read-after-write: a reader depends on the latest writer;
* write-after-read: a writer depends on every reader since the last write;
* write-after-write: serialized;
* ``COMMUTE`` accesses form groups of mutually-independent read-writers
  that are ordered against surrounding exclusive accesses only.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.runtime.data import DataHandle
from repro.runtime.task import AccessMode, Task


class _HandleFlowState:
    """Per-handle bookkeeping during sequential submission."""

    __slots__ = ("last_write_set", "readers", "commuters", "group_base")

    def __init__(self) -> None:
        # Tasks acting as the most recent write barrier: either the single
        # latest exclusive writer, or a closed COMMUTE group.
        self.last_write_set: list[Task] = []
        self.readers: list[Task] = []
        self.commuters: list[Task] = []
        self.group_base: list[Task] = []


class Program:
    """An immutable, fully-submitted task graph plus its data handles.

    ``release_times`` (optional, one entry per task, in submission
    order) gives the virtual time (µs) at which the STF main thread
    submits each task — the engine reveals a task to the scheduler only
    once the clock reaches its release. ``None`` (the default, and what
    :class:`TaskFlow` produces) means everything is available at t=0.
    Merged job streams (:func:`repro.workload.merge_stream`) use this to
    make each job's tasks appear at its arrival time. Times must be
    non-negative and non-decreasing in submission order, so the dense
    ``tid < revealed`` prefix test stays valid.
    """

    def __init__(
        self,
        tasks: list[Task],
        handles: list[DataHandle],
        name: str = "",
        release_times: "Sequence[float] | None" = None,
    ) -> None:
        self.tasks = tasks
        self.handles = handles
        self.name = name or "program"
        if release_times is not None:
            release_times = tuple(float(t) for t in release_times)
            if len(release_times) != len(tasks):
                raise ValueError(
                    f"release_times has {len(release_times)} entries for "
                    f"{len(tasks)} tasks"
                )
            prev = 0.0
            for i, t in enumerate(release_times):
                if t < 0.0:
                    raise ValueError(f"release_times[{i}] is negative: {t}")
                if t < prev:
                    raise ValueError(
                        f"release_times must be non-decreasing in submission "
                        f"order, but entry {i} ({t}) < entry {i - 1} ({prev})"
                    )
                prev = t
        self.release_times = release_times

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def n_edges(self) -> int:
        """Total number of dependency edges."""
        return sum(len(t.succs) for t in self.tasks)

    def source_tasks(self) -> list[Task]:
        """Tasks with no predecessors (ready at time zero)."""
        return [t for t in self.tasks if not t.preds]

    def sink_tasks(self) -> list[Task]:
        """Tasks with no successors."""
        return [t for t in self.tasks if not t.succs]

    def total_flops(self) -> float:
        """Sum of task flop counts."""
        return sum(t.flops for t in self.tasks)

    def reset_runtime_state(self) -> None:
        """Reset all tasks and handles so the program can be re-simulated."""
        for task in self.tasks:
            task.reset_runtime_state()
        for handle in self.handles:
            handle.reset_runtime_state()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Program {self.name!r}: {len(self.tasks)} tasks, "
            f"{self.n_edges} edges, {len(self.handles)} handles>"
        )


class TaskFlow:
    """Sequential task submission with automatic dependency inference.

    Typical use::

        tf = TaskFlow()
        a = tf.data(8 * n * n, label="A")
        b = tf.data(8 * n * n, label="B")
        tf.submit("init", [(a, AccessMode.W)], flops=0.0)
        tf.submit("gemm", [(a, AccessMode.R), (b, AccessMode.RW)], flops=2e9,
                  implementations=("cpu", "cuda"))
        program = tf.program()
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._tasks: list[Task] = []
        self._handles: list[DataHandle] = []
        self._flow: dict[int, _HandleFlowState] = {}
        self._finalized = False

    # -- data registration ------------------------------------------------

    def data(
        self,
        size: int,
        *,
        label: str = "",
        key: Any = None,
        home_node: int = 0,
    ) -> DataHandle:
        """Register a new data handle of ``size`` bytes."""
        self._check_open()
        handle = DataHandle(len(self._handles), size, home_node=home_node, label=label, key=key)
        self._handles.append(handle)
        self._flow[handle.hid] = _HandleFlowState()
        return handle

    # -- task submission ---------------------------------------------------

    def submit(
        self,
        type_name: str,
        accesses: Sequence[tuple[DataHandle, AccessMode]] = (),
        *,
        flops: float = 0.0,
        implementations: Iterable[str] = ("cpu",),
        priority: int = 0,
        tag: Any = None,
        resources: Iterable[str] = (),
        deadline_us: float = float("inf"),
    ) -> Task:
        """Submit a task; dependencies are inferred from ``accesses``."""
        self._check_open()
        task = Task(
            len(self._tasks),
            type_name,
            accesses,
            flops=flops,
            implementations=implementations,
            priority=priority,
            tag=tag,
            resources=resources,
            deadline_us=deadline_us,
        )
        dep_tids: set[int] = set()
        deps: list[Task] = []

        seen_handles: set[int] = set()
        for handle, mode in task.accesses:
            if handle.hid in seen_handles:
                raise ValueError(
                    f"task {task.name} accesses handle {handle.label} twice; "
                    "merge the accesses into a single mode"
                )
            seen_handles.add(handle.hid)
            state = self._flow.get(handle.hid)
            if state is None:
                raise ValueError(f"handle {handle.label} was not created by this TaskFlow")
            for dep in self._advance_handle_state(state, task, mode):
                if dep.tid not in dep_tids and dep is not task:
                    dep_tids.add(dep.tid)
                    deps.append(dep)

        for dep in deps:
            dep.succs.append(task)
            task.preds.append(dep)
        task.n_unfinished_preds = len(task.preds)
        self._tasks.append(task)
        return task

    @staticmethod
    def _advance_handle_state(
        state: _HandleFlowState, task: Task, mode: AccessMode
    ) -> list[Task]:
        """Update one handle's flow state; return this access's dependencies."""
        if mode is AccessMode.R:
            if state.commuters:
                # A read closes the open COMMUTE group.
                state.last_write_set = state.commuters
                state.commuters = []
                state.group_base = []
            deps = state.last_write_set
            state.readers.append(task)
            return deps

        if mode is AccessMode.COMMUTE:
            if not state.commuters:
                # Open a new group; its base is what the group must wait on.
                state.group_base = (
                    list(state.readers) if state.readers else list(state.last_write_set)
                )
                state.readers = []
            state.commuters.append(task)
            return state.group_base

        # Exclusive write (W or RW).
        if state.commuters:
            deps = state.commuters + state.readers
        elif state.readers:
            deps = state.readers
        else:
            deps = state.last_write_set
        state.last_write_set = [task]
        state.readers = []
        state.commuters = []
        state.group_base = []
        return deps

    # -- finalization ------------------------------------------------------

    def program(self) -> Program:
        """Freeze submission and return the resulting :class:`Program`."""
        self._check_open()
        self._finalized = True
        return Program(self._tasks, self._handles, name=self.name)

    def _check_open(self) -> None:
        if self._finalized:
            raise RuntimeError("TaskFlow already finalized; create a new one")

    def __len__(self) -> int:
        return len(self._tasks)
