"""DVFS power states, node power caps, and per-run energy accounting.

The paper's Section VII names energy efficiency as the intended
extension of multi-priority scheduling; this module promotes it from a
post-hoc conversion (:func:`repro.extensions.energy.energy_of_result`)
to a first-class engine subsystem:

* :class:`ArchPower` / :class:`PowerModel` — per-architecture busy/idle
  watts per worker (the static draw profile, shared with the energy-
  aware schedulers);
* :class:`PowerState` — one DVFS operating point: a relative compute
  ``speed`` plus multipliers on the architecture's busy/idle watts.
  The default ladder is ``full`` / ``eco`` / ``sleep``;
* :class:`PowerStateModel` — the per-run configuration: the state
  ladder, the arch draw profile, optional **node power caps**, and the
  state workers idle in;
* :class:`PowerLedger` — the engine's per-run bookkeeping: state
  admission under the caps, per-worker busy-time charging, and the
  end-of-run :class:`EnergyReport`.

Semantics (see ``DESIGN.md`` §5i):

* a worker *executes* in the fastest runnable state (``speed > 0``)
  whose busy draw fits under its memory node's cap, given the draw
  already reserved by concurrently-executing workers on that node; a
  downgrade or delay emits a
  :class:`~repro.obs.events.PowerCapThrottled` provenance event;
* when even the leanest runnable state does not fit, execution *waits*
  until enough reserved draw is released (reservations release at the
  planned end of each execution, which is conservative when a fault
  aborts an attempt early) — the cap is a hard budget, never exceeded;
* execution duration divides by the chosen state's ``speed``: an
  ``eco`` worker is slower but leaner, the classic DVFS trade;
* idle workers draw the model's *idle state* watts
  (``idle_watts * idle_scale``), and a fail-stop-dead worker stops
  drawing at its death time;
* the caps budget **busy draw only** — the idle floor is not under the
  engine's control and is excluded from cap arithmetic;
* a model whose fastest runnable state is ``full`` (speed 1.0) with no
  caps never changes any schedule decision: the run is bit-identical
  to ``power=None`` (the ``power.noop`` differential enforces this),
  and a single-``full``-state model's :class:`EnergyReport` matches
  :func:`~repro.extensions.energy.energy_of_result` bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.utils.validation import (
    ValidationError,
    check_non_negative,
    check_positive,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.platform_config import Platform
    from repro.runtime.worker import Worker

#: Sentinel distinguishing "no default passed" from ``default=None``.
_RAISE: Any = object()


@dataclass(frozen=True)
class ArchPower:
    """Per-worker power draw of one architecture, in watts."""

    busy_watts: float
    idle_watts: float

    def __post_init__(self) -> None:
        check_positive("busy_watts", self.busy_watts)
        check_non_negative("idle_watts", self.idle_watts)
        if self.idle_watts > self.busy_watts:
            raise ValueError("idle_watts cannot exceed busy_watts")


class PowerModel:
    """Power draw per architecture, per worker.

    Defaults approximate the evaluation platforms: one CPU core at 12 W
    busy / 3 W idle; one GPU execution context at 250 W busy / 50 W idle
    (a full device — divide by the stream count when modelling
    multi-stream sharing precisely; for scheduler comparisons the
    constant-per-worker approximation is sufficient and identical across
    policies).
    """

    DEFAULTS = {
        "cpu": ArchPower(busy_watts=12.0, idle_watts=3.0),
        "cuda": ArchPower(busy_watts=250.0, idle_watts=50.0),
    }

    def __init__(self, per_arch: dict[str, ArchPower] | None = None) -> None:
        self._per_arch = dict(self.DEFAULTS)
        if per_arch:
            self._per_arch.update(per_arch)

    def arch_power(self, arch: str, default: ArchPower | None = _RAISE) -> ArchPower:
        """Power profile of one architecture.

        Unknown architectures raise ``KeyError`` — a silently invented
        profile would corrupt every energy comparison on platforms with
        e.g. ``fpga`` workers. Pass ``default=`` to opt into a fallback
        explicitly.
        """
        got = self._per_arch.get(arch)
        if got is None:
            if default is _RAISE:
                raise KeyError(
                    f"no power profile for architecture {arch!r}; pass "
                    f"per_arch={{{arch!r}: ArchPower(...)}} or an explicit "
                    "default="
                )
            return default
        return got

    def energy_us(self, arch: str, busy_us: float, idle_us: float) -> float:
        """Energy in joules for the given busy/idle microseconds."""
        power = self.arch_power(arch)
        return (busy_us * power.busy_watts + idle_us * power.idle_watts) * 1e-6


@dataclass(frozen=True)
class PowerState:
    """One DVFS operating point of a worker.

    ``speed`` is the relative compute rate (execution time divides by
    it); ``speed == 0`` marks a pure idle state (``sleep``) that can
    never execute. ``busy_scale`` / ``idle_scale`` multiply the
    architecture's busy/idle watts while the worker occupies the state.
    """

    name: str
    speed: float = 1.0
    busy_scale: float = 1.0
    idle_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("PowerState.name must be non-empty")
        for attr in ("speed", "busy_scale", "idle_scale"):
            v = getattr(self, attr)
            if not (isinstance(v, (int, float)) and math.isfinite(v) and v >= 0.0):
                raise ValidationError(
                    f"PowerState.{attr} must be finite and >= 0, got {v!r}"
                )
        if self.speed > 1.0:
            raise ValidationError(
                f"PowerState.speed must be <= 1 (1.0 = nominal), got {self.speed!r}"
            )

    @property
    def runnable(self) -> bool:
        """Whether a worker can execute tasks in this state."""
        return self.speed > 0.0


#: The default DVFS ladder: nominal, a leaner-but-slower operating point
#: (energy per op ~0.75x of full at 0.6x speed), and a deep idle state.
DEFAULT_STATES: tuple[PowerState, ...] = (
    PowerState("full", speed=1.0, busy_scale=1.0, idle_scale=1.0),
    PowerState("eco", speed=0.6, busy_scale=0.45, idle_scale=0.7),
    PowerState("sleep", speed=0.0, busy_scale=0.0, idle_scale=0.1),
)


@dataclass(frozen=True)
class PowerStateModel:
    """Per-run power configuration: state ladder, draw profile, caps.

    ``node_cap_watts`` is a hard budget on the *busy* draw of
    concurrently-executing workers per memory node: a single float caps
    every node identically, a mapping caps selected ``mid``s
    (missing nodes are uncapped). ``idle_state`` names the state idle
    workers occupy; the default is the lowest-``idle_scale`` state
    (``sleep`` on the default ladder).

    With no caps and a full-speed fastest state the model is *passive*:
    it meters energy without perturbing the schedule
    (:attr:`is_passive`).
    """

    states: tuple[PowerState, ...] = DEFAULT_STATES
    power: PowerModel = field(default_factory=PowerModel)
    node_cap_watts: float | Mapping[int, float] | None = None
    idle_state: str | None = None

    def __post_init__(self) -> None:
        states = tuple(self.states)
        object.__setattr__(self, "states", states)
        if not states:
            raise ValidationError("PowerStateModel.states must be non-empty")
        names = [s.name for s in states]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate PowerState names: {names}")
        if not any(s.runnable for s in states):
            raise ValidationError(
                "PowerStateModel needs at least one runnable state (speed > 0)"
            )
        if isinstance(self.node_cap_watts, (int, float)):
            check_positive("node_cap_watts", float(self.node_cap_watts))
        elif self.node_cap_watts is not None:
            for mid, cap in self.node_cap_watts.items():
                check_positive(f"node_cap_watts[{mid}]", float(cap))
        if self.idle_state is None:
            idle = min(states, key=lambda s: s.idle_scale)
            object.__setattr__(self, "idle_state", idle.name)
        elif self.idle_state not in names:
            raise ValidationError(
                f"idle_state {self.idle_state!r} is not one of {names}"
            )

    # -- derived views ---------------------------------------------------

    @property
    def run_states(self) -> tuple[PowerState, ...]:
        """Runnable states, fastest first (admission preference order)."""
        return tuple(
            sorted(
                (s for s in self.states if s.runnable),
                key=lambda s: -s.speed,
            )
        )

    @property
    def idle_scale(self) -> float:
        """The idle-state multiplier on each architecture's idle watts."""
        return self.state(self.idle_state).idle_scale

    @property
    def is_passive(self) -> bool:
        """True when the model can never alter a schedule decision:
        no caps, and the preferred run state is full speed."""
        return self.node_cap_watts is None and self.run_states[0].speed == 1.0

    def state(self, name: str) -> PowerState:
        for s in self.states:
            if s.name == name:
                return s
        raise KeyError(f"no power state named {name!r}")

    def cap_of(self, mid: int) -> float:
        """The busy-draw cap of memory node ``mid`` (inf = uncapped)."""
        caps = self.node_cap_watts
        if caps is None:
            return math.inf
        if isinstance(caps, (int, float)):
            return float(caps)
        return float(caps.get(mid, math.inf))

    @classmethod
    def metering(cls, power: PowerModel | None = None) -> "PowerStateModel":
        """A single-``full``-state, uncapped model: measures energy with
        zero schedule impact, and its :class:`EnergyReport` matches
        :func:`~repro.extensions.energy.energy_of_result` bit-for-bit
        (the same per-worker busy/idle arithmetic, idle billed at the
        architecture's full idle watts)."""
        return cls(states=(PowerState("full"),), power=power or PowerModel())


@dataclass(frozen=True)
class WorkerEnergy:
    """End-of-run energy view of one worker."""

    wid: int
    arch: str
    #: Busy microseconds per power-state name.
    busy_us_by_state: dict[str, float]
    busy_us: float
    idle_us: float
    #: The worker's live timeline: ``min(makespan, death time)``.
    horizon_us: float
    joules: float


@dataclass(frozen=True)
class EnergyReport:
    """End-of-run energy accounting (``SimResult.energy``)."""

    total_j: float
    busy_j: float
    idle_j: float
    #: Per-architecture rollup: busy_us / idle_us / joules.
    by_arch: dict[str, dict[str, float]]
    by_worker: tuple[WorkerEnergy, ...]
    #: Cap interventions: state downgrades or delayed starts.
    n_throttled: int
    #: Total execution-start delay imposed by the caps, µs.
    throttle_delay_us: float

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready mapping (per-worker detail omitted)."""
        return {
            "total_j": self.total_j,
            "busy_j": self.busy_j,
            "idle_j": self.idle_j,
            "n_throttled": float(self.n_throttled),
            "throttle_delay_us": self.throttle_delay_us,
            "by_arch": {a: dict(v) for a, v in self.by_arch.items()},
        }


class PowerLedger:
    """Per-run power bookkeeping for one :class:`PowerStateModel`.

    The engine owns exactly one ledger per run. :meth:`admit` picks the
    execution state under the node caps (possibly delaying the start),
    :meth:`book` reserves the chosen draw until the planned end,
    :meth:`charge` accrues per-worker busy time per state, and
    :meth:`finalize` folds it all into an :class:`EnergyReport`. The
    invariant checker's ``energy`` family audits the reservations
    against the caps and the counters' monotonicity.
    """

    __slots__ = (
        "model", "platform", "run_states", "active",
        "busy_us_by_state", "busy_us_total",
        "n_admissions", "n_throttled", "throttle_delay_us",
        "_busy_watts", "_floor_watts",
    )

    def __init__(self, model: PowerStateModel, platform: "Platform") -> None:
        self.model = model
        self.platform = platform
        self.run_states = model.run_states
        #: Per-node reserved busy draw:
        #: ``mid -> [(end_us, watts, start_us), ...]``.
        self.active: dict[int, list[tuple[float, float, float]]] = {
            node.mid: [] for node in platform.nodes
        }
        self.busy_us_by_state: dict[int, dict[str, float]] = {
            w.wid: {} for w in platform.workers
        }
        self.busy_us_total = 0.0
        self.n_admissions = 0
        self.n_throttled = 0
        self.throttle_delay_us = 0.0
        # Base busy watts per architecture; every arch on the platform
        # must have a profile (KeyError here beats silent corruption).
        self._busy_watts = {
            arch: model.power.arch_power(arch).busy_watts
            for arch in platform.archs
        }
        self._floor_watts = {
            arch: min(bw * s.busy_scale for s in self.run_states)
            for arch, bw in self._busy_watts.items()
        }
        # Feasibility: the leanest runnable state of every arch must fit
        # its node's cap alone, or capped execution could never start.
        for node in platform.nodes:
            cap = model.cap_of(node.mid)
            if cap == math.inf:
                continue
            for w in platform.workers_of_node(node.mid):
                floor = self._floor_watts[w.arch]
                if floor > cap + 1e-9:
                    raise ValidationError(
                        f"node {node.name!r} cap {cap} W is below the leanest "
                        f"runnable draw of its {w.arch} workers ({floor} W); "
                        "no execution could ever be admitted"
                    )

    # -- admission under the caps ----------------------------------------

    def admit(self, worker: "Worker", at: float) -> tuple[PowerState, float]:
        """Choose the execution state for ``worker`` starting at ``at``.

        Returns ``(state, start)`` with ``start >= at``: the fastest
        runnable state whose draw fits under the node cap now, or — when
        nothing fits — the earliest later start at which the leanest
        state fits (re-upgraded to the fastest state that fits then).
        """
        self.n_admissions += 1
        states = self.run_states
        preferred = states[0]
        cap = self.model.cap_of(worker.memory_node)
        if cap == math.inf:
            return preferred, at
        reserved = self.active[worker.memory_node]
        if reserved:
            alive = [r for r in reserved if r[0] > at]
            if len(alive) != len(reserved):
                reserved[:] = alive
        bw = self._busy_watts[worker.arch]
        usage = sum(w for _, w, _ in reserved)
        for state in states:
            if usage + bw * state.busy_scale <= cap + 1e-9:
                if state is not preferred:
                    self.n_throttled += 1
                return state, at
        # Nothing fits now: wait until the leanest state does (releases
        # only free budget going forward — later reservations commit in
        # event order and will see this one).
        floor = self._floor_watts[worker.arch]
        start = at
        for end, watts, _ in sorted(reserved):
            usage -= watts
            start = end
            if usage + floor <= cap + 1e-9:
                break
        chosen = states[-1]
        for state in states:
            if usage + bw * state.busy_scale <= cap + 1e-9:
                chosen = state
                break
        self.n_throttled += 1
        self.throttle_delay_us += start - at
        return chosen, start

    def book(
        self, worker: "Worker", state: PowerState, start: float, end: float
    ) -> None:
        """Reserve the chosen draw on the worker's node over
        ``[start, end)``."""
        if self.model.cap_of(worker.memory_node) == math.inf:
            return
        self.active[worker.memory_node].append(
            (end, self._busy_watts[worker.arch] * state.busy_scale, start)
        )

    def node_draw(self, mid: int, now: float) -> float:
        """Busy draw actually flowing on node ``mid`` at time ``now``:
        the sum over reservations whose span covers ``now`` (a
        delayed-start reservation draws nothing before its start). The
        invariant checker audits this against the node's cap."""
        return sum(
            w for end, w, start in self.active[mid] if start <= now < end
        )

    # -- energy accrual ---------------------------------------------------

    def charge(self, worker: "Worker", state: PowerState, exec_us: float) -> float:
        """Accrue ``exec_us`` of busy time in ``state``; returns the
        joules attributable to that execution span."""
        per_state = self.busy_us_by_state[worker.wid]
        per_state[state.name] = per_state.get(state.name, 0.0) + exec_us
        self.busy_us_total += exec_us
        return exec_us * self._busy_watts[worker.arch] * state.busy_scale * 1e-6

    def finalize(
        self, makespan: float, death_time: Mapping[int, float]
    ) -> EnergyReport:
        """The end-of-run :class:`EnergyReport`.

        Per worker: busy time accrued per state draws the state-scaled
        busy watts; the rest of the worker's *live* horizon
        (``min(makespan, death time)``) draws the idle state's scaled
        idle watts. Joules are summed per worker, then per architecture
        — additivity across workers is exact by construction and audited
        by the checker's ``energy`` family.
        """
        model = self.model
        idle_scale = model.idle_scale
        state_order = [s.name for s in model.states]
        by_arch: dict[str, dict[str, float]] = {}
        by_worker: list[WorkerEnergy] = []
        total_j = 0.0
        busy_j = 0.0
        for arch in self.platform.archs:
            profile = model.power.arch_power(arch)
            arch_busy_us = 0.0
            arch_idle_us = 0.0
            arch_j = 0.0
            for w in self.platform.workers_of_arch(arch):
                per_state = self.busy_us_by_state[w.wid]
                horizon = min(makespan, death_time.get(w.wid, makespan))
                busy_us = 0.0
                busy_wus = 0.0  # watt-microseconds
                for name in state_order:
                    us = per_state.get(name)
                    if us is None:
                        continue
                    busy_us += us
                    busy_wus += us * profile.busy_watts * model.state(name).busy_scale
                idle_us = max(0.0, horizon - busy_us)
                joules = (
                    busy_wus + idle_us * profile.idle_watts * idle_scale
                ) * 1e-6
                by_worker.append(WorkerEnergy(
                    wid=w.wid,
                    arch=arch,
                    busy_us_by_state=dict(per_state),
                    busy_us=busy_us,
                    idle_us=idle_us,
                    horizon_us=horizon,
                    joules=joules,
                ))
                arch_busy_us += busy_us
                arch_idle_us += idle_us
                arch_j += joules
                total_j += joules
                busy_j += busy_wus * 1e-6
            by_arch[arch] = {
                "busy_us": arch_busy_us,
                "idle_us": arch_idle_us,
                "joules": arch_j,
            }
        return EnergyReport(
            total_j=total_j,
            busy_j=busy_j,
            idle_j=total_j - busy_j,
            by_arch=by_arch,
            by_worker=tuple(sorted(by_worker, key=lambda we: we.wid)),
            n_throttled=self.n_throttled,
            throttle_delay_us=self.throttle_delay_us,
        )

    def stats(self) -> dict[str, float]:
        """Counters for :class:`~repro.runtime.engine.SimResult.rt_stats`."""
        return {
            "power_n_admissions": float(self.n_admissions),
            "power_n_throttled": float(self.n_throttled),
            "power_throttle_delay_us": self.throttle_delay_us,
            "power_busy_us": self.busy_us_total,
        }
