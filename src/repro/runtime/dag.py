"""DAG utilities: validation, topological order, critical path, levels.

These operate on :class:`~repro.runtime.task.Task` objects linked through
their ``preds``/``succs`` lists (as produced by the STF front-end) and are
shared by schedulers, expert-priority generators and the analysis layer.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Sequence

from repro.runtime.task import Task
from repro.utils.validation import ValidationError

CostFn = Callable[[Task], float]


def topological_order(tasks: Sequence[Task]) -> list[Task]:
    """Kahn topological order; raises :class:`ValidationError` on cycles."""
    indeg = {t.tid: len(t.preds) for t in tasks}
    queue: deque[Task] = deque(t for t in tasks if indeg[t.tid] == 0)
    order: list[Task] = []
    while queue:
        task = queue.popleft()
        order.append(task)
        for succ in task.succs:
            indeg[succ.tid] -= 1
            if indeg[succ.tid] == 0:
                queue.append(succ)
    if len(order) != len(tasks):
        raise ValidationError(
            f"task graph has a cycle ({len(tasks) - len(order)} tasks unreachable)"
        )
    return order


def validate_dag(tasks: Sequence[Task]) -> None:
    """Check structural consistency of the DAG.

    Verifies that predecessor/successor lists mirror each other, that there
    are no self-loops or duplicate edges, and that the graph is acyclic.
    """
    by_id = {t.tid: t for t in tasks}
    if len(by_id) != len(tasks):
        raise ValidationError("duplicate task ids in graph")
    for task in tasks:
        seen: set[int] = set()
        for pred in task.preds:
            if pred.tid == task.tid:
                raise ValidationError(f"{task.name} depends on itself")
            if pred.tid in seen:
                raise ValidationError(f"duplicate edge {pred.name} -> {task.name}")
            seen.add(pred.tid)
            if pred.tid not in by_id:
                raise ValidationError(f"{task.name} has foreign predecessor {pred.name}")
            if task not in pred.succs:
                raise ValidationError(
                    f"edge {pred.name} -> {task.name} missing from successor list"
                )
        for succ in task.succs:
            if task not in succ.preds:
                raise ValidationError(
                    f"edge {task.name} -> {succ.name} missing from predecessor list"
                )
    topological_order(tasks)


def bottom_levels(tasks: Sequence[Task], cost: CostFn) -> dict[int, float]:
    """Bottom level of every task: longest cost-weighted path to a sink.

    ``bl(t) = cost(t) + max(bl(s) for s in succs)`` — the classic HEFT
    upward rank with zero communication. Used both as the "expert"
    priority oracle for Dmdas on dense kernels and by the analysis layer.
    """
    levels: dict[int, float] = {}
    for task in reversed(topological_order(tasks)):
        best_succ = max((levels[s.tid] for s in task.succs), default=0.0)
        levels[task.tid] = cost(task) + best_succ
    return levels


def top_levels(tasks: Sequence[Task], cost: CostFn) -> dict[int, float]:
    """Top level: longest cost-weighted path from a source to (excl.) ``t``."""
    levels: dict[int, float] = {}
    for task in topological_order(tasks):
        best_pred = max(
            (levels[p.tid] + cost(p) for p in task.preds),
            default=0.0,
        )
        levels[task.tid] = best_pred
    return levels


def critical_path_length(tasks: Sequence[Task], cost: CostFn) -> float:
    """Length of the critical path under ``cost`` (a makespan lower bound
    with unbounded resources and free communication)."""
    if not tasks:
        return 0.0
    levels = bottom_levels(tasks, cost)
    return max(levels[t.tid] for t in tasks if not t.preds)


def critical_path_tasks(tasks: Sequence[Task], cost: CostFn) -> list[Task]:
    """One maximal-cost source-to-sink chain realizing the critical path."""
    if not tasks:
        return []
    levels = bottom_levels(tasks, cost)
    sources = [t for t in tasks if not t.preds]
    current = max(sources, key=lambda t: levels[t.tid])
    chain = [current]
    while current.succs:
        current = max(current.succs, key=lambda t: levels[t.tid])
        chain.append(current)
    return chain


def task_type_histogram(tasks: Iterable[Task]) -> dict[str, int]:
    """Count of tasks per type name."""
    hist: dict[str, int] = {}
    for task in tasks:
        hist[task.type_name] = hist.get(task.type_name, 0) + 1
    return hist


def work_per_type(tasks: Iterable[Task]) -> dict[str, float]:
    """Total flops per task type."""
    work: dict[str, float] = {}
    for task in tasks:
        work[task.type_name] = work.get(task.type_name, 0.0) + task.flops
    return work


def max_width(tasks: Sequence[Task]) -> int:
    """Maximum antichain width estimate: peak ready-set size under an
    unbounded-resource, unit-time level-by-level execution.

    This is not the exact maximum antichain (NP-hard in general to relate
    to scheduling), but the standard level-width proxy used to reason
    about available parallelism.
    """
    if not tasks:
        return 0
    depth: dict[int, int] = {}
    for task in topological_order(tasks):
        depth[task.tid] = 1 + max((depth[p.tid] for p in task.preds), default=0)
    width: dict[int, int] = {}
    for task in tasks:
        width[depth[task.tid]] = width.get(depth[task.tid], 0) + 1
    return max(width.values())
