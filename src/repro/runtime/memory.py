"""Memory nodes, interconnect links and the data-transfer engine.

The transfer engine models each link as a FIFO pipe with latency and
bandwidth: concurrent transfers on the same link serialize (PCIe
contention), transfers on different links proceed independently.
Replicas follow MSI-style coherence: fetching a handle for reading adds a
replica, a task writing a handle invalidates every other replica at task
completion.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.obs.events import TransferEvent
from repro.runtime.data import DataHandle
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.bus import Observability


class MemoryNode:
    """A physical memory pool (host RAM or one GPU's device memory).

    ``capacity`` (bytes) bounds the replicas the node can host; ``None``
    means unbounded (host RAM). When a fetch would overflow a bounded
    node, the transfer engine evicts least-recently-used replicas that
    are safe to drop — the mechanism behind the paper's observation that
    Dmdas's prefetching "conflicts with memory eviction" on large LU
    runs (Section VI-A).
    """

    __slots__ = ("mid", "name", "kind", "arch", "capacity")

    def __init__(
        self,
        mid: int,
        name: str,
        kind: str,
        arch: str,
        capacity: int | None = None,
    ) -> None:
        if kind not in ("ram", "gpu"):
            raise ValidationError(f"memory node kind must be 'ram' or 'gpu', got {kind!r}")
        if capacity is not None and capacity <= 0:
            raise ValidationError(f"capacity must be > 0 or None, got {capacity}")
        self.mid = mid
        self.name = name
        self.kind = kind
        # Architecture of the processing units computing from this node.
        self.arch = arch
        self.capacity = capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryNode {self.name} ({self.kind}, {self.arch})>"


class Link:
    """A directed interconnect link between two memory nodes.

    ``bandwidth`` is in bytes per microsecond (1 GB/s == 1000 B/us);
    ``latency`` in microseconds.

    Two traffic classes, mirroring StarPU's prioritized data requests:
    **demand** fetches (a worker needs the data to start a task) queue
    behind other demand fetches and behind the prefetch currently *on
    the wire*, but jump the queued prefetch backlog; **prefetch**
    traffic queues behind everything. This keeps speculative push-time
    prefetches (the dm family issues thousands) from
    head-of-line-blocking the fetch a worker is actually stalled on,
    without letting the two classes transmit simultaneously — a single
    physical wire never serves 2x its bandwidth.
    """

    __slots__ = (
        "src",
        "dst",
        "bandwidth",
        "latency",
        "busy_until",
        "demand_busy_until",
        "bytes_moved",
        "n_transfers",
        "degradations",
        "_prefetch_spans",
    )

    def __init__(self, src: int, dst: int, bandwidth: float, latency: float) -> None:
        if bandwidth <= 0:
            raise ValidationError(f"link bandwidth must be > 0, got {bandwidth}")
        if latency < 0:
            raise ValidationError(f"link latency must be >= 0, got {latency}")
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth
        self.latency = latency
        self.busy_until = 0.0
        self.demand_busy_until = 0.0
        self.bytes_moved = 0
        self.n_transfers = 0
        # Fault-injected ``(start, end, factor)`` windows multiplying the
        # wire time of transfers that start inside them (installed per
        # run by the engine from a FaultModel; cleared on reset).
        self.degradations: tuple[tuple[float, float, float], ...] = ()
        # Reserved prefetch wire intervals ``(start, end)`` in start
        # order, pruned as simulation time passes; a demand reservation
        # consults them to wait out the prefetch already transmitting.
        self._prefetch_spans: deque[tuple[float, float]] = deque()

    def cost_factor(self, now: float) -> float:
        """Degradation multiplier in effect at time ``now``."""
        for start, end, factor in self.degradations:
            if start <= now < end:
                return factor
        return 1.0

    def duration(self, nbytes: int, now: float | None = None) -> float:
        """Wire time for ``nbytes`` ignoring queueing.

        With ``now`` given, any degradation window covering the start of
        the transfer multiplies the wire time.
        """
        base = self.latency + nbytes / self.bandwidth
        if now is not None and self.degradations:
            base *= self.cost_factor(now)
        return base

    def prune_prefetch_spans(self, now: float) -> None:
        """Forget prefetch wire intervals that finished before ``now``.

        Called by the transfer engine with the *global* simulation time
        (never a projected future time), so a span is only dropped once
        no later query can fall inside it.
        """
        spans = self._prefetch_spans
        while spans and spans[0][1] <= now:
            spans.popleft()

    def _demand_start(self, now: float) -> float:
        """Earliest start of a demand transfer arriving at ``now``.

        Waits behind earlier demand traffic, then behind the prefetch
        currently occupying the wire (a transfer in flight cannot be
        preempted) — but jumps prefetches that are merely queued.
        """
        start = max(now, self.demand_busy_until)
        for span_start, span_end in self._prefetch_spans:
            if span_start > now:
                break  # queued, not yet transmitting: the demand jumps it
            if now < span_end:
                # On the wire at the demand's arrival: wait it out.
                start = max(start, span_end)
                break
        return start

    def reserve(self, now: float, nbytes: int, prefetch: bool) -> float:
        """Queue one transfer; returns its completion time."""
        if prefetch:
            start = max(now, self.busy_until)
            end = start + self.duration(nbytes, start)
            self.busy_until = end
            self._prefetch_spans.append((start, end))
        else:
            start = self._demand_start(now)
            end = start + self.duration(nbytes, start)
            self.demand_busy_until = end
            self.busy_until = max(self.busy_until, end)
        self.bytes_moved += nbytes
        self.n_transfers += 1
        return end

    def queue_estimate(self, now: float, nbytes: int, prefetch: bool) -> float:
        """Completion estimate without reserving."""
        start = max(now, self.busy_until) if prefetch else self._demand_start(now)
        return start + self.duration(nbytes, start)

    def reset_runtime_state(self) -> None:
        """Clear the FIFO clocks and counters for a fresh simulation."""
        self.busy_until = 0.0
        self.demand_busy_until = 0.0
        self.bytes_moved = 0
        self.n_transfers = 0
        self.degradations = ()
        self._prefetch_spans.clear()


class TransferEngine:
    """Schedules data movements between memory nodes.

    The engine is deliberately simple — single-hop routing with a
    RAM-relay fallback for GPU-to-GPU when no peer link exists — but it
    captures what the paper's schedulers are sensitive to: transfer cost
    proportional to data size, per-link contention, and replica reuse
    (a handle already valid on the node costs nothing).
    """

    def __init__(self, nodes: list[MemoryNode], links: list[Link]) -> None:
        self.nodes = nodes
        self._links: dict[tuple[int, int], Link] = {}
        for link in links:
            key = (link.src, link.dst)
            if key in self._links:
                raise ValidationError(f"duplicate link {key}")
            self._links[key] = link
        # Capacity bookkeeping: per bounded node, resident handles with
        # last-use times (LRU eviction order) and total resident bytes.
        self._resident: dict[int, dict[int, DataHandle]] = {
            n.mid: {} for n in nodes if n.capacity is not None
        }
        self._last_use: dict[int, dict[int, float]] = {
            n.mid: {} for n in nodes if n.capacity is not None
        }
        self._usage: dict[int, int] = {n.mid: 0 for n in nodes if n.capacity is not None}
        self._capacity: dict[int, int] = {
            n.mid: n.capacity for n in nodes if n.capacity is not None  # type: ignore[misc]
        }
        self.n_evictions = 0
        self.n_overcommits = 0
        #: Observability channel (bound per run by the engine; None = off).
        self.observer: "Observability | None" = None
        # Source node of the most recent committed fetch per (hid, dst):
        # the transfer-provenance record behind Trace.record_transfer.
        self._fetch_src: dict[tuple[int, int], int] = {}

    # -- introspection -----------------------------------------------------

    def link(self, src: int, dst: int) -> Link | None:
        """The direct link ``src -> dst`` if one exists."""
        return self._links.get((src, dst))

    def links(self) -> list[Link]:
        """All links (for statistics)."""
        return list(self._links.values())

    def total_bytes_moved(self) -> int:
        """Bytes moved across all links since the last reset."""
        return sum(link.bytes_moved for link in self._links.values())

    def fetch_source(self, hid: int, dst: int) -> int:
        """Source node that served the last committed fetch of ``hid``
        toward ``dst`` (``-1`` when no transfer was ever committed, e.g.
        the replica was already resident)."""
        return self._fetch_src.get((hid, dst), -1)

    def reset_runtime_state(self) -> None:
        """Reset all link clocks, counters and residency tracking."""
        for link in self._links.values():
            link.reset_runtime_state()
        for mid in self._resident:
            self._resident[mid].clear()
            self._last_use[mid].clear()
            self._usage[mid] = 0
        self.n_evictions = 0
        self.n_overcommits = 0
        self._fetch_src.clear()

    # -- capacity / LRU residency ------------------------------------------

    def usage(self, node: int) -> int:
        """Resident bytes on a bounded node (0 for unbounded nodes)."""
        return self._usage.get(node, 0)

    def touch(self, handle: DataHandle, node: int, now: float) -> None:
        """Record a use of ``handle`` on ``node`` (LRU recency)."""
        if node in self._last_use and handle.hid in self._resident[node]:
            self._last_use[node][handle.hid] = now

    @staticmethod
    def pin(handle: DataHandle, node: int) -> None:
        """Protect a replica from eviction while a task uses it."""
        handle._pins[node] = handle._pins.get(node, 0) + 1

    @staticmethod
    def unpin(handle: DataHandle, node: int) -> None:
        """Release a pin taken with :meth:`pin`."""
        count = handle._pins.get(node, 0)
        if count <= 1:
            handle._pins.pop(node, None)
        else:
            handle._pins[node] = count - 1

    def _account_insert(self, handle: DataHandle, node: int, now: float) -> None:
        if node not in self._resident:
            return
        if handle.hid not in self._resident[node]:
            self._make_room(node, handle.size, now)
            self._resident[node][handle.hid] = handle
            self._usage[node] += handle.size
        self._last_use[node][handle.hid] = now

    def _account_drop(self, handle: DataHandle, node: int) -> None:
        if node in self._resident and handle.hid in self._resident[node]:
            del self._resident[node][handle.hid]
            self._last_use[node].pop(handle.hid, None)
            self._usage[node] -= handle.size

    def _make_room(self, node: int, needed: int, now: float) -> None:
        """Evict LRU replicas until ``needed`` bytes fit.

        Only replicas with another valid copy and no transfer in flight
        are evictable (dropping them loses nothing). If eviction cannot
        free enough, the node overcommits — counted, never deadlocked.
        """
        capacity = self._capacity[node]
        if self._usage[node] + needed <= capacity:
            return
        victims = sorted(self._last_use[node].items(), key=lambda kv: kv[1])
        for hid, _ in victims:
            if self._usage[node] + needed <= capacity:
                return
            handle = self._resident[node][hid]
            if handle._pins.get(node, 0) > 0:
                continue  # a running task is using this replica
            in_flight = handle._in_flight.get(node)
            if in_flight is not None and in_flight > now:
                continue
            if len(handle.valid_nodes) <= 1:
                continue  # sole copy: dropping would lose data
            handle.valid_nodes.discard(node)
            handle._in_flight.pop(node, None)
            self._account_drop(handle, node)
            self.n_evictions += 1
        if self._usage[node] + needed > capacity:
            self.n_overcommits += 1

    # -- cost estimation (no side effects) ----------------------------------

    def estimate_fetch(
        self, handle: DataHandle, dst: int, now: float = 0.0, prefetch: bool = False
    ) -> float:
        """Estimated extra time to make ``handle`` valid on ``dst``.

        Pure estimate used by schedulers (e.g. Dmda's data-aware term):
        accounts for queueing on the cheapest route but does not reserve
        link time.
        """
        if handle.size == 0:
            return 0.0
        in_flight = handle._in_flight.get(dst)
        if handle.is_valid_on(dst):
            if in_flight is not None:
                return max(0.0, in_flight - now)
            return 0.0
        if in_flight is not None:
            return max(0.0, in_flight - now)
        best = None
        for src in handle.valid_nodes:
            route = self._route_links(src, dst)
            if route is None:
                continue
            ready = now
            for link in route:
                ready = link.queue_estimate(ready, handle.size, prefetch)
            if best is None or ready < best:
                best = ready
        if best is None:
            raise ValidationError(
                f"no route to bring {handle.label} to node {dst} "
                f"from {sorted(handle.valid_nodes)}"
            )
        return max(0.0, best - now)

    def _relay_node(self, src: int, dst: int) -> int | None:
        """A RAM node connected to both endpoints, if any."""
        for node in self.nodes:
            if node.kind != "ram":
                continue
            if (src, node.mid) in self._links and (node.mid, dst) in self._links:
                return node.mid
        return None

    # -- committed transfers -------------------------------------------------

    def fetch(
        self, handle: DataHandle, dst: int, now: float, prefetch: bool = False
    ) -> float:
        """Make ``handle`` valid on ``dst``; returns arrival time.

        Reserves link time in the requested traffic class. If a transfer
        of the same handle to the same node is already in flight, its
        completion time is returned and no new traffic is generated
        (replica sharing between readers). The replica set is updated
        immediately — the simulator's event ordering guarantees the
        consumer waits until the returned time.
        """
        if handle.size == 0:
            handle.valid_nodes.add(dst)
            return now
        if dst in handle.valid_nodes:
            if not handle._in_flight:
                # Settled resident replica — the overwhelmingly common
                # case on reread-heavy streams: recency touch, no route
                # search, no traffic.
                last_use = self._last_use.get(dst)
                if last_use is not None and handle.hid in self._resident[dst]:
                    last_use[handle.hid] = now
                return now
            self.touch(handle, dst, now)
            # The replica may still be in flight (registered eagerly by an
            # earlier fetch); a second consumer shares that transfer.
            in_flight = handle._in_flight.get(dst)
            if in_flight is not None and in_flight > now:
                if prefetch:
                    return in_flight
                # Demand request against a queued prefetch: upgrade its
                # priority (StarPU promotes the pending data request) if
                # the demand class would deliver sooner.
                upgraded = self._demand_upgrade(handle, dst, now, in_flight)
                if upgraded is not None:
                    handle._in_flight[dst] = upgraded
                    return upgraded
                return in_flight
            return now

        best_arrival: float | None = None
        best_route: tuple[Link, ...] | None = None
        for src in handle.valid_nodes:
            route = self._route_links(src, dst)
            if route is None:
                continue
            arrival = now
            for link in route:
                arrival = link.queue_estimate(arrival, handle.size, prefetch)
            if best_arrival is None or arrival < best_arrival:
                best_arrival = arrival
                best_route = route
        if best_route is None or best_arrival is None:
            raise ValidationError(
                f"no route to bring {handle.label} to node {dst} "
                f"from {sorted(handle.valid_nodes)}"
            )

        clock = now
        obs = self.observer
        for link in best_route:
            link.prune_prefetch_spans(now)
            if prefetch:
                begin = max(clock, link.busy_until)
            else:
                begin = link._demand_start(clock)
            clock = link.reserve(clock, handle.size, prefetch)
            if obs is not None:
                obs.emit(
                    TransferEvent(
                        now, handle.hid, link.src, link.dst, handle.size,
                        begin, clock, prefetch,
                    )
                )
        if best_route:
            self._fetch_src[(handle.hid, dst)] = best_route[0].src
        handle.valid_nodes.add(dst)
        handle._in_flight[dst] = clock
        self._account_insert(handle, dst, now)
        return clock

    def wire_estimate(self, handle: DataHandle, dst: int) -> float:
        """Queue-free wire time of bringing ``handle`` to ``dst`` (0 when
        already valid and arrived); used to combine per-handle estimates
        without double-counting the shared queue wait."""
        if handle.size == 0 or (
            handle.is_valid_on(dst) and handle._in_flight.get(dst) is None
        ):
            return 0.0
        best: float | None = None
        for src in handle.valid_nodes:
            route = self._route_links(src, dst)
            if route is None or not route:
                continue
            wire = sum(link.duration(handle.size) for link in route)
            if best is None or wire < best:
                best = wire
        return best if best is not None else 0.0

    def _demand_upgrade(
        self, handle: DataHandle, dst: int, now: float, deadline: float
    ) -> float | None:
        """Re-issue an in-flight prefetch on the demand class.

        Returns the new (strictly earlier than ``deadline``) arrival time,
        reserving demand link capacity — or ``None`` when no source could
        beat the pending transfer (no side effects then).
        """
        best_arrival: float | None = None
        best_route: tuple[Link, ...] | None = None
        for src in handle.valid_nodes:
            if src == dst:
                continue
            # Sources that are themselves still in flight cannot serve.
            src_flight = handle._in_flight.get(src)
            if src_flight is not None and src_flight > now:
                continue
            route = self._route_links(src, dst)
            if not route:
                continue
            arrival = now
            for link in route:
                arrival = link.queue_estimate(arrival, handle.size, prefetch=False)
            if best_arrival is None or arrival < best_arrival:
                best_arrival = arrival
                best_route = route
        if best_route is None or best_arrival is None or best_arrival >= deadline:
            return None
        clock = now
        obs = self.observer
        for link in best_route:
            link.prune_prefetch_spans(now)
            begin = link._demand_start(clock)
            clock = link.reserve(clock, handle.size, prefetch=False)
            if obs is not None:
                obs.emit(
                    TransferEvent(
                        now, handle.hid, link.src, link.dst, handle.size,
                        begin, clock, False,
                    )
                )
        if best_route:
            self._fetch_src[(handle.hid, dst)] = best_route[0].src
        return clock

    def _route_links(self, src: int, dst: int) -> tuple[Link, ...] | None:
        if src == dst:
            return ()
        direct = self._links.get((src, dst))
        if direct is not None:
            return (direct,)
        relay = self._relay_node(src, dst)
        if relay is None:
            return None
        return (self._links[(src, relay)], self._links[(relay, dst)])

    # -- coherence ------------------------------------------------------------

    def drop_replica(self, handle: DataHandle, node: int) -> None:
        """Destroy the replica of ``handle`` on ``node`` unconditionally.

        Used when a memory node is lost to a fail-stop worker failure:
        pins and in-flight transfers toward the node are void because no
        consumer on it survives. The caller is responsible for checking
        that another valid copy exists (or raising ``DataLossError``).
        """
        handle.valid_nodes.discard(node)
        handle._in_flight.pop(node, None)
        handle._pins.pop(node, None)
        self._account_drop(handle, node)

    def invalidate_others(self, handle: DataHandle, keep: int, now: float = 0.0) -> None:
        """After a write on ``keep``, drop every other replica."""
        valid = handle.valid_nodes
        if len(valid) == 1 and keep in valid and not handle._in_flight:
            # Sole settled replica already on the writer's node: nothing
            # to drop, just refresh residency/recency accounting.
            self._account_insert(handle, keep, now)
            return
        for node in valid:
            if node != keep:
                self._account_drop(handle, node)
        handle.valid_nodes = {keep}
        handle._in_flight = {
            node: t for node, t in handle._in_flight.items() if node == keep
        }
        self._account_insert(handle, keep, now)
