"""Fault injection: the failure model the resilient engine runs against.

Production runtimes like StarPU face three broad failure classes that a
scheduler study must survive:

* **transient task failures** — a kernel crashes or produces a result
  that fails its check (soft errors, ECC events, driver hiccups); the
  attempt is wasted but the worker survives and the task can be retried;
* **fail-stop worker failures** — a processing unit drops off (GPU
  falls off the bus, a core is fenced); its queued and running work must
  be recovered and, for a device memory, its replicas are gone;
* **link degradation** — an interconnect is throttled for a while
  (thermal events, congestion from co-located jobs), multiplying
  transfer costs during the window.

:class:`FaultModel` describes all three declaratively and samples them
from its *own* seeded RNG stream, so (a) a run with a fault model is
deterministic given the seed, and (b) a run *without* one is bit-identical
to the fault-free engine — the engine's execution-noise RNG is never
touched by fault sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_non_negative,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.platform_config import Platform
    from repro.runtime.task import Task
    from repro.runtime.worker import Worker


@dataclass(frozen=True)
class LinkDegradation:
    """A window during which transfer costs are multiplied.

    ``src``/``dst`` restrict the window to one directed link; ``None``
    matches every link (a machine-wide interconnect brown-out).
    """

    start_us: float
    end_us: float
    factor: float
    src: int | None = None
    dst: int | None = None

    def __post_init__(self) -> None:
        check_non_negative("start_us", self.start_us)
        if self.end_us <= self.start_us:
            raise ValidationError(
                f"degradation window must have end > start, got "
                f"[{self.start_us}, {self.end_us}]"
            )
        if self.factor <= 0:
            raise ValidationError(f"degradation factor must be > 0, got {self.factor}")

    def matches(self, src: int, dst: int) -> bool:
        """Whether this window applies to the directed link src -> dst."""
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass
class FaultStats:
    """Fault bookkeeping attached to :class:`~repro.runtime.engine.SimResult`.

    ``wasted_exec_us`` is worker time burned on attempts that failed;
    ``lost_replica_bytes`` counts replicas destroyed on dead memory nodes
    (they must be re-fetched from surviving copies, or the run aborts
    with :class:`~repro.utils.validation.DataLossError`).
    """

    task_failures: int = 0
    retries: int = 0
    worker_failures: int = 0
    tasks_recovered: int = 0
    lost_replica_bytes: int = 0
    wasted_exec_us: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat mapping for reporting tables."""
        return {
            "task_failures": float(self.task_failures),
            "retries": float(self.retries),
            "worker_failures": float(self.worker_failures),
            "tasks_recovered": float(self.tasks_recovered),
            "lost_replica_bytes": float(self.lost_replica_bytes),
            "wasted_exec_us": float(self.wasted_exec_us),
        }


def parse_kill_spec(spec: str) -> tuple[int, float]:
    """Parse a ``WID@TIME`` CLI kill spec into ``(wid, time_us)``."""
    try:
        wid_part, time_part = spec.split("@", 1)
        wid = int(wid_part)
        time_us = float(time_part)
    except ValueError as exc:
        raise ValidationError(
            f"kill spec must look like WID@TIME_US (e.g. 2@15000), got {spec!r}"
        ) from exc
    if wid < 0:
        raise ValidationError(f"kill spec worker id must be >= 0, got {wid}")
    check_non_negative("kill spec time", time_us)
    return wid, time_us


def parse_fault_rates(spec: str) -> float | dict[str, float]:
    """Parse a CLI failure-rate spec.

    Either a bare probability (``"0.05"``, applied to every architecture)
    or comma-separated per-arch rates (``"cuda=0.1,cpu=0.01"``).
    """
    try:
        return check_in_range("fault rate", float(spec), 0.0, 1.0)
    except ValueError:
        pass
    rates: dict[str, float] = {}
    for part in spec.split(","):
        arch, _, value = part.partition("=")
        arch = arch.strip()
        if not arch or not value:
            raise ValidationError(
                f"fault-rate spec must be a probability or arch=p[,arch=p], got {spec!r}"
            )
        rates[arch] = check_in_range(f"fault rate for {arch}", float(value), 0.0, 1.0)
    return rates


class FaultModel:
    """Declarative, seeded description of the faults to inject.

    Parameters
    ----------
    task_failure_rate:
        Probability that one execution attempt fails, either a single
        probability for every architecture or a per-arch mapping
        (architectures absent from the mapping never fail).
    worker_kills:
        Scripted fail-stop failures: ``(wid, time_us)`` pairs (or a
        mapping ``wid -> time_us``). Each worker dies at most once.
    worker_mtbf_us:
        Mean time between fail-stop failures per worker; when set, each
        worker additionally draws an exponential death time at run start.
        ``None`` (default) disables sampled deaths.
    link_degradations:
        :class:`LinkDegradation` windows applied to matching links.
    max_retries:
        Retry cap per task; exceeding it raises
        :class:`~repro.utils.validation.RetryExhaustedError`.
    retry_backoff_us:
        Base of the exponential virtual-time backoff: the n-th retry of a
        task is re-enqueued ``retry_backoff_us * 2**(n-1)`` after failing.
    seed:
        Seed of the model's private RNG stream.
    """

    def __init__(
        self,
        *,
        task_failure_rate: float | Mapping[str, float] = 0.0,
        worker_kills: Mapping[int, float] | Iterable[tuple[int, float]] = (),
        worker_mtbf_us: float | None = None,
        link_degradations: Iterable[LinkDegradation] = (),
        max_retries: int = 3,
        retry_backoff_us: float = 50.0,
        seed: int = 0,
    ) -> None:
        if isinstance(task_failure_rate, Mapping):
            self.task_failure_rate: float | dict[str, float] = {
                arch: check_in_range(f"task_failure_rate[{arch}]", rate, 0.0, 1.0)
                for arch, rate in task_failure_rate.items()
            }
        else:
            self.task_failure_rate = check_in_range(
                "task_failure_rate", task_failure_rate, 0.0, 1.0
            )
        kills = dict(worker_kills) if isinstance(worker_kills, Mapping) else {}
        if not isinstance(worker_kills, Mapping):
            for wid, time_us in worker_kills:
                if wid in kills:
                    raise ValidationError(f"worker {wid} killed twice")
                kills[wid] = time_us
        for wid, time_us in kills.items():
            if wid < 0:
                raise ValidationError(f"worker id must be >= 0, got {wid}")
            check_non_negative(f"kill time for worker {wid}", time_us)
        self.worker_kills: dict[int, float] = kills
        if worker_mtbf_us is not None and worker_mtbf_us <= 0:
            raise ValidationError(f"worker_mtbf_us must be > 0, got {worker_mtbf_us}")
        self.worker_mtbf_us = worker_mtbf_us
        self.link_degradations: tuple[LinkDegradation, ...] = tuple(link_degradations)
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = int(max_retries)
        self.retry_backoff_us = check_non_negative("retry_backoff_us", retry_backoff_us)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    # -- per-run lifecycle -------------------------------------------------

    def reset(self) -> None:
        """Re-seed the private stream so every run replays identically."""
        self._rng = np.random.default_rng(self.seed)

    def failure_schedule(self, platform: "Platform") -> list[tuple[float, int]]:
        """Fail-stop events for one run: sorted ``(time_us, wid)`` pairs.

        Scripted kills are taken as-is (ids beyond the platform are
        rejected); MTBF-sampled deaths draw one exponential per worker
        from the model's stream, in worker-id order, so the schedule is a
        pure function of the seed.
        """
        n = len(platform.workers)
        for wid in self.worker_kills:
            if wid >= n:
                raise ValidationError(
                    f"cannot kill worker {wid}: platform {platform.name!r} "
                    f"has workers 0..{n - 1}"
                )
        schedule = dict(self.worker_kills)
        if self.worker_mtbf_us is not None:
            for worker in platform.workers:
                death = float(self._rng.exponential(self.worker_mtbf_us))
                prior = schedule.get(worker.wid)
                if prior is None or death < prior:
                    schedule[worker.wid] = death
        return sorted((t, wid) for wid, t in schedule.items())

    # -- transient failures --------------------------------------------------

    def arch_failure_rate(self, arch: str) -> float:
        """Per-attempt failure probability on architecture ``arch``."""
        if isinstance(self.task_failure_rate, dict):
            return self.task_failure_rate.get(arch, 0.0)
        return self.task_failure_rate

    def attempt_failure(self, task: "Task", worker: "Worker") -> float | None:
        """Sample one execution attempt of ``task`` on ``worker``.

        Returns ``None`` for success, or the fraction of the execution
        (in ``(0, 1]``) after which the failure manifests. No RNG draw
        happens when the architecture's rate is zero, so a zero-rate
        model injects exactly nothing.
        """
        rate = self.arch_failure_rate(worker.arch)
        if rate <= 0.0:
            return None
        if self._rng.random() >= rate:
            return None
        # Failures rarely manifest instantly; burn at least 10% of the
        # attempt so wasted-time accounting is never degenerate.
        return 0.1 + 0.9 * float(self._rng.random())

    def backoff_us(self, n_failures: int) -> float:
        """Virtual-time backoff before the ``n_failures``-th retry."""
        return self.retry_backoff_us * (2.0 ** max(0, n_failures - 1))

    # -- link degradation ------------------------------------------------------

    def degradation_windows(self, src: int, dst: int) -> tuple[tuple[float, float, float], ...]:
        """The ``(start, end, factor)`` windows applying to one link."""
        return tuple(
            (d.start_us, d.end_us, d.factor)
            for d in self.link_degradations
            if d.matches(src, dst)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultModel rate={self.task_failure_rate!r} "
            f"kills={self.worker_kills!r} mtbf={self.worker_mtbf_us!r} "
            f"degradations={len(self.link_degradations)} seed={self.seed}>"
        )


__all__ = [
    "FaultModel",
    "FaultStats",
    "LinkDegradation",
    "parse_fault_rates",
    "parse_kill_spec",
]
