"""Discrete-event simulation engine driving a scheduler over a program.

The engine reproduces the two StarPU hook points the paper's Section IV
describes:

* **PUSH** — when a task's last dependency completes, the engine calls
  ``scheduler.push(task)``;
* **POP** — when a worker is idle (initially, after each completion, and
  whenever new work appears), the engine calls ``scheduler.pop(worker)``.

Workers are **pipelined** like StarPU's: while executing a task, a worker
pops and stages its next task so the staged task's data transfers overlap
the current execution (StarPU's worker lookahead / prefetch-on-pop). The
pipeline can be disabled to study the unoverlapped behaviour.

Everything else (data transfers with per-link contention, MSI replica
management, history feedback into the performance model, trace capture)
happens inside the engine so every scheduler is compared under identical
runtime behaviour.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.bus import Observability
from repro.obs.events import (
    BatchScheduled,
    JobAdmitted,
    JobDelayed,
    JobDone,
    JobEvicted,
    JobRejected,
    JobSubmit,
    PowerCapThrottled,
    PriorityInversion,
    RecordLevel,
    TaskEnd,
    TaskFault,
    TaskPop,
    TaskReady,
    TaskRetryScheduled,
    TaskStage,
    TaskStart,
    TaskSubmit,
    WorkerDeath,
)
from repro.obs.metrics import MetricsSnapshot
from repro.runtime.events import (
    BATCH_FLUSH,
    JOB_ARRIVAL,
    TASK_COMPLETION,
    TASK_FAILURE,
    TASK_RETRY,
    WORKER_FAILURE,
    WORKER_REQUEST,
)
from repro.runtime.faults import FaultModel, FaultStats
from repro.runtime.overhead import OverheadLedger, SchedOverheadModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.platform_config import Platform
from repro.runtime.power import EnergyReport, PowerLedger, PowerStateModel
from repro.runtime.resources import ResourceLedger, ResourceProtocol
from repro.runtime.stf import Program
from repro.runtime.task import Task, TaskState
from repro.runtime.trace import Trace
from repro.runtime.worker import Worker
from repro.utils.rng import make_rng
from repro.utils.validation import (
    DataLossError,
    DeadlockError,
    RetryExhaustedError,
    SchedulingError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.control.plane import ControlPlane
    from repro.runtime.perfmodel import PerfModel
    from repro.schedulers.base import Scheduler


class SchedContext:
    """The scheduler's window into the runtime.

    Exposes exactly what StarPU exposes to its scheduling policies:
    execution-time estimates δ(t, a), worker/memory topology, current
    data residency, transfer-cost estimates and a prefetch request hook.
    """

    def __init__(self, platform: Platform, perfmodel: "PerfModel") -> None:
        self.platform = platform
        self.perfmodel = perfmodel
        self.now = 0.0
        # Workers lost to injected fail-stop failures this run.
        self._dead_wids: set[int] = set()
        # Architectures that both exist on the platform and have workers.
        self.available_archs: tuple[str, ...] = tuple(
            a for a in platform.archs if platform.n_workers(a) > 0
        )

    def reset(self) -> None:
        """Per-run reset: clock, dead-worker set, available architectures."""
        self.now = 0.0
        self._dead_wids.clear()
        self.available_archs = tuple(
            a for a in self.platform.archs if self.platform.n_workers(a) > 0
        )

    # -- liveness ----------------------------------------------------------

    def is_alive(self, worker: Worker) -> bool:
        """Whether ``worker`` has not been lost to a fail-stop failure."""
        return worker.wid not in self._dead_wids

    def mark_worker_dead(self, worker: Worker) -> None:
        """Remove ``worker`` from every topology view (fail-stop failure)."""
        self._dead_wids.add(worker.wid)
        self.available_archs = tuple(
            a for a in self.platform.archs if len(self.workers_of_arch(a)) > 0
        )

    # -- estimates ----------------------------------------------------------

    def estimate(self, task: Task, arch: str) -> float:
        """δ(t, a): estimated execution time of ``task`` on ``arch``."""
        return self.perfmodel.estimate(task, arch)

    def exec_archs(self, task: Task) -> list[str]:
        """Available architectures with an implementation of ``task``."""
        return [a for a in self.available_archs if task.can_exec(a)]

    def can_exec(self, task: Task, arch: str) -> bool:
        """Whether ``task`` can run on ``arch`` on this platform."""
        return task.can_exec(arch) and arch in self.available_archs

    def best_arch(self, task: Task) -> str:
        """The architecture with the smallest δ(t, a) (cached per task)."""
        cached = task.sched.get("_best_arch")
        if cached is None:
            archs = self.exec_archs(task)
            if not archs:
                raise SchedulingError(f"{task.name} has no executable architecture")
            cached = min(archs, key=lambda a: self.estimate(task, a))
            task.sched["_best_arch"] = cached
        return cached

    def second_best_arch(self, task: Task) -> str | None:
        """The second-fastest architecture, or None if only one exists."""
        archs = self.exec_archs(task)
        if len(archs) < 2:
            return None
        best = self.best_arch(task)
        rest = [a for a in archs if a != best]
        return min(rest, key=lambda a: self.estimate(task, a))

    # -- data residency -------------------------------------------------------

    def transfer_estimate(self, task: Task, node: int) -> float:
        """Estimated time to stage ``task``'s missing inputs onto ``node``.

        Transfers to one node serialize on its inbound link, so the total
        is the largest single estimate (which includes the current queue
        wait once) plus the wire time of the remaining handles.
        """
        transfers = self.platform.transfers
        worst = 0.0
        wire_sum = 0.0
        worst_wire = 0.0
        for handle, mode in task.accesses:
            if mode.is_read and handle.size > 0:
                est = transfers.estimate_fetch(handle, node, self.now)
                if est <= 0.0:
                    continue
                wire = transfers.wire_estimate(handle, node)
                wire_sum += wire
                if est > worst:
                    worst = est
                    worst_wire = wire
        return worst + (wire_sum - worst_wire)

    def bytes_on_node(self, task: Task, node: int) -> int:
        """Bytes of ``task``'s data already valid on ``node``."""
        return sum(
            handle.size
            for handle, _mode in task.accesses
            if handle.is_valid_on(node)
        )

    def prefetch(self, task: Task, node: int) -> None:
        """Start staging ``task``'s read data onto ``node`` right now.

        Used by push-time-assignment schedulers (the dm family): data
        movement overlaps the wait in the worker's queue.
        """
        transfers = self.platform.transfers
        for handle, mode in task.accesses:
            if mode.is_read and handle.size > 0:
                transfers.fetch(handle, node, self.now, prefetch=True)

    # -- topology shortcuts -----------------------------------------------------

    @property
    def workers(self) -> list[Worker]:
        """All live workers of the platform."""
        if not self._dead_wids:
            return self.platform.workers
        return [w for w in self.platform.workers if w.wid not in self._dead_wids]

    def workers_of_arch(self, arch: str) -> list[Worker]:
        """Live workers of one architecture."""
        if not self._dead_wids:
            return self.platform.workers_of_arch(arch)
        return [
            w
            for w in self.platform.workers_of_arch(arch)
            if w.wid not in self._dead_wids
        ]

    def workers_of_node(self, node: int) -> list[Worker]:
        """Live workers computing from memory node ``node``."""
        if not self._dead_wids:
            return self.platform.workers_of_node(node)
        return [
            w
            for w in self.platform.workers_of_node(node)
            if w.wid not in self._dead_wids
        ]

    def n_workers(self, arch: str | None = None) -> int:
        """Live worker count, optionally per architecture."""
        if not self._dead_wids:
            return self.platform.n_workers(arch)
        if arch is None:
            return len(self.workers)
        return len(self.workers_of_arch(arch))


@dataclass
class SimResult:
    """Outcome of one simulated execution."""

    makespan: float
    n_tasks: int
    total_flops: float
    bytes_transferred: int
    exec_time_by_arch: dict[str, float]
    idle_frac_by_arch: dict[str, float]
    forced_pops: int
    scheduler_stats: dict[str, float] = field(default_factory=dict)
    trace: Trace | None = None
    #: Fault bookkeeping; ``None`` when the run had no fault model.
    faults: FaultStats | None = None
    #: Structured event stream; ``None`` unless ``record_level`` enabled it.
    events: tuple | None = None
    #: End-of-run metrics snapshot; ``None`` unless ``record_level`` enabled it.
    metrics: MetricsSnapshot | None = None
    #: Tasks cancelled by the control plane (shed/evicted jobs); 0 when
    #: no control plane was attached.
    n_cancelled: int = 0
    #: Batch-mode provenance (flush count, batched tasks, max/mean batch
    #: size); ``None`` on the per-event path.
    batch_stats: dict[str, float] | None = None
    #: Real-time bookkeeping (charged scheduler overhead counters,
    #: resource-grant/blocking/inversion counters); ``None`` unless an
    #: overhead model or resource protocol was attached.
    rt_stats: dict[str, float] | None = None
    #: Per-worker busy microseconds, indexed by dense worker id; always
    #: populated (energy accounting clamps each worker's idle draw to
    #: its live horizon rather than the whole makespan).
    busy_us_by_worker: tuple[float, ...] = ()
    #: Fail-stop death times per worker id; empty without worker faults.
    death_us_by_worker: dict[int, float] = field(default_factory=dict)
    #: Energy accounting; ``None`` unless a power model was attached.
    energy: EnergyReport | None = None

    @property
    def gflops(self) -> float:
        """Achieved GFlop/s over the whole run."""
        if self.makespan <= 0:
            return 0.0
        return self.total_flops / (self.makespan * 1e-6) / 1e9


class Simulator:
    """Runs a :class:`Program` on a :class:`Platform` under a scheduler.

    Parameters
    ----------
    platform:
        The machine model.
    scheduler:
        Any :class:`repro.schedulers.base.Scheduler`.
    perfmodel:
        Source of δ(t, a) estimates and actual execution times.
    seed:
        RNG seed for execution noise.
    record_trace:
        Capture a full :class:`Trace` (needed for Gantt / idle / critical
        path analyses; costs memory on large programs).
    pipeline:
        Enable StarPU-style worker lookahead: each worker stages its next
        task while executing, overlapping the staged task's transfers.
    submission_window:
        Maximum number of submitted-but-unfinished tasks, mirroring
        StarPU's task-window throttling of the STF main thread
        (``STARPU_LIMIT_MAX_SUBMITTED_TASKS``). ``None`` (default)
        submits the whole program ahead; small windows reveal the DAG
        progressively, shrinking every scheduler's lookahead.
    fault_model:
        Optional :class:`~repro.runtime.faults.FaultModel` injecting
        transient task failures, fail-stop worker failures and link
        degradation. ``None`` (default) runs the fault-free engine,
        bit-identical to the pre-resilience behaviour: the fault paths
        never sample and never touch the execution-noise RNG.
    record_level:
        :class:`~repro.obs.events.RecordLevel` (or its name) gating the
        observability subsystem: ``"off"`` (default) records nothing and
        keeps the simulation bit-identical to a build without the
        subsystem; ``"tasks"`` publishes lifecycle/transfer/fault events
        and metrics; ``"decisions"`` adds scheduler decision provenance.
        The bound :class:`~repro.obs.bus.Observability` instance is
        exposed as ``self.obs``; the captured stream and metrics
        snapshot land on :class:`SimResult`.
    check_invariants:
        Attach the :mod:`repro.check` validator, which re-verifies MSI
        coherence, link clocks, task conservation and the scheduler's
        own invariants after every event (raising
        :class:`~repro.utils.validation.InvariantError` on violation).
        ``None`` (default) defers to the ``REPRO_CHECK_INVARIANTS``
        environment variable; when off, the engine performs exactly one
        extra local-variable test per event and stays bit-identical.
    control_plane:
        Optional admission controller (:class:`repro.control.ControlPlane`).
        Requires a merged job-stream program: the reveal loop asks it to
        accept, delay, or shed each job at its release time, and evicts
        admitted best-effort jobs' unstarted tasks when it says so.
        ``None`` (default) keeps the uncontrolled fast path.
    batch_step:
        Batch-mode scheduling (Firmament-style): instead of one
        ``scheduler.push()`` per ready task, reveals buffer and are
        handed to the scheduler as one ``push_batch()`` at most
        ``batch_step`` microseconds after the first buffered reveal.
        ``None`` (default) keeps the exact per-event path. With
        ``batch_drain_on_idle`` (the default) the batch also drains the
        moment any worker asks for work, which keeps the run
        bit-identical to the per-event path for schedulers whose
        ``push`` is time-invariant (MultiPrio with stable estimates,
        eager, ws, multiqueue — not the dm family, which prefetches and
        snapshots ETAs at push time).
    batch_drain_on_idle:
        Adaptive drain trigger for batch mode: flush the pending batch
        before any worker pop, so no worker ever idles on buffered
        work. ``False`` gives pure step-boundary batching (workers may
        idle up to ``batch_step`` — the classic batch-scheduler
        trade-off).
    overhead:
        Optional :class:`~repro.runtime.overhead.SchedOverheadModel`
        charging every scheduling decision (push / pop / batch flush)
        to a virtual scheduler core in *simulated* time: pops delay the
        popped task until the decision is paid for, and decisions
        serialize on the core. ``None`` (default) keeps decisions free;
        an all-zero model is bit-identical to ``None``.
    resources:
        Optional :class:`~repro.runtime.resources.ResourceProtocol`
        arbitrating ``Task.resources`` locks: tasks sharing a resource
        never overlap, waits behind lower-priority holders emit
        :class:`~repro.obs.events.PriorityInversion` events, and
        ``mode="ceiling"`` adds priority-ceiling avoidance blocking.
        ``None`` (default) ignores resource names entirely.
    power:
        Optional :class:`~repro.runtime.power.PowerStateModel` attaching
        the power subsystem: executions run in DVFS power states (the
        fastest runnable state that fits under the worker's node
        power cap — downgrades and delayed starts emit
        :class:`~repro.obs.events.PowerCapThrottled`), a state's
        ``speed`` scales the sampled execution duration, and
        ``SimResult.energy`` carries the per-worker/per-arch joule
        accounting. ``None`` (default) keeps the engine power-blind; an
        uncapped model whose fastest state is full speed is
        bit-identical to ``None`` (the ``power.noop`` differential
        enforces this).
    """

    def __init__(
        self,
        platform: Platform,
        scheduler: "Scheduler",
        perfmodel: "PerfModel",
        *,
        seed: int | np.random.Generator | None = None,
        record_trace: bool = True,
        pipeline: bool = True,
        submission_window: int | None = None,
        fault_model: FaultModel | None = None,
        record_level: RecordLevel | str | int = RecordLevel.OFF,
        check_invariants: bool | None = None,
        control_plane: "ControlPlane | None" = None,
        batch_step: float | None = None,
        batch_drain_on_idle: bool = True,
        overhead: SchedOverheadModel | None = None,
        resources: ResourceProtocol | None = None,
        power: PowerStateModel | None = None,
    ) -> None:
        if submission_window is not None and submission_window < 1:
            raise SchedulingError(
                f"submission_window must be >= 1 or None, got {submission_window}"
            )
        if batch_step is not None and not batch_step > 0.0:
            raise SchedulingError(
                f"batch_step must be > 0 or None, got {batch_step}"
            )
        self.platform = platform
        self.scheduler = scheduler
        self.perfmodel = perfmodel
        self.rng = make_rng(seed)
        self.record_trace = record_trace
        self.pipeline = pipeline
        self.submission_window = submission_window
        self.fault_model = fault_model
        self.control_plane = control_plane
        self.batch_step = batch_step
        self.batch_drain_on_idle = batch_drain_on_idle
        self.overhead = overhead
        self.resources = resources
        self.power = power
        if check_invariants is None:
            check_invariants = os.environ.get(
                "REPRO_CHECK_INVARIANTS", ""
            ) not in ("", "0")
        self.check_invariants = bool(check_invariants)
        self.record_level = RecordLevel.parse(record_level)
        self.obs: Observability | None = (
            Observability(self.record_level)
            if self.record_level >= RecordLevel.TASKS
            else None
        )
        self.ctx = SchedContext(platform, perfmodel)

    # -- main loop ---------------------------------------------------------

    def run(self, program: Program) -> SimResult:
        """Simulate ``program`` to completion and return metrics."""
        program.reset_runtime_state()
        self.platform.reset_runtime_state()
        ctx = self.ctx
        ctx.reset()
        obs = self.obs
        if obs is not None:
            obs.begin_run(self.platform)
        self.platform.transfers.observer = obs
        emit = obs.emit if obs is not None else None
        scheduler = self.scheduler
        scheduler.obs = obs
        scheduler.setup(ctx)

        self._validate_program(program)

        trace = Trace(self.platform.workers) if self.record_trace else None
        events: list[tuple[float, int, int, object]] = []
        seq = 0
        n_done = 0
        n_total = len(program.tasks)
        forced_pops = 0
        pipeline = self.pipeline
        transfers = self.platform.transfers
        # Noise-free analytical models make sample() == estimate(); the
        # hot path then reads the estimate memo without threading the RNG
        # through a second call level.
        pm_noisefree = (
            type(self.perfmodel) is AnalyticalPerfModel
            and self.perfmodel.noise_sigma == 0.0
        )
        pm_estimate = self.perfmodel.estimate

        fault = self.fault_model
        faults = FaultStats() if fault is not None else None
        # Transient-failure count per task id (for the retry cap).
        attempts: dict[int, int] = {}
        if fault is not None:
            fault.reset()
            for link in transfers.links():
                link.degradations = fault.degradation_windows(link.src, link.dst)
            for death_time, wid in fault.failure_schedule(self.platform):
                heapq.heappush(events, (death_time, seq, WORKER_FAILURE, wid))
                seq += 1

        workers = self.platform.workers
        n_workers = len(workers)
        # Per-worker pipeline state, indexed by the dense worker id (a
        # list beats a dict on the per-event hot path).
        current: list[Task | None] = [None] * n_workers
        staged: list[tuple[Task, float, float] | None] = [None] * n_workers
        request_pending: list[bool] = [False] * n_workers
        exec_by_arch: dict[str, float] = {a: 0.0 for a in self.platform.archs}
        busy_by_worker: list[float] = [0.0] * n_workers
        wait_by_worker: list[float] = [0.0] * n_workers
        # Fail-stop death times; a dead worker's idle fraction is taken
        # over its lifetime, not the whole makespan.
        death_time: dict[int, float] = {}

        # Batch-mode scheduling state (Firmament-style): ready tasks
        # buffer in `pending` and reach the scheduler as one
        # `push_batch()` — at the step boundary (`BATCH_FLUSH`), when a
        # worker asks for work (drain-on-idle), or before the liveness
        # rescue. Buffered tasks are READY with a `_batched` scratch
        # marker: the scheduler does not hold them, the engine does.
        batch_step = self.batch_step
        batching = batch_step is not None
        batch_drain = self.batch_drain_on_idle
        pending: list[Task] = []
        flush_queued = False  # at most one BATCH_FLUSH event outstanding
        n_flushes = 0
        n_batched = 0
        max_batch = 0

        # Real-time extensions, both None on the classic (bit-identical)
        # path: the overhead ledger charges decisions to a virtual
        # scheduler core, the resource ledger arbitrates Task.resources.
        ov = OverheadLedger(self.overhead) if self.overhead is not None else None
        res_ledger = (
            ResourceLedger(self.resources, program.tasks)
            if self.resources is not None
            else None
        )
        # Power subsystem, None on the classic (bit-identical) path: the
        # ledger admits execution states under the node caps and accrues
        # per-worker busy energy.
        pw = (
            PowerLedger(self.power, self.platform)
            if self.power is not None
            else None
        )
        pw_default = pw.run_states[0] if pw is not None else None

        def push_ready(task: Task) -> None:
            nonlocal flush_queued, seq
            task.state = TaskState.READY
            if emit is not None:
                emit(TaskReady(ctx.now, task.tid, task.type_name))
            if not batching:
                if ov is not None:
                    ov.push(ctx.now)
                scheduler.push(task)
                return
            task.sched["_batched"] = True
            pending.append(task)
            if not flush_queued:
                flush_queued = True
                heapq.heappush(
                    events, (ctx.now + batch_step, seq, BATCH_FLUSH, None)
                )
                seq += 1

        def flush_batch(now: float, trigger: str) -> int:
            """Hand the buffered batch to the scheduler (reveal order).

            Tasks cancelled while buffered (control-plane shed/evict)
            are skipped — the scheduler never sees them. Returns the
            number of tasks pushed.
            """
            nonlocal n_flushes, n_batched, max_batch
            if len(pending) == 1 and pending[0].state is TaskState.READY:
                # Degenerate batch: one scheduler.push, no list rebuild.
                task = pending.pop()
                del task.sched["_batched"]
                scheduler.push(task)
                n = 1
            else:
                batch = [t for t in pending if t.state is TaskState.READY]
                pending.clear()
                if not batch:
                    return 0
                for t in batch:
                    del t.sched["_batched"]
                scheduler.push_batch(batch)
                n = len(batch)
            if ov is not None:
                ov.flush(now, n)
            n_flushes += 1
            n_batched += n
            if n > max_batch:
                max_batch = n
            if emit is not None:
                emit(BatchScheduled(now, n, trigger))
            return n

        # Progressive submission: a task only enters the scheduler's view
        # once the STF "main thread" has submitted it. Task ids are dense
        # submission indices, so `tid < revealed` is the submitted test.
        # Two gates throttle the reveal: the submission window (StarPU's
        # STARPU_LIMIT_MAX_SUBMITTED_TASKS back-pressure) and, for merged
        # job streams, each task's release time — its job's arrival on
        # the virtual clock. Both modes share one loop so TaskSubmit
        # events carry comparable ``ctx.now`` stamps.
        window = self.submission_window
        releases = program.release_times
        revealed = 0
        n_cancelled = 0  # control-plane cancellations (shed/evicted tasks)
        n_cxl_rev = 0  # cancelled tasks the reveal pointer has passed

        jobs = getattr(program, "jobs", None)
        control = self.control_plane
        span_at_tid: dict[int, object] = {}
        span_by_jid: dict[int, object] = {}
        if control is not None:
            if not jobs:
                raise SchedulingError(
                    "a control plane needs a merged job-stream program "
                    "(merge_stream output with job spans); got a plain Program"
                )
            # Delay decisions rewrite release times, so the engine works
            # on a mutable copy; the program's own validated list stays
            # untouched for the next run.
            releases = (
                list(releases) if releases is not None else [0.0] * n_total
            )
            for span in jobs:
                span_at_tid[span.first_tid] = span
                span_by_jid[span.jid] = span
            control.begin_run(program, self.perfmodel, ctx.available_archs)

        job_track: dict[int, list] | None = None
        if emit is not None and jobs:
            # tid -> [span, n_unfinished] shared per job, for JobSubmit
            # (first reveal) and JobDone (last completion) provenance.
            job_track = {}
            for span in jobs:
                entry = [span, span.n_tasks]
                for tid in range(span.first_tid, span.first_tid + span.n_tasks):
                    job_track[tid] = entry

        # Fail-stop deaths are rare (and impossible without a fault
        # model), so the hot path iterates a live-worker list that is
        # rebuilt only on WORKER_FAILURE instead of filtering through
        # ctx.is_alive() on every wake.
        live_workers: list[Worker] = list(workers)
        dead_wids = ctx._dead_wids

        def schedule_request(worker: Worker, now: float) -> None:
            nonlocal seq
            if worker.wid in dead_wids:
                return
            if not request_pending[worker.wid]:
                request_pending[worker.wid] = True
                heapq.heappush(events, (now, seq, WORKER_REQUEST, worker))
                seq += 1

        def wake_workers(now: float) -> None:
            """Wake live workers that could use new work (idle or unstaged)."""
            nonlocal seq
            for worker in live_workers:
                wid = worker.wid
                if (
                    not request_pending[wid]
                    and (current[wid] is None or (pipeline and staged[wid] is None))
                ):
                    request_pending[wid] = True
                    heapq.heappush(events, (now, seq, WORKER_REQUEST, worker))
                    seq += 1

        def cancel_job_tasks(span, *, retract_ready: bool) -> int:
            """Cancel a controlled job's not-yet-started tasks.

            SUBMITTED tasks always cancel; READY tasks only when the
            scheduler agrees to retract them (eviction path) — RUNNING
            and staged work is left to drain. Cancellation releases
            successors exactly like completion does, so cross-job
            ``after`` chains keep making progress past a shed job.
            Returns the number of tasks cancelled.
            """
            nonlocal n_cancelled, n_cxl_rev
            victims: list[Task] = []
            for tid in range(span.first_tid, span.first_tid + span.n_tasks):
                t = program.tasks[tid]
                if t.state is TaskState.SUBMITTED:
                    victims.append(t)
                elif retract_ready and t.state is TaskState.READY:
                    # A batch-buffered task is the engine's to retract:
                    # the scheduler never saw it. Otherwise ask the
                    # policy to withdraw its queue entries.
                    if "_batched" in t.sched:
                        del t.sched["_batched"]
                        victims.append(t)
                    elif scheduler.retract(t):
                        victims.append(t)
            # Mark every victim first so the release sweep below skips
            # intra-job edges instead of double-decrementing them.
            for t in victims:
                t.state = TaskState.CANCELLED
            released = False
            for t in victims:
                if t.tid < revealed:
                    n_cxl_rev += 1
                control.on_task_cancelled(t.tid, ctx.now)
                for succ in t.succs:
                    if succ.state is TaskState.CANCELLED:
                        continue
                    succ.n_unfinished_preds -= 1
                    if (
                        succ.n_unfinished_preds == 0
                        and succ.tid < revealed
                        and succ.state is TaskState.SUBMITTED
                    ):
                        push_ready(succ)
                        released = True
            n_cancelled += len(victims)
            if released:
                wake_workers(ctx.now)
            return len(victims)

        def advance_submission() -> None:
            nonlocal revealed, seq, n_cxl_rev
            while revealed < n_total:
                if window is not None and revealed - n_done - n_cxl_rev >= window:
                    break
                if releases is not None and releases[revealed] > ctx.now:
                    break
                task = program.tasks[revealed]
                if task.state is TaskState.CANCELLED:
                    # Shed/evicted before the STF thread got here: skip
                    # silently — the job never existed to the scheduler.
                    revealed += 1
                    n_cxl_rev += 1
                    continue
                if control is not None:
                    span = span_at_tid.get(revealed)
                    if span is not None:
                        decision = control.decide(span.jid, ctx.now)
                        if decision.action == "delay":
                            retry_at = decision.retry_at_us
                            for i in range(
                                span.first_tid, span.first_tid + span.n_tasks
                            ):
                                releases[i] = retry_at
                            heapq.heappush(
                                events, (retry_at, seq, JOB_ARRIVAL, None)
                            )
                            seq += 1
                            if emit is not None:
                                emit(JobDelayed(
                                    ctx.now, span.jid, span.tenant, span.qos,
                                    retry_at, decision.attempt, decision.reason,
                                ))
                            break
                        if decision.action == "shed":
                            cancel_job_tasks(span, retract_ready=False)
                            if emit is not None:
                                emit(JobRejected(
                                    ctx.now, span.jid, span.tenant, span.qos,
                                    decision.reason,
                                ))
                            continue  # the skip branch advances past it
                        for evict_jid in decision.evict_jids:
                            espan = span_by_jid[evict_jid]
                            n_gone = cancel_job_tasks(espan, retract_ready=True)
                            if emit is not None:
                                emit(JobEvicted(
                                    ctx.now, espan.jid, espan.tenant,
                                    espan.qos, n_gone,
                                ))
                        if emit is not None:
                            emit(JobAdmitted(
                                ctx.now, span.jid, span.tenant, span.qos,
                                decision.cost_us, decision.attempt,
                            ))
                revealed += 1
                if emit is not None:
                    if job_track is not None:
                        entry = job_track.get(task.tid)
                        if entry is not None and task.tid == entry[0].first_tid:
                            span = entry[0]
                            emit(JobSubmit(
                                ctx.now, span.jid, span.tenant, span.name,
                                span.n_tasks, span.arrival_us,
                            ))
                    emit(TaskSubmit(ctx.now, task.tid, task.type_name))
                if task.n_unfinished_preds == 0 and task.state is TaskState.SUBMITTED:
                    push_ready(task)

        if releases is not None:
            # One wake-up per distinct future arrival time: the STF main
            # thread resumes submitting exactly when the next job lands.
            for arrival_time in sorted({t for t in releases if t > 0.0}):
                heapq.heappush(events, (arrival_time, seq, JOB_ARRIVAL, None))
                seq += 1
        advance_submission()

        for worker in workers:
            schedule_request(worker, 0.0)

        def acquire(worker: Worker, task: Task, now: float) -> tuple[float, float]:
            """Validate the assignment, commit transfers, sample duration.

            Returns (data arrival time, execution duration). The task is
            marked RUNNING — it is irrevocably bound to this worker.
            """
            arch = worker.arch
            if arch not in task.implementations or arch not in ctx.available_archs:
                raise SchedulingError(
                    f"scheduler assigned {task.name} to {worker.name} "
                    f"({arch}) but it has no {arch} implementation"
                )
            if task.state is not TaskState.READY:
                raise SchedulingError(
                    f"scheduler popped {task.name} in state {task.state.name}"
                )
            task.state = TaskState.RUNNING
            node = worker.memory_node
            arrival = now
            for handle in task._reads:
                # Settled resident replica: skip the fetch call entirely
                # (route search, in-flight merge) — only recency changes.
                if node in handle.valid_nodes and not handle._in_flight:
                    transfers.touch(handle, node, now)
                else:
                    done = transfers.fetch(handle, node, now)
                    if trace is not None and done > now:
                        src = transfers.fetch_source(handle.hid, node)
                        trace.record_transfer(
                            handle.hid, src, node, handle.size, now, done
                        )
                    if done > arrival:
                        arrival = done
                pins = handle._pins  # transfers.pin() inlined (hot path)
                pins[node] = pins.get(node, 0) + 1
            # Every transferable read is pinned, so the pinned set IS the
            # precomputed read tuple — no per-task list build.
            task.sched["_pinned"] = task._reads
            duration = (
                pm_estimate(task, arch)
                if pm_noisefree
                else self.perfmodel.sample(task, arch, self.rng)
            )
            return arrival, duration

        def begin_exec(
            worker: Worker, task: Task, now: float, arrival: float, duration: float
        ) -> None:
            nonlocal seq
            start = max(now, arrival)
            if res_ledger is not None and task.resources:
                # Resource arbitration commits here — begin_exec runs in
                # event order, so grants serialize and can never overlap.
                start, inversions = res_ledger.gate(task, start)
                if emit is not None:
                    for r, holder_tid, holder_prio, wait_us in inversions:
                        emit(PriorityInversion(
                            now, task.tid, r, holder_tid,
                            task.priority, holder_prio, wait_us,
                        ))
            if pw is not None:
                # Power-state admission: the fastest runnable state that
                # fits under the node cap, possibly delayed until enough
                # reserved draw frees. The state's speed scales the
                # sampled duration (eco runs slower but leaner).
                pstate, pstart = pw.admit(worker, start)
                if pstate.speed != 1.0:
                    duration = duration / pstate.speed
                if emit is not None and (
                    pstart > start or pstate is not pw_default
                ):
                    emit(PowerCapThrottled(
                        now, task.tid, worker.wid, worker.memory_node,
                        pstate.name,
                        pw.model.cap_of(worker.memory_node),
                        pstart - start,
                    ))
                start = pstart
                task.sched["_pstate"] = pstate
            end = start + duration
            if pw is not None:
                pw.book(worker, task.sched["_pstate"], start, end)
            if res_ledger is not None and task.resources:
                res_ledger.book(task, start, end)
            # pop_time is the moment the worker became free for this task;
            # (start - pop_time) is the residual (unoverlapped) data stall.
            task.sched["_record"] = (worker.wid, now, start, end)
            current[worker.wid] = task
            if emit is not None:
                emit(
                    TaskStart(
                        now, task.tid, task.type_name, worker.wid,
                        worker.memory_node, start,
                    )
                )
            fail_frac = None if fault is None else fault.attempt_failure(task, worker)
            if fail_frac is not None:
                fail_at = start + duration * fail_frac
                heapq.heappush(events, (fail_at, seq, TASK_FAILURE, (worker, task)))
            else:
                heapq.heappush(events, (end, seq, TASK_COMPLETION, (worker, task)))
            seq += 1

        def rollback(task: Task, worker: Worker) -> None:
            """Undo an acquire(): unpin inputs, clear scheduler scratch,
            return the task to SUBMITTED so it can be re-pushed. No MSI
            invalidation and no perfmodel record happen — the attempt
            leaves no trace beyond the link time its transfers consumed."""
            for handle in task.sched.get("_pinned", ()):
                transfers.unpin(handle, worker.memory_node)
            task.sched.clear()
            task.state = TaskState.SUBMITTED

        def try_stage(worker: Worker, now: float) -> None:
            """Pop one task ahead and start its transfers (lookahead)."""
            if not pipeline or staged[worker.wid] is not None:
                return
            task = scheduler.pop(worker)
            if task is None:
                return
            if emit is not None:
                emit(TaskPop(now, task.tid, worker.wid, staged=True))
            arrival, duration = acquire(worker, task, now)
            if ov is not None:
                decision_end = ov.pop(now)
                if decision_end > arrival:
                    arrival = decision_end
            staged[worker.wid] = (task, arrival, duration)
            if emit is not None:
                emit(TaskStage(now, task.tid, worker.wid, arrival))

        checker = None
        if self.check_invariants:
            # Deferred import: the default path never loads repro.check.
            from repro.check.invariants import InvariantChecker

            checker = InvariantChecker(obs)
            checker.begin_run(
                program=program,
                platform=self.platform,
                ctx=ctx,
                scheduler=scheduler,
                current=current,
                staged=staged,
                events=events,
                fault_active=fault is not None,
                window=window,
                releases=releases,
                control=control,
                batch_pending=pending if batching else None,
                batch_drain=batch_drain,
                overhead_ledger=ov,
                resource_ledger=res_ledger,
                power_ledger=pw,
            )

        while events:
            if checker is not None:
                # Validate the state every processed event left behind,
                # before the queue is disturbed (the conservation sweep
                # scans it for pending retries).
                checker.validate(events[0][0], revealed, n_done)
            now, _, kind, payload = heapq.heappop(events)
            ctx.now = now

            if kind == WORKER_REQUEST:
                worker = payload  # type: ignore[assignment]
                wid = worker.wid
                request_pending[wid] = False
                if wid in dead_wids:
                    continue
                if pending and batch_drain:
                    # Drain-on-idle: a worker is about to pop, so the
                    # scheduler must see everything the per-event path
                    # would have pushed by now.
                    flush_batch(now, "drain")
                if current[wid] is None:
                    if staged[wid] is not None:
                        task, arrival, duration = staged[wid]  # type: ignore[misc]
                        staged[wid] = None
                        begin_exec(worker, task, now, arrival, duration)
                    else:
                        task = scheduler.pop(worker)
                        if task is not None:
                            if emit is not None:
                                emit(TaskPop(now, task.tid, worker.wid))
                            arrival, duration = acquire(worker, task, now)
                            if ov is not None:
                                decision_end = ov.pop(now)
                                if decision_end > arrival:
                                    arrival = decision_end
                            begin_exec(worker, task, now, arrival, duration)
                    if current[wid] is not None:
                        try_stage(worker, now)
                else:
                    try_stage(worker, now)

            elif kind == TASK_COMPLETION:
                worker, task = payload  # type: ignore[misc]
                if current[worker.wid] is not task:
                    # Stale completion of an attempt aborted by a worker
                    # failure; the task was rolled back and re-pushed.
                    continue
                task.state = TaskState.DONE
                n_done += 1
                wid, pop_time, start, end = task.sched["_record"]
                busy_by_worker[wid] += end - start
                wait_by_worker[wid] += start - pop_time
                exec_by_arch[worker.arch] += end - start
                if pw is not None:
                    # Per-task joules (state-scaled busy watts × span)
                    # survive on the task for per-job attribution.
                    task.sched["_energy_j"] = pw.charge(
                        worker, task.sched["_pstate"], end - start
                    )
                self.perfmodel.record(task, worker.arch, end - start)
                if trace is not None:
                    trace.record_task(task, worker, pop_time, start, end)
                if emit is not None:
                    emit(
                        TaskEnd(
                            now, task.tid, task.type_name, worker.wid,
                            worker.memory_node, pop_time, start, end,
                        )
                    )
                    if job_track is not None:
                        entry = job_track.get(task.tid)
                        if entry is not None:
                            entry[1] -= 1
                            if entry[1] == 0:
                                span = entry[0]
                                emit(JobDone(
                                    now, span.jid, span.tenant, span.name,
                                    span.n_tasks, span.arrival_us,
                                    now - span.arrival_us,
                                ))
                # Writes invalidate every other replica (MSI).
                node = worker.memory_node
                for handle in task.sched.get("_pinned", ()):
                    pins = handle._pins  # transfers.unpin() inlined (hot path)
                    count = pins.get(node, 0)
                    if count <= 1:
                        pins.pop(node, None)
                    else:
                        pins[node] = count - 1
                for handle in task._writes:
                    transfers.invalidate_others(handle, node, now)
                    handle._in_flight[node] = now
                scheduler.on_task_done(task, worker)
                if control is not None:
                    control.on_task_done(task.tid, now)
                released = 0
                for succ in task.succs:
                    if succ.state is TaskState.CANCELLED:
                        continue
                    succ.n_unfinished_preds -= 1
                    if (
                        succ.n_unfinished_preds == 0
                        and succ.tid < revealed
                        and succ.state is TaskState.SUBMITTED
                    ):
                        push_ready(succ)
                        released += 1
                if window is not None:
                    before = revealed
                    advance_submission()
                    released += revealed - before
                current[worker.wid] = None
                schedule_request(worker, now)
                if released:
                    wake_workers(now)

            elif kind == TASK_FAILURE:
                worker, task = payload  # type: ignore[misc]
                wid = worker.wid
                if current[wid] is not task:
                    # The worker died mid-attempt; the fail-stop path
                    # already rolled the task back and re-pushed it.
                    continue
                assert fault is not None and faults is not None
                _, pop_time, start, _ = task.sched["_record"]
                busy_by_worker[wid] += now - start
                wait_by_worker[wid] += start - pop_time
                exec_by_arch[worker.arch] += now - start
                if pw is not None:
                    # Wasted burn draws busy power too; the attempt's
                    # reservation releases at its planned end (conservative).
                    pw.charge(worker, task.sched["_pstate"], now - start)
                faults.task_failures += 1
                faults.wasted_exec_us += now - start
                rollback(task, worker)
                current[wid] = None
                scheduler.on_task_failed(task, worker)
                attempts[task.tid] = n_failures = attempts.get(task.tid, 0) + 1
                if emit is not None:
                    emit(TaskFault(now, task.tid, wid, now - start, n_failures))
                if n_failures > fault.max_retries:
                    raise RetryExhaustedError(
                        f"{task.name} failed {n_failures} attempts, exceeding "
                        f"the fault model's max_retries={fault.max_retries}"
                    )
                faults.retries += 1
                retry_at = now + fault.backoff_us(n_failures)
                heapq.heappush(events, (retry_at, seq, TASK_RETRY, task))
                seq += 1
                schedule_request(worker, now)

            elif kind == TASK_RETRY:
                task = payload  # type: ignore[assignment]
                # Skip when a worker-failure recovery re-pushed the task
                # (or it even completed) while the backoff was pending.
                if task.state is TaskState.SUBMITTED and task.n_unfinished_preds == 0:
                    if emit is not None:
                        emit(TaskRetryScheduled(now, task.tid, attempts.get(task.tid, 0)))
                    push_ready(task)
                    wake_workers(now)

            elif kind == WORKER_FAILURE:
                wid = payload  # type: ignore[assignment]
                worker = workers[wid]
                if not ctx.is_alive(worker):
                    continue  # scripted and sampled deaths may coincide
                assert faults is not None
                archs_before = ctx.available_archs
                ctx.mark_worker_dead(worker)
                live_workers = [w for w in workers if w.wid not in dead_wids]
                death_time[wid] = now
                faults.worker_failures += 1
                recovered: list[Task] = []
                running = current[wid]
                if running is not None:
                    _, pop_time, start, _ = running.sched["_record"]
                    # The attempt may still be stalled on data (start in
                    # the future): it burned wait time, not exec time.
                    burned = max(0.0, now - start)
                    busy_by_worker[wid] += burned
                    wait_by_worker[wid] += min(now, start) - pop_time
                    exec_by_arch[worker.arch] += burned
                    if pw is not None:
                        pw.charge(worker, running.sched["_pstate"], burned)
                    faults.wasted_exec_us += burned
                    rollback(running, worker)
                    current[wid] = None
                    recovered.append(running)
                if staged[wid] is not None:
                    staged_task, _, _ = staged[wid]  # type: ignore[misc]
                    staged[wid] = None
                    rollback(staged_task, worker)
                    recovered.append(staged_task)
                # Orphans queued inside the scheduler for the dead worker.
                for orphan in scheduler.on_worker_failed(worker):
                    if orphan.state is TaskState.READY:
                        orphan.sched.clear()
                        orphan.state = TaskState.SUBMITTED
                        recovered.append(orphan)
                faults.tasks_recovered += len(recovered)
                if emit is not None:
                    emit(WorkerDeath(now, wid, worker.name, len(recovered)))
                # A device memory dies with its last worker: every replica
                # it hosted is gone. Sole copies that an unfinished task
                # still needs to read are unrecoverable.
                mem = self.platform.nodes[worker.memory_node]
                if mem.kind == "gpu" and not ctx.workers_of_node(mem.mid):
                    still_read = {
                        handle.hid
                        for t in program.tasks
                        if t.state is not TaskState.DONE
                        and t.state is not TaskState.CANCELLED
                        for handle, mode in t.accesses
                        if mode.is_read
                    }
                    for handle in program.handles:
                        if not handle.is_valid_on(mem.mid):
                            continue
                        sole = len(handle.valid_nodes) == 1
                        if sole and handle.size > 0 and handle.hid in still_read:
                            raise DataLossError(
                                f"worker failure of {worker.name} at t={now:.1f}us "
                                f"destroyed the only replica of {handle.label} "
                                f"({handle.size} bytes) on node {mem.name!r}, "
                                "still needed by unfinished tasks"
                            )
                        faults.lost_replica_bytes += handle.size
                        transfers.drop_replica(handle, mem.mid)
                # An architecture vanished: cached best-arch choices are
                # stale, and some tasks may have become unschedulable.
                if ctx.available_archs != archs_before:
                    for t in program.tasks:
                        if t.state is TaskState.DONE or t.state is TaskState.CANCELLED:
                            continue
                        t.sched.pop("_best_arch", None)
                        if not any(t.can_exec(a) for a in ctx.available_archs):
                            raise SchedulingError(
                                f"worker failure of {worker.name} left {t.name} "
                                f"with no executable architecture among "
                                f"{ctx.available_archs}"
                            )
                for t in recovered:
                    push_ready(t)
                wake_workers(now)

            elif kind == JOB_ARRIVAL:
                # The clock reached a job's release time: resume the STF
                # submission loop and wake workers if anything came out.
                before = revealed
                advance_submission()
                if revealed != before:
                    wake_workers(now)

            else:  # BATCH_FLUSH
                flush_queued = False
                if pending and flush_batch(now, "step"):
                    wake_workers(now)

            # Liveness rescue: nothing in flight but tasks remain.
            if not events and n_done + n_cancelled < n_total:
                if any(c is not None for c in current):
                    continue
                if pending:
                    # Unreachable while a BATCH_FLUSH is queued, but a
                    # rescue pop must never miss buffered work.
                    flush_batch(now, "rescue")
                progressed = False
                for worker in workers:
                    if not ctx.is_alive(worker):
                        continue
                    task = scheduler.pop(worker) or scheduler.force_pop(worker)
                    if task is None:
                        continue
                    if task.state is not TaskState.READY:
                        # The scheduler has already tombstoned this task
                        # as taken; silently dropping it here would turn
                        # a scheduler bug into a DeadlockError later.
                        raise SchedulingError(
                            f"scheduler {scheduler.name!r} returned "
                            f"{task.name} in state {task.state.name} from "
                            f"the liveness-rescue pop; it was already "
                            f"handed out (popped twice?)"
                        )
                    forced_pops += 1
                    if emit is not None:
                        emit(TaskPop(now, task.tid, worker.wid, forced=True))
                    arrival, duration = acquire(worker, task, now)
                    if ov is not None:
                        decision_end = ov.pop(now)
                        if decision_end > arrival:
                            arrival = decision_end
                    begin_exec(worker, task, now, arrival, duration)
                    progressed = True
                if not progressed:
                    remaining = [
                        t.name
                        for t in program.tasks
                        if t.state is not TaskState.DONE
                        and t.state is not TaskState.CANCELLED
                    ]
                    raise DeadlockError(
                        f"simulation stalled with {len(remaining)} unfinished tasks "
                        f"(first few: {remaining[:5]}); scheduler "
                        f"{scheduler.name!r} returned no task for any idle worker; "
                        f"scheduler stats: {scheduler.stats()!r}"
                    )

        if n_done + n_cancelled != n_total:
            raise DeadlockError(
                f"event queue drained with {n_total - n_done - n_cancelled} "
                f"unfinished tasks; scheduler {scheduler.name!r} stats: "
                f"{scheduler.stats()!r}"
            )
        if checker is not None:
            checker.validate(ctx.now, revealed, n_done)

        makespan = max(
            (
                task.sched["_record"][3]
                for task in program.tasks
                if "_record" in task.sched  # cancelled tasks never ran
            ),
            default=0.0,
        )
        idle_by_arch: dict[str, float] = {}
        for arch in self.platform.archs:
            arch_workers = self.platform.workers_of_arch(arch)
            if not arch_workers or makespan <= 0:
                idle_by_arch[arch] = 0.0
                continue
            fracs = []
            for w in arch_workers:
                # A worker lost to a fail-stop failure only existed up to
                # its death; judging it against the full makespan would
                # read an early casualty as ~100% idle.
                horizon = min(makespan, death_time.get(w.wid, makespan))
                if horizon <= 0:
                    fracs.append(0.0)
                    continue
                active = busy_by_worker[w.wid] + wait_by_worker[w.wid]
                fracs.append(max(0.0, 1.0 - active / horizon))
            idle_by_arch[arch] = sum(fracs) / len(fracs)

        return SimResult(
            makespan=makespan,
            n_tasks=n_total,
            total_flops=program.total_flops(),
            bytes_transferred=self.platform.transfers.total_bytes_moved(),
            exec_time_by_arch=exec_by_arch,
            idle_frac_by_arch=idle_by_arch,
            forced_pops=forced_pops,
            scheduler_stats=scheduler.stats(),
            trace=trace,
            faults=faults,
            events=tuple(obs.events) if obs is not None else None,
            metrics=obs.snapshot(makespan) if obs is not None else None,
            n_cancelled=n_cancelled,
            batch_stats=(
                {
                    "n_flushes": float(n_flushes),
                    "n_batched": float(n_batched),
                    "max_batch": float(max_batch),
                    "mean_batch": n_batched / n_flushes if n_flushes else 0.0,
                }
                if batching
                else None
            ),
            rt_stats=(
                {
                    **(ov.stats() if ov is not None else {}),
                    **(res_ledger.stats() if res_ledger is not None else {}),
                    **(pw.stats() if pw is not None else {}),
                }
                if ov is not None or res_ledger is not None or pw is not None
                else None
            ),
            busy_us_by_worker=tuple(busy_by_worker),
            death_us_by_worker=dict(death_time),
            energy=(
                pw.finalize(makespan, death_time) if pw is not None else None
            ),
        )

    # -- validation ----------------------------------------------------------

    def _validate_program(self, program: Program) -> None:
        for task in program.tasks:
            if not any(task.can_exec(a) for a in self.ctx.available_archs):
                raise SchedulingError(
                    f"{task.name} has implementations {sorted(task.implementations)} "
                    f"but the platform only offers {self.ctx.available_archs}"
                )
