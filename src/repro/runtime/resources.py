"""Shared non-processor resources: locks and the priority ceiling.

Tasks may name shared resources (``Task.resources`` — a DMA channel, a
host-side staging buffer, a device lock). The engine enforces mutual
exclusion over them: two tasks naming the same resource never execute
concurrently, whatever workers they landed on. Because the engine
commits a task's start time exactly once (in ``begin_exec``, serialized
in event order) and tasks hold their resources for their whole
execution, the protocol is simple and deadlock-free by construction:

* a task acquires **all** its resources atomically at its (possibly
  delayed) start and releases them at its end — there is no incremental
  lock acquisition, so no hold-and-wait cycles can form;
* under ``mode="lock"`` a task waits only for its own resources to
  free; a high-priority task can therefore be delayed by an arbitrary
  chain of unrelated lower-priority holders (classic priority
  inversion, observable as :class:`~repro.obs.events.PriorityInversion`
  provenance events);
* under ``mode="ceiling"`` each resource gets a *priority ceiling* (the
  highest priority of any task naming it, computed at run start), and a
  task additionally waits until no *other* busy resource has a ceiling
  ≥ its own priority — the immediate priority ceiling protocol's
  avoidance blocking, which bounds inversion to at most one
  lower-priority critical section.

The invariant checker's ``rt`` family audits the grant ledger: per
resource, granted intervals must never overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.task import Task

#: Supported protocol modes.
RESOURCE_MODES: tuple[str, ...] = ("lock", "ceiling")


@dataclass(frozen=True)
class ResourceProtocol:
    """Configuration of the engine's resource arbitration."""

    mode: str = "lock"

    def __post_init__(self) -> None:
        if self.mode not in RESOURCE_MODES:
            raise ValidationError(
                f"ResourceProtocol.mode must be one of {RESOURCE_MODES}, "
                f"got {self.mode!r}"
            )


class ResourceLedger:
    """Per-run arbitration state for one :class:`ResourceProtocol`.

    ``gate`` computes how long a task must additionally wait before its
    start; ``book`` commits the grant. Both are called from the engine's
    ``begin_exec`` only, which event order serializes — so grants are
    committed in nondecreasing decision order and per-resource intervals
    cannot overlap (the checker re-verifies this from ``grants``).

    A failed attempt keeps its booking until the *projected* completion:
    the model is pessimistic about crashed critical sections (the
    runtime would have to clean up the resource anyway).
    """

    __slots__ = (
        "protocol", "busy_until", "holder", "ceilings", "grants",
        "n_blocked", "blocked_us", "n_inversions",
    )

    def __init__(
        self, protocol: ResourceProtocol, tasks: "Iterable[Task]"
    ) -> None:
        self.protocol = protocol
        #: resource -> time its current grant ends.
        self.busy_until: dict[str, float] = {}
        #: resource -> (holder tid, holder priority) of the current grant.
        self.holder: dict[str, tuple[int, int]] = {}
        #: grant ledger for the checker: (resource, tid, start, end).
        self.grants: list[tuple[str, int, float, float]] = []
        self.n_blocked = 0
        self.blocked_us = 0.0
        self.n_inversions = 0
        self.ceilings: dict[str, int] = {}
        if protocol.mode == "ceiling":
            for task in tasks:
                for r in task.resources:
                    prev = self.ceilings.get(r)
                    if prev is None or task.priority > prev:
                        self.ceilings[r] = task.priority

    def gate(
        self, task: "Task", start: float
    ) -> tuple[float, list[tuple[str, int, int, float]]]:
        """Earliest start ≥ ``start`` at which ``task`` may hold all its
        resources, plus the priority inversions that delay explains.

        Returns ``(new_start, inversions)`` where each inversion is
        ``(resource, holder_tid, holder_prio, wait_us)`` — a wait behind
        a strictly lower-priority holder.
        """
        gated = start
        blockers: list[tuple[str, float]] = []
        for r in task.resources:
            until = self.busy_until.get(r, 0.0)
            if until > gated:
                gated = until
            if until > start:
                blockers.append((r, until))
        if self.protocol.mode == "ceiling":
            # Avoidance blocking: wait for any *other* held resource
            # whose ceiling could be contended by this task's level.
            own = set(task.resources)
            prio = task.priority
            for r, until in self.busy_until.items():
                if until > start and r not in own and self.ceilings.get(r, 0) >= prio:
                    if until > gated:
                        gated = until
                    blockers.append((r, until))
        inversions: list[tuple[str, int, int, float]] = []
        if gated > start:
            self.n_blocked += 1
            self.blocked_us += gated - start
            for r, until in blockers:
                held = self.holder.get(r)
                if held is not None and held[1] < task.priority:
                    self.n_inversions += 1
                    inversions.append((r, held[0], held[1], until - start))
        return gated, inversions

    def book(self, task: "Task", start: float, end: float) -> None:
        """Commit the grant of every resource of ``task`` over [start, end)."""
        entry = (task.tid, task.priority)
        for r in task.resources:
            self.busy_until[r] = end
            self.holder[r] = entry
            self.grants.append((r, task.tid, start, end))

    def stats(self) -> dict[str, float]:
        """Counters for :class:`~repro.runtime.engine.SimResult.rt_stats`."""
        return {
            "resource_n_grants": float(len(self.grants)),
            "resource_n_blocked": float(self.n_blocked),
            "resource_blocked_us": self.blocked_us,
            "resource_n_inversions": float(self.n_inversions),
        }
