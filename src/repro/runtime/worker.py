"""Workers: the execution contexts the scheduler assigns tasks to.

Following the paper's model, a worker is a software entity driving one
processing unit; each worker is tied to exactly one memory node and one
architecture type. Several workers may share a GPU memory node — that is
how StarPU exposes CUDA *streams*, and how the paper's Fig. 6 varies the
stream count.
"""

from __future__ import annotations


class Worker:
    """One execution context (CPU core or GPU stream).

    Attributes
    ----------
    wid:
        Dense worker id, unique within a platform.
    arch:
        Architecture type name (``"cpu"``, ``"cuda"``).
    memory_node:
        Id of the memory node this worker computes from.
    name:
        Readable label, e.g. ``"cpu07"`` or ``"gpu1.s0"``.
    """

    __slots__ = ("wid", "arch", "memory_node", "name")

    def __init__(self, wid: int, arch: str, memory_node: int, name: str = "") -> None:
        self.wid = wid
        self.arch = arch
        self.memory_node = memory_node
        self.name = name or f"{arch}{wid}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Worker {self.name} arch={self.arch} node={self.memory_node}>"
