"""Machine descriptions and their instantiation into a Platform.

A :class:`MachineSpec` is a declarative description (memory nodes, worker
counts, link bandwidths); :class:`Platform` is the instantiated object
graph the simulator runs against. Concrete machines used by the paper's
evaluation (Intel-V100, AMD-A100) live in :mod:`repro.platform.machines`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.memory import Link, MemoryNode, TransferEngine
from repro.runtime.worker import Worker
from repro.utils.units import US_PER_S
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class MemoryNodeSpec:
    """Declarative memory node: ``kind`` is ``"ram"`` or ``"gpu"``.

    ``capacity`` bounds the bytes of replicas the node can host (None =
    unbounded); the transfer engine evicts LRU replicas past it.
    """

    name: str
    kind: str
    arch: str
    n_workers: int
    capacity: int | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ValidationError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.capacity is not None and self.capacity <= 0:
            raise ValidationError(f"capacity must be > 0 or None, got {self.capacity}")


@dataclass(frozen=True)
class LinkSpec:
    """Declarative directed link between two named memory nodes.

    ``bandwidth_gbps`` is in GB/s (decimal), ``latency_us`` in microseconds.
    """

    src: str
    dst: str
    bandwidth_gbps: float
    latency_us: float = 5.0


@dataclass(frozen=True)
class MachineSpec:
    """A heterogeneous compute node description."""

    name: str
    nodes: tuple[MemoryNodeSpec, ...]
    links: tuple[LinkSpec, ...] = field(default_factory=tuple)

    def node_index(self, name: str) -> int:
        """Index of the named memory node within ``nodes``."""
        for i, node in enumerate(self.nodes):
            if node.name == name:
                return i
        raise ValidationError(f"unknown memory node {name!r} in machine {self.name!r}")


class Platform:
    """Instantiated machine: memory nodes, workers, transfer engine.

    The platform owns mutable per-run state (link clocks); the simulator
    resets it before every run so one platform can serve a whole benchmark
    grid.
    """

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.nodes: list[MemoryNode] = []
        self.workers: list[Worker] = []
        self._workers_by_arch: dict[str, list[Worker]] = {}
        self._workers_by_node: dict[int, list[Worker]] = {}
        self._nodes_by_arch: dict[str, list[MemoryNode]] = {}

        gpu_counter = 0
        for mid, node_spec in enumerate(spec.nodes):
            node = MemoryNode(
                mid,
                node_spec.name,
                node_spec.kind,
                node_spec.arch,
                capacity=node_spec.capacity,
            )
            self.nodes.append(node)
            self._workers_by_node[mid] = []
            self._nodes_by_arch.setdefault(node_spec.arch, []).append(node)
            for k in range(node_spec.n_workers):
                if node_spec.kind == "gpu":
                    wname = f"{node_spec.name}.s{k}"
                else:
                    wname = f"{node_spec.name}.c{k}"
                worker = Worker(len(self.workers), node_spec.arch, mid, name=wname)
                self.workers.append(worker)
                self._workers_by_arch.setdefault(node_spec.arch, []).append(worker)
                self._workers_by_node[mid].append(worker)
            if node_spec.kind == "gpu":
                gpu_counter += 1

        links = [
            Link(
                spec.node_index(l.src),
                spec.node_index(l.dst),
                bandwidth=l.bandwidth_gbps * 1e9 / US_PER_S,  # bytes per us
                latency=l.latency_us,
            )
            for l in spec.links
        ]
        self.transfers = TransferEngine(self.nodes, links)

        if not self.workers:
            raise ValidationError(f"machine {spec.name!r} has no workers")

    # -- lookups ---------------------------------------------------------

    @property
    def archs(self) -> list[str]:
        """Architecture type names present, sorted for determinism."""
        return sorted(self._workers_by_arch)

    def workers_of_arch(self, arch: str) -> list[Worker]:
        """Workers whose processing unit is of type ``arch``."""
        return self._workers_by_arch.get(arch, [])

    def workers_of_node(self, node: int) -> list[Worker]:
        """Workers computing from memory node ``node``."""
        return self._workers_by_node.get(node, [])

    def nodes_of_arch(self, arch: str) -> list[MemoryNode]:
        """Memory nodes whose attached processing units are of ``arch``."""
        return self._nodes_by_arch.get(arch, [])

    def n_workers(self, arch: str | None = None) -> int:
        """Number of workers, optionally restricted to one architecture."""
        if arch is None:
            return len(self.workers)
        return len(self._workers_by_arch.get(arch, []))

    def ram_node(self) -> MemoryNode:
        """The (first) host RAM node."""
        for node in self.nodes:
            if node.kind == "ram":
                return node
        raise ValidationError(f"machine {self.name!r} has no RAM node")

    def reset_runtime_state(self) -> None:
        """Reset per-run mutable state (link clocks/counters)."""
        self.transfers.reset_runtime_state()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        per_arch = {a: len(ws) for a, ws in self._workers_by_arch.items()}
        return f"<Platform {self.name}: {per_arch} workers, {len(self.nodes)} nodes>"


def simple_machine(
    n_cpus: int = 4,
    n_gpus: int = 1,
    gpu_streams: int = 1,
    *,
    name: str = "test-machine",
    pcie_gbps: float = 12.0,
    pcie_latency_us: float = 5.0,
) -> MachineSpec:
    """A small CPU+GPU machine spec, handy for tests and examples.

    One RAM node with ``n_cpus`` CPU workers, ``n_gpus`` GPU nodes with
    ``gpu_streams`` workers each, full bidirectional RAM<->GPU links.
    """
    nodes = [MemoryNodeSpec("ram", "ram", "cpu", n_cpus)]
    links: list[LinkSpec] = []
    for g in range(n_gpus):
        gname = f"gpu{g}"
        nodes.append(MemoryNodeSpec(gname, "gpu", "cuda", gpu_streams))
        links.append(LinkSpec("ram", gname, pcie_gbps, pcie_latency_us))
        links.append(LinkSpec(gname, "ram", pcie_gbps, pcie_latency_us))
    return MachineSpec(name=name, nodes=tuple(nodes), links=tuple(links))
