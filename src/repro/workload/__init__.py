"""Online multi-job workloads: streams of arriving programs.

The workload layer turns the repo's static single-DAG simulations into
an online, multi-tenant scenario: jobs (whole programs) arrive over
virtual time, get merged into one composite program with per-task
release times, and run under any registered scheduler unmodified. See
:func:`repro.api.simulate_stream` for the one-call entry point.
"""

from repro.workload.merge import JobSpan, StreamProgram, merge_stream
from repro.workload.results import JobResult, StreamResult
from repro.workload.stream import (
    QOS_CLASSES,
    Job,
    JobStream,
    closed_loop_stream,
    poisson_stream,
    trace_stream,
)

__all__ = [
    "QOS_CLASSES",
    "Job",
    "JobStream",
    "JobSpan",
    "JobResult",
    "StreamProgram",
    "StreamResult",
    "closed_loop_stream",
    "merge_stream",
    "poisson_stream",
    "trace_stream",
]
