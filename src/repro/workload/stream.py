"""Job streams: programs that arrive over time and compete for a node.

A :class:`Job` wraps one ready-built :class:`~repro.runtime.stf.Program`
with an arrival time (µs of virtual clock) and a tenant label; a
:class:`JobStream` is an ordered collection of jobs — the online,
multi-tenant counterpart of the repo's single static DAGs. Streams are
plain descriptions: :func:`repro.workload.merge.merge_stream` compiles
one into a composite program the unmodified engine executes, and
:func:`repro.api.simulate_stream` wraps the whole pipeline.

Three generators cover the usual arrival regimes:

* :func:`poisson_stream` — open-loop Poisson arrivals (exponential
  interarrival gaps from a seeded RNG) over a set of program builders;
* :func:`closed_loop_stream` — a fixed population of clients, each
  submitting its next job only when the previous one finished (expressed
  with inter-job dependency edges, added during the merge);
* :func:`trace_stream` — explicit ``(arrival_us, program, tenant)``
  entries replayed verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.runtime.stf import Program
from repro.utils.validation import ValidationError

#: A job factory: builds a fresh Program per call (never share task
#: objects between jobs — the merge copies them, but isolated-baseline
#: runs re-simulate the originals).
ProgramFactory = Callable[[], Program]

#: Priority classes the control plane (:mod:`repro.control`) honours:
#: ``guaranteed`` jobs are always admitted (evicting best-effort work
#: under overload if needed), ``burstable`` jobs may be delayed before
#: being shed, ``best-effort`` jobs are shed on the first refusal and
#: evicted first. Without a control plane the class is inert metadata.
QOS_CLASSES: tuple[str, ...] = ("guaranteed", "burstable", "best-effort")


@dataclass(frozen=True)
class Job:
    """One unit of arriving work.

    ``after`` optionally names an earlier job (by ``jid``) that must
    fully complete before this one may start — the closed-loop "think
    then resubmit" pattern. The merge turns it into dependency edges
    from every sink of the predecessor to every source of this job.

    ``deadline_us`` is the job's *relative* deadline: the job should
    fully complete within that many µs of its arrival. The merge stamps
    the absolute deadline (``arrival_us + deadline_us``) onto every
    cloned task, deadline-aware schedulers read it, and
    :class:`~repro.workload.results.StreamResult` reports miss rates and
    lateness. ``None`` (default) means best-effort: no deadline.
    """

    jid: int
    arrival_us: float
    program: Program
    tenant: str = "default"
    name: str = ""
    after: int | None = None
    qos: str = "burstable"
    deadline_us: float | None = None

    @property
    def label(self) -> str:
        """Readable identifier like ``j3:cholesky``."""
        return f"j{self.jid}:{self.name or self.program.name}"


@dataclass(frozen=True)
class JobStream:
    """A validated, arrival-ordered sequence of jobs."""

    name: str
    jobs: tuple[Job, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValidationError(
                f"stream {self.name!r} has no jobs; a JobStream must carry "
                f"at least one"
            )
        seen: set[int] = set()
        prev_arrival = 0.0
        prev_jid = -1
        for i, job in enumerate(self.jobs):
            if job.jid in seen or job.jid <= prev_jid:
                # Increasing jids + non-decreasing arrivals make stream
                # order and the merge's (arrival, jid) order coincide,
                # so `after` edges always point backward.
                raise ValidationError(
                    f"job ids must be strictly increasing (and unique): "
                    f"{job.jid} follows {prev_jid}"
                )
            prev_jid = job.jid
            if not math.isfinite(job.arrival_us):
                raise ValidationError(
                    f"{job.label} has a non-finite arrival time {job.arrival_us}"
                )
            if job.arrival_us < 0:
                raise ValidationError(
                    f"{job.label} has a negative arrival time {job.arrival_us}"
                )
            if job.arrival_us < prev_arrival:
                raise ValidationError(
                    f"stream jobs must be ordered by arrival: {job.label} at "
                    f"{job.arrival_us} follows an arrival at {prev_arrival}"
                )
            if not len(job.program):
                raise ValidationError(f"{job.label} has an empty program")
            if job.qos not in QOS_CLASSES:
                raise ValidationError(
                    f"{job.label} has unknown qos class {job.qos!r}; expected "
                    f"one of {QOS_CLASSES}"
                )
            if job.deadline_us is not None and (
                not isinstance(job.deadline_us, (int, float))
                or not math.isfinite(job.deadline_us)
                or job.deadline_us <= 0
            ):
                raise ValidationError(
                    f"{job.label} has an invalid relative deadline "
                    f"{job.deadline_us}; expected a finite positive µs value "
                    f"(or None for no deadline)"
                )
            if job.after is not None and job.after not in seen:
                raise ValidationError(
                    f"{job.label} chains after job {job.after}, which does "
                    f"not precede it in the stream"
                )
            seen.add(job.jid)
            prev_arrival = job.arrival_us

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def n_tasks(self) -> int:
        """Total task count over every job."""
        return sum(len(j.program) for j in self.jobs)

    @property
    def tenants(self) -> tuple[str, ...]:
        """Distinct tenant labels, in first-appearance order."""
        out: list[str] = []
        for job in self.jobs:
            if job.tenant not in out:
                out.append(job.tenant)
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = self.jobs[-1].arrival_us if self.jobs else 0.0
        return (
            f"<JobStream {self.name!r}: {len(self.jobs)} jobs / "
            f"{self.n_tasks} tasks over {span:.0f}us>"
        )


def _named_builders(
    builders: Sequence[ProgramFactory | tuple[str, ProgramFactory]],
) -> list[tuple[str, ProgramFactory]]:
    if not builders:
        raise ValidationError("at least one program builder is required")
    out: list[tuple[str, ProgramFactory]] = []
    for b in builders:
        if isinstance(b, tuple):
            out.append(b)
        else:
            out.append((getattr(b, "__name__", "job"), b))
    return out


def poisson_stream(
    builders: Sequence[ProgramFactory | tuple[str, ProgramFactory]],
    *,
    rate_jobs_per_s: float,
    n_jobs: int,
    seed: int = 0,
    tenants: Sequence[str] = ("tenant0",),
    qos: Sequence[str] | None = None,
    deadline: float | Sequence[float] | None = None,
    name: str = "poisson",
) -> JobStream:
    """Open-loop Poisson arrivals over round-robin program builders.

    Interarrival gaps are exponential with mean ``1e6 / rate_jobs_per_s``
    µs, drawn from a :class:`numpy.random.SeedSequence`-seeded generator
    so the stream is reproducible and independent of the engine's
    execution-noise RNG. Builders and tenants rotate round-robin, which
    keeps the workload mix deterministic under any rate. ``qos`` (when
    given) assigns priority classes *per tenant* — tenant ``k`` gets
    ``qos[k % len(qos)]`` — so each tenant's class is stable across the
    stream. ``deadline`` (when given) assigns relative deadlines *per
    builder* — a scalar applies to every job, a sequence pairs with the
    builder rotation (``deadline[i % len(builders)]``), so each program
    shape keeps a stable deadline across the stream.
    """
    if rate_jobs_per_s <= 0:
        raise ValidationError(f"rate_jobs_per_s must be > 0, got {rate_jobs_per_s}")
    if n_jobs < 1:
        raise ValidationError(f"n_jobs must be >= 1, got {n_jobs}")
    named = _named_builders(builders)
    deadlines: tuple[float, ...] | None
    if deadline is None:
        deadlines = None
    elif isinstance(deadline, (int, float)):
        deadlines = (float(deadline),)
    else:
        deadlines = tuple(float(d) for d in deadline)
        if not deadlines:
            raise ValidationError("deadline sequence must not be empty")
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    mean_gap_us = 1e6 / rate_jobs_per_s
    gaps = rng.exponential(mean_gap_us, size=n_jobs)
    jobs: list[Job] = []
    clock = 0.0
    for i in range(n_jobs):
        # The first job lands at t=0 so every stream exercises a cold start.
        clock += float(gaps[i]) if i else 0.0
        job_name, factory = named[i % len(named)]
        tenant_idx = i % len(tenants)
        jobs.append(Job(
            jid=i,
            arrival_us=clock,
            program=factory(),
            tenant=tenants[tenant_idx],
            name=job_name,
            qos=qos[tenant_idx % len(qos)] if qos else "burstable",
            deadline_us=deadlines[i % len(deadlines)] if deadlines else None,
        ))
    return JobStream(name=name, jobs=tuple(jobs))


def closed_loop_stream(
    builders: Sequence[ProgramFactory | tuple[str, ProgramFactory]],
    *,
    n_clients: int,
    jobs_per_client: int,
    name: str = "closed-loop",
) -> JobStream:
    """A closed-loop workload: ``n_clients`` tenants, each re-submitting
    its next job only once the previous one fully completed.

    Completion times are only known at simulation time, so the "wait for
    my previous job" constraint is expressed structurally: every job
    after a client's first carries ``after=<previous jid>``, which the
    merge compiles into sink→source dependency edges. Arrival times are
    all zero — the *dependencies* pace the stream, and the submission
    window (if any) bounds how much of it the scheduler sees at once.
    """
    if n_clients < 1:
        raise ValidationError(f"n_clients must be >= 1, got {n_clients}")
    if jobs_per_client < 1:
        raise ValidationError(f"jobs_per_client must be >= 1, got {jobs_per_client}")
    named = _named_builders(builders)
    jobs: list[Job] = []
    last_jid: dict[int, int] = {}
    jid = 0
    for round_idx in range(jobs_per_client):
        for client in range(n_clients):
            job_name, factory = named[jid % len(named)]
            jobs.append(Job(
                jid=jid,
                arrival_us=0.0,
                program=factory(),
                tenant=f"client{client}",
                name=job_name,
                after=last_jid.get(client),
            ))
            last_jid[client] = jid
            jid += 1
    return JobStream(name=name, jobs=tuple(jobs))


def trace_stream(
    entries: Iterable[tuple],
    *,
    name: str = "trace",
) -> JobStream:
    """A stream replayed from explicit ``(arrival_us, program, tenant)``,
    ``(arrival_us, program, tenant, qos)`` or
    ``(arrival_us, program, tenant, qos, deadline_us)`` entries
    (``deadline_us`` relative, ``None`` for best-effort); entries are
    stably sorted by arrival time.

    Raises :class:`~repro.utils.validation.ValidationError` on an empty
    trace, malformed entries, non-finite or negative arrivals — the
    same typed errors :class:`JobStream` itself enforces.
    """
    materialized = list(entries)
    if not materialized:
        raise ValidationError(f"trace stream {name!r} has no entries")
    for entry in materialized:
        if not isinstance(entry, tuple) or len(entry) not in (3, 4, 5):
            raise ValidationError(
                f"trace entries must be (arrival_us, program, tenant"
                f"[, qos[, deadline_us]]) tuples, got {entry!r}"
            )
    ordered = sorted(enumerate(materialized), key=lambda e: (e[1][0], e[0]))
    jobs = tuple(
        Job(
            jid=i,
            arrival_us=float(entry[0]),
            program=entry[1],
            tenant=entry[2],
            name=entry[1].name,
            qos=entry[3] if len(entry) >= 4 else "burstable",
            deadline_us=entry[4] if len(entry) == 5 else None,
        )
        for i, (_, entry) in enumerate(ordered)
    )
    return JobStream(name=name, jobs=jobs)
