"""Per-job and per-tenant outcomes of a simulated stream.

:class:`JobResult` is derived from the merged run's task records (no
trace or observability needed): when the job's first task started, when
its last task finished, and — when isolated baselines were run — the
job's slowdown against having the machine to itself.

:class:`StreamResult` aggregates: mean/p95 latency, slowdown spread,
Jain's fairness index over per-job slowdowns (latencies when baselines
are off), throughput, and per-tenant rollups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.stats import jain_fairness_index, percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.result import ControlResult
    from repro.runtime.engine import SimResult


@dataclass(frozen=True)
class JobResult:
    """End-to-end outcome of one job inside a stream run.

    All times are µs of virtual clock. ``start_us`` is the first task's
    execution start; ``end_us`` the last task's completion.
    ``isolated_us`` is the job's makespan when simulated alone on the
    same machine/scheduler/seed (``None`` when baselines were skipped).
    """

    jid: int
    name: str
    tenant: str
    arrival_us: float
    start_us: float
    end_us: float
    n_tasks: int
    isolated_us: float | None = None
    #: Absolute deadline (arrival + the job's relative deadline);
    #: ``None`` for jobs submitted without one.
    deadline_us: float | None = None
    #: Busy joules attributed to the job's own executions (idle draw is
    #: a platform cost and is not attributed); ``None`` when the run
    #: predates energy attribution.
    energy_j: float | None = None

    @property
    def latency_us(self) -> float:
        """Response time: arrival to last completion."""
        return self.end_us - self.arrival_us

    @property
    def queueing_us(self) -> float:
        """Delay before any of the job's work executed."""
        return self.start_us - self.arrival_us

    @property
    def slowdown(self) -> float | None:
        """Latency over isolated makespan (1.0 = no interference)."""
        if self.isolated_us is None or self.isolated_us <= 0:
            return None
        return self.latency_us / self.isolated_us

    @property
    def lateness_us(self) -> float | None:
        """Signed lateness: completion minus deadline (negative = early).

        ``None`` for jobs without a deadline. The job misses exactly
        when its lateness is positive (finishing *at* the deadline
        meets it), so ``missed == (lateness_us > 0)`` always.
        """
        if self.deadline_us is None:
            return None
        return self.end_us - self.deadline_us

    @property
    def missed(self) -> bool | None:
        """Whether the job missed its deadline (``None`` = no deadline)."""
        lateness = self.lateness_us
        return None if lateness is None else lateness > 0.0

    @property
    def edp_j_s(self) -> float | None:
        """Energy-delay product: attributed joules × latency, in J·s
        (``None`` without energy attribution)."""
        if self.energy_j is None:
            return None
        return self.energy_j * self.latency_us * 1e-6

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready mapping, derived metrics included."""
        return {
            "jid": self.jid,
            "name": self.name,
            "tenant": self.tenant,
            "arrival_us": self.arrival_us,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "n_tasks": self.n_tasks,
            "isolated_us": self.isolated_us,
            "latency_us": self.latency_us,
            "queueing_us": self.queueing_us,
            "slowdown": self.slowdown,
            "deadline_us": self.deadline_us,
            "lateness_us": self.lateness_us,
            "missed": self.missed,
            "energy_j": self.energy_j,
            "edp_j_s": self.edp_j_s,
        }


def _p95(values: list[float]) -> float:
    """Nearest-rank p95, safe on empty/singleton inputs (0.0 when empty)."""
    return percentile(values, 0.95)


@dataclass
class StreamResult:
    """Outcome of one stream simulation: per-job results + the raw run.

    ``jobs`` holds the *completed* jobs only — under a control plane
    (``control`` is then set) rejected and evicted jobs never finish, so
    an all-rejected run carries an empty list. Every aggregate below is
    defined (and NaN-free) for any job count, including zero.
    """

    stream_name: str
    machine: str
    scheduler: str
    jobs: list[JobResult]
    sim: "SimResult" = field(repr=False)
    #: Admission/eviction outcome; ``None`` for uncontrolled runs.
    control: "ControlResult | None" = None

    @property
    def makespan_us(self) -> float:
        """Completion time of the whole merged run."""
        return self.sim.makespan

    @property
    def throughput_jobs_per_s(self) -> float:
        """Completed jobs per second of virtual time."""
        if self.makespan_us <= 0:
            return 0.0
        return len(self.jobs) / (self.makespan_us * 1e-6)

    @property
    def mean_latency_us(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.latency_us for j in self.jobs) / len(self.jobs)

    @property
    def p95_latency_us(self) -> float:
        return _p95([j.latency_us for j in self.jobs])

    @property
    def p99_latency_us(self) -> float:
        return percentile([j.latency_us for j in self.jobs], 0.99)

    @property
    def mean_queueing_us(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.queueing_us for j in self.jobs) / len(self.jobs)

    @property
    def deadline_jobs(self) -> list[JobResult]:
        """The completed jobs that carried a deadline."""
        return [j for j in self.jobs if j.deadline_us is not None]

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of deadline-tagged jobs that missed (0.0 when none)."""
        tagged = self.deadline_jobs
        if not tagged:
            return 0.0
        return sum(1 for j in tagged if j.missed) / len(tagged)

    @property
    def latenesses_us(self) -> list[float]:
        """Signed lateness of every deadline-tagged job (job order)."""
        return [j.lateness_us for j in self.deadline_jobs]

    @property
    def p50_lateness_us(self) -> float:
        return percentile(self.latenesses_us, 0.50)

    @property
    def p95_lateness_us(self) -> float:
        return percentile(self.latenesses_us, 0.95)

    @property
    def p99_lateness_us(self) -> float:
        return percentile(self.latenesses_us, 0.99)

    @property
    def jobs_energy_j(self) -> float:
        """Busy joules attributed to completed jobs (0.0 when the run
        predates energy attribution)."""
        return sum(j.energy_j or 0.0 for j in self.jobs)

    @property
    def total_energy_j(self) -> float | None:
        """Whole-run joules, idle draw included.

        Requires the engine's power subsystem (``SimConfig(power=...)``)
        — reads ``sim.energy``; ``None`` otherwise (use
        :attr:`jobs_energy_j` for the attribution-only busy total).
        """
        energy = self.sim.energy
        return energy.total_j if energy is not None else None

    @property
    def mean_edp_j_s(self) -> float:
        """Mean per-job energy-delay product, J·s (0.0 when no job
        carries energy attribution)."""
        vals = [j.edp_j_s for j in self.jobs if j.edp_j_s is not None]
        if not vals:
            return 0.0
        return sum(vals) / len(vals)

    @property
    def slowdowns(self) -> list[float] | None:
        """Per-job slowdowns, or ``None`` when baselines were skipped."""
        vals = [j.slowdown for j in self.jobs]
        if any(v is None for v in vals):
            return None
        return vals  # type: ignore[return-value]

    @property
    def mean_slowdown(self) -> float | None:
        vals = self.slowdowns
        return sum(vals) / len(vals) if vals else None

    @property
    def max_slowdown(self) -> float | None:
        vals = self.slowdowns
        return max(vals) if vals else None

    @property
    def fairness(self) -> float:
        """Jain index over slowdowns (latencies without baselines)."""
        vals = self.slowdowns
        if vals is None:
            vals = [j.latency_us for j in self.jobs]
        return jain_fairness_index(vals)

    @property
    def tenant_fairness(self) -> float:
        """Jain index over per-tenant mean slowdowns (mean latencies
        when baselines were skipped): how evenly *tenants* — rather than
        individual jobs — shared the node. 1.0 for zero or one tenant."""
        grouped: dict[str, list[JobResult]] = {}
        for job in self.jobs:
            grouped.setdefault(job.tenant, []).append(job)
        means: list[float] = []
        for mine in grouped.values():
            slows = [j.slowdown for j in mine]
            if slows and all(s is not None for s in slows):
                means.append(sum(slows) / len(slows))  # type: ignore[arg-type]
            else:
                means.append(sum(j.latency_us for j in mine) / len(mine))
        return jain_fairness_index(means)

    def per_tenant(self) -> dict[str, dict[str, float]]:
        """Per-tenant aggregates: job count, mean latency/queueing, and
        mean slowdown when baselines were run."""
        grouped: dict[str, list[JobResult]] = {}
        for job in self.jobs:
            grouped.setdefault(job.tenant, []).append(job)
        out: dict[str, dict[str, float]] = {}
        for tenant, mine in grouped.items():
            entry = {
                "jobs": float(len(mine)),
                "mean_latency_us": sum(j.latency_us for j in mine) / len(mine),
                "mean_queueing_us": sum(j.queueing_us for j in mine) / len(mine),
            }
            slows = [j.slowdown for j in mine]
            if all(s is not None for s in slows):
                entry["mean_slowdown"] = sum(slows) / len(slows)  # type: ignore[arg-type]
            tagged = [j for j in mine if j.deadline_us is not None]
            if tagged:
                entry["n_deadline_jobs"] = float(len(tagged))
                entry["deadline_miss_rate"] = (
                    sum(1 for j in tagged if j.missed) / len(tagged)
                )
            energies = [j.energy_j for j in mine if j.energy_j is not None]
            if energies:
                entry["energy_j"] = sum(energies)
                edps = [j.edp_j_s for j in mine if j.edp_j_s is not None]
                entry["mean_edp_j_s"] = sum(edps) / len(edps)
            out[tenant] = entry
        return out

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready report: stream-level stats plus every job."""
        return {
            "stream": self.stream_name,
            "machine": self.machine,
            "scheduler": self.scheduler,
            "n_jobs": len(self.jobs),
            "makespan_us": self.makespan_us,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "mean_latency_us": self.mean_latency_us,
            "p95_latency_us": self.p95_latency_us,
            "mean_queueing_us": self.mean_queueing_us,
            "p99_latency_us": self.p99_latency_us,
            "mean_slowdown": self.mean_slowdown,
            "max_slowdown": self.max_slowdown,
            "n_deadline_jobs": len(self.deadline_jobs),
            "deadline_miss_rate": self.deadline_miss_rate,
            "p50_lateness_us": self.p50_lateness_us,
            "p95_lateness_us": self.p95_lateness_us,
            "p99_lateness_us": self.p99_lateness_us,
            "fairness": self.fairness,
            "tenant_fairness": self.tenant_fairness,
            "jobs_energy_j": self.jobs_energy_j,
            "total_energy_j": self.total_energy_j,
            "mean_edp_j_s": self.mean_edp_j_s,
            "per_tenant": self.per_tenant(),
            "control": self.control.as_dict() if self.control else None,
            "jobs": [j.as_dict() for j in self.jobs],
        }
