"""Compile a :class:`~repro.workload.stream.JobStream` into one program.

The engine schedules exactly one :class:`~repro.runtime.stf.Program`
per run, with dense task ids in submission order. :func:`merge_stream`
therefore *relinks* every job's graph into a composite program:

* tasks are copied with fresh dense ids, ordered by (arrival, jid) —
  the order the STF main thread would have submitted them in;
* data handles are copied per job with fresh ids (tenants never share
  application data, only the machine);
* ``Job.after`` chains become sink→source dependency edges, so
  closed-loop clients pace themselves structurally;
* every task inherits its job's arrival as a *release time*, which the
  engine's submission loop uses to reveal it only once the clock gets
  there — schedulers see an online workload without any API change.

The copies leave the original per-job programs untouched, so they stay
independently simulable (that is what isolated-baseline slowdowns run).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.data import DataHandle
from repro.runtime.stf import Program
from repro.runtime.task import Task
from repro.workload.stream import JobStream


@dataclass(frozen=True)
class JobSpan:
    """Where one job landed inside the merged program.

    Task ids are dense per job: the job owns exactly
    ``[first_tid, first_tid + n_tasks)``.
    """

    jid: int
    name: str
    tenant: str
    arrival_us: float
    first_tid: int
    n_tasks: int
    qos: str = "burstable"


class StreamProgram(Program):
    """A merged stream: a normal program plus per-job provenance."""

    def __init__(
        self,
        tasks: list[Task],
        handles: list[DataHandle],
        name: str,
        release_times: list[float],
        jobs: tuple[JobSpan, ...],
    ) -> None:
        super().__init__(tasks, handles, name=name, release_times=release_times)
        self.jobs = jobs

    def span_of_tid(self, tid: int) -> JobSpan:
        """The job span owning task ``tid``."""
        for span in self.jobs:
            if span.first_tid <= tid < span.first_tid + span.n_tasks:
                return span
        raise KeyError(f"tid {tid} is outside every job span")


def merge_stream(stream: JobStream) -> StreamProgram:
    """Relink ``stream`` into one composite :class:`StreamProgram`."""
    ordered = sorted(stream.jobs, key=lambda j: (j.arrival_us, j.jid))
    tasks: list[Task] = []
    handles: list[DataHandle] = []
    releases: list[float] = []
    spans: list[JobSpan] = []
    sinks_of_jid: dict[int, list[Task]] = {}

    for job in ordered:
        prog = job.program
        first_tid = len(tasks)
        hmap: dict[int, DataHandle] = {}
        for h in prog.handles:
            clone = DataHandle(
                len(handles), h.size, home_node=h.home_node,
                label=f"j{job.jid}:{h.label}", key=h.key,
            )
            handles.append(clone)
            hmap[h.hid] = clone
        tmap: dict[int, Task] = {}
        for t in prog.tasks:
            clone_task = Task(
                len(tasks), t.type_name,
                [(hmap[h.hid], mode) for h, mode in t.accesses],
                flops=t.flops,
                implementations=t.implementations,
                priority=t.priority,
                tag=t.tag,
            )
            tasks.append(clone_task)
            releases.append(job.arrival_us)
            tmap[t.tid] = clone_task
        for t in prog.tasks:
            clone_task = tmap[t.tid]
            clone_task.preds = [tmap[p.tid] for p in t.preds]
            clone_task.succs = [tmap[s.tid] for s in t.succs]
        sinks_of_jid[job.jid] = [tmap[t.tid] for t in prog.tasks if not t.succs]
        if job.after is not None:
            # Chain edges point backward in the merged order (JobStream
            # validates `after` precedes), preserving the topological
            # task-id order downstream analyses rely on.
            pred_sinks = sinks_of_jid[job.after]
            for clone_task in (tmap[t.tid] for t in prog.tasks if not t.preds):
                for sink in pred_sinks:
                    sink.succs.append(clone_task)
                    clone_task.preds.append(sink)
        spans.append(JobSpan(
            jid=job.jid,
            name=job.name or prog.name,
            tenant=job.tenant,
            arrival_us=job.arrival_us,
            first_tid=first_tid,
            n_tasks=len(prog.tasks),
            qos=job.qos,
        ))

    for t in tasks:
        t.n_unfinished_preds = len(t.preds)
    return StreamProgram(
        tasks, handles,
        name=f"stream:{stream.name}",
        release_times=releases,
        jobs=tuple(spans),
    )
