"""Compile a :class:`~repro.workload.stream.JobStream` into one program.

The engine schedules exactly one :class:`~repro.runtime.stf.Program`
per run, with dense task ids in submission order. :func:`merge_stream`
therefore *relinks* every job's graph into a composite program:

* tasks are copied with fresh dense ids, ordered by (arrival, jid) —
  the order the STF main thread would have submitted them in;
* data handles are copied per job with fresh ids (tenants never share
  application data, only the machine);
* ``Job.after`` chains become sink→source dependency edges, so
  closed-loop clients pace themselves structurally;
* every task inherits its job's arrival as a *release time*, which the
  engine's submission loop uses to reveal it only once the clock gets
  there — schedulers see an online workload without any API change;
* jobs with a relative ``deadline_us`` stamp the absolute deadline
  (``arrival + deadline``) onto every cloned task, which deadline-aware
  schedulers and the stream miss-rate report consume. A task that
  already carried its own deadline keeps the tighter of the two (its
  deadline shifts by the arrival, like its release). ``Task.resources``
  names pass through verbatim: resources form one *global* contention
  domain, so two jobs naming the same lock genuinely exclude each other.

The copies leave the original per-job programs untouched, so they stay
independently simulable (that is what isolated-baseline slowdowns run).
The clone path is deliberately low-level (``Task.__new__`` plus direct
slot writes, index-based relinking over the dense per-job tids): at the
million-task scale of ``bench_stream.py --million`` the straightforward
``Task(...)``-per-clone merge dominated setup cost.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.runtime.data import DataHandle
from repro.runtime.stf import Program
from repro.runtime.task import Task, TaskState
from repro.workload.stream import JobStream

_INF = float("inf")


@dataclass(frozen=True)
class JobSpan:
    """Where one job landed inside the merged program.

    Task ids are dense per job: the job owns exactly
    ``[first_tid, first_tid + n_tasks)``. ``deadline_us`` is the job's
    *absolute* completion deadline on the simulated clock (``inf`` when
    the job has none).
    """

    jid: int
    name: str
    tenant: str
    arrival_us: float
    first_tid: int
    n_tasks: int
    qos: str = "burstable"
    deadline_us: float = _INF


class StreamProgram(Program):
    """A merged stream: a normal program plus per-job provenance."""

    def __init__(
        self,
        tasks: list[Task],
        handles: list[DataHandle],
        name: str,
        release_times: list[float],
        jobs: tuple[JobSpan, ...],
    ) -> None:
        super().__init__(tasks, handles, name=name, release_times=release_times)
        self.jobs = jobs
        # Spans are dense and ordered by first_tid, so membership is a
        # bisect over the start offsets rather than a linear scan
        # (per-task provenance on 50k-job streams was quadratic).
        self._first_tids = [span.first_tid for span in jobs]

    def span_of_tid(self, tid: int) -> JobSpan:
        """The job span owning task ``tid``."""
        i = bisect_right(self._first_tids, tid) - 1
        if i >= 0:
            span = self.jobs[i]
            if span.first_tid <= tid < span.first_tid + span.n_tasks:
                return span
        raise KeyError(f"tid {tid} is outside every job span")


def _clone_handle(h: DataHandle, hid: int, prefix: str) -> DataHandle:
    """Fast structural copy of ``h`` with a fresh id and job-tagged label.

    Bypasses ``DataHandle.__init__`` (the source handle already
    validated size/home_node) — at a million tasks the constructor's
    validation and coercion were a measurable slice of merge time.
    """
    c = DataHandle.__new__(DataHandle)
    c.hid = hid
    c.size = h.size
    c.home_node = h.home_node
    c.label = prefix + h.label
    c.key = h.key
    c.valid_nodes = {h.home_node}
    c._in_flight = {}
    c._pins = {}
    return c


def _clone_task(
    t: Task,
    tid: int,
    hmap: list[DataHandle] | dict[int, DataHandle],
    job_deadline: float,
    arrival: float,
) -> Task:
    """Fast structural copy of ``t`` into the merged id space.

    Bypasses ``Task.__init__``: the source task already validated its
    fields, and its ``_reads``/``_writes`` splits are reused through the
    handle map instead of re-scanning access modes.
    """
    c = Task.__new__(Task)
    c.tid = tid
    c.type_name = t.type_name
    c.accesses = [(hmap[h.hid], mode) for h, mode in t.accesses]
    c.flops = t.flops
    c.implementations = t.implementations
    c.priority = t.priority
    c.tag = t.tag
    c.resources = t.resources
    own = t.deadline_us
    if own == _INF:
        c.deadline_us = job_deadline
    else:
        shifted = arrival + own
        c.deadline_us = shifted if shifted < job_deadline else job_deadline
    c.preds = []
    c.succs = []
    c.n_unfinished_preds = 0
    c.state = TaskState.SUBMITTED
    c.sched = {}
    c._reads = tuple(hmap[h.hid] for h in t._reads)
    c._writes = tuple(hmap[h.hid] for h in t._writes)
    return c


def merge_stream(stream: JobStream) -> StreamProgram:
    """Relink ``stream`` into one composite :class:`StreamProgram`."""
    ordered = sorted(stream.jobs, key=lambda j: (j.arrival_us, j.jid))
    tasks: list[Task] = []
    handles: list[DataHandle] = []
    releases: list[float] = []
    spans: list[JobSpan] = []
    # Sink lists are only consumed by `after` chains — skip the per-job
    # sink scan entirely on plain streams.
    chained = any(job.after is not None for job in ordered)
    sinks_of_jid: dict[int, list[Task]] = {}

    for job in ordered:
        prog = job.program
        first_tid = len(tasks)
        arrival = job.arrival_us
        prefix = f"j{job.jid}:"
        # Dense hids (every TaskFlow-built program) let the handle map be
        # a plain list indexed by hid instead of a dict.
        hmap: list[DataHandle] | dict[int, DataHandle]
        if all(h.hid == i for i, h in enumerate(prog.handles)):
            hmap = [
                _clone_handle(h, len(handles) + i, prefix)
                for i, h in enumerate(prog.handles)
            ]
            handles.extend(hmap)
        else:
            hmap = {}
            for h in prog.handles:
                clone = _clone_handle(h, len(handles), prefix)
                handles.append(clone)
                hmap[h.hid] = clone
        job_deadline = (
            arrival + job.deadline_us if job.deadline_us is not None else _INF
        )
        # TaskFlow assigns dense tids in submission order, which lets the
        # relink below index `tasks[first_tid + local_tid]` directly; a
        # hand-built program with sparse tids falls back to a dict map.
        dense = all(t.tid == i for i, t in enumerate(prog.tasks))
        for t in prog.tasks:
            tasks.append(_clone_task(t, len(tasks), hmap, job_deadline, arrival))
            releases.append(arrival)
        if dense:
            for t in prog.tasks:
                clone_task = tasks[first_tid + t.tid]
                clone_task.preds = [tasks[first_tid + p.tid] for p in t.preds]
                clone_task.succs = [tasks[first_tid + s.tid] for s in t.succs]
            clone_of = lambda orig: tasks[first_tid + orig.tid]  # noqa: E731
        else:
            tmap = {
                t.tid: tasks[first_tid + i] for i, t in enumerate(prog.tasks)
            }
            for t in prog.tasks:
                clone_task = tmap[t.tid]
                clone_task.preds = [tmap[p.tid] for p in t.preds]
                clone_task.succs = [tmap[s.tid] for s in t.succs]
            clone_of = lambda orig, _m=tmap: _m[orig.tid]  # noqa: E731
        if chained:
            sinks_of_jid[job.jid] = [
                clone_of(t) for t in prog.tasks if not t.succs
            ]
            if job.after is not None:
                # Chain edges point backward in the merged order (JobStream
                # validates `after` precedes), preserving the topological
                # task-id order downstream analyses rely on.
                pred_sinks = sinks_of_jid[job.after]
                for clone_task in (
                    clone_of(t) for t in prog.tasks if not t.preds
                ):
                    for sink in pred_sinks:
                        sink.succs.append(clone_task)
                        clone_task.preds.append(sink)
        spans.append(JobSpan(
            jid=job.jid,
            name=job.name or prog.name,
            tenant=job.tenant,
            arrival_us=arrival,
            first_tid=first_tid,
            n_tasks=len(prog.tasks),
            qos=job.qos,
            deadline_us=job_deadline,
        ))

    for t in tasks:
        t.n_unfinished_preds = len(t.preds)
    return StreamProgram(
        tasks, handles,
        name=f"stream:{stream.name}",
        release_times=releases,
        jobs=tuple(spans),
    )
