"""Dmda — the dequeue model made data-aware (StarPU ``dmda``).

Extends :class:`~repro.schedulers.dm.Dm` by adding the estimated data
transfer time to the fitness (so a fast GPU loses its edge when the
inputs live in host RAM) and by prefetching the inputs of each assigned
task toward its target memory node as soon as the assignment is decided
— the push-time-mapping advantage the paper contrasts with MultiPrio's
pop-time mapping in Section VI-A.
"""

from __future__ import annotations

from repro.schedulers.dm import Dm


class Dmda(Dm):
    """Data-aware dequeue model: fitness includes transfer estimates."""

    name = "dmda"
    data_aware = True
    prefetch = True
