"""Scheduling policies: the StarPU baselines MultiPrio is compared to.

All policies implement :class:`repro.schedulers.base.Scheduler` and are
interchangeable in the simulator. MultiPrio itself lives in
:mod:`repro.core.multiprio` (it is the paper's contribution) but is
re-exported here and registered under ``"multiprio"``; it is resolved
lazily to avoid a package-import cycle (multiprio derives from
:class:`repro.schedulers.base.Scheduler`).
"""

from repro.schedulers.base import Scheduler
from repro.schedulers.eager import Eager
from repro.schedulers.random_sched import RandomScheduler
from repro.schedulers.ws import WorkStealing, LocalityWorkStealing
from repro.schedulers.dm import Dm
from repro.schedulers.dmda import Dmda
from repro.schedulers.dmdas import Dmdas
from repro.schedulers.heteroprio import HeteroPrio
from repro.schedulers.auto_heteroprio import AutoHeteroPrio

__all__ = [
    "Scheduler",
    "Eager",
    "RandomScheduler",
    "WorkStealing",
    "LocalityWorkStealing",
    "Dm",
    "Dmda",
    "Dmdas",
    "HeteroPrio",
    "AutoHeteroPrio",
    "MultiPrio",
    "make_scheduler",
    "register_scheduler",
    "scheduler_names",
    "parse_sched_opts",
]

_LAZY = {
    "MultiPrio",
    "make_scheduler",
    "register_scheduler",
    "scheduler_names",
    "parse_sched_opts",
}


def __getattr__(name: str):
    """Resolve MultiPrio and the registry lazily (import-cycle guard)."""
    if name == "MultiPrio":
        from repro.core.multiprio import MultiPrio

        return MultiPrio
    if name in _LAZY:
        from repro.schedulers import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
