"""Scheduling policies: MultiPrio and the StarPU baselines it is
compared to.

All policies implement :class:`repro.schedulers.base.Scheduler` and are
interchangeable in the simulator. MultiPrio (the paper's contribution)
lives in :mod:`repro.schedulers.multiprio` and is registered under
``"multiprio"``; the historical ``repro.core.multiprio`` import path is
kept as a shim.
"""

from repro.schedulers.base import Scheduler
from repro.schedulers.eager import Eager
from repro.schedulers.random_sched import RandomScheduler
from repro.schedulers.ws import WorkStealing, LocalityWorkStealing
from repro.schedulers.dm import Dm
from repro.schedulers.dmda import Dmda
from repro.schedulers.dmdas import Dmdas
from repro.schedulers.heteroprio import HeteroPrio
from repro.schedulers.auto_heteroprio import AutoHeteroPrio
from repro.schedulers.multiqueue import MultiQueue
from repro.schedulers.multiprio import MultiPrio

__all__ = [
    "Scheduler",
    "Eager",
    "RandomScheduler",
    "WorkStealing",
    "LocalityWorkStealing",
    "Dm",
    "Dmda",
    "Dmdas",
    "HeteroPrio",
    "AutoHeteroPrio",
    "MultiQueue",
    "MultiPrio",
    "make_scheduler",
    "register_scheduler",
    "scheduler_names",
    "parse_sched_opts",
]

_LAZY = {
    "make_scheduler",
    "register_scheduler",
    "scheduler_names",
    "parse_sched_opts",
}


def __getattr__(name: str):
    """Resolve the registry lazily (import-cycle guard)."""
    if name in _LAZY:
        from repro.schedulers import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
