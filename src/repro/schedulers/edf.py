"""EDF: earliest-deadline-first, the classic real-time baseline.

Workers take the ready task with the smallest absolute deadline they can
execute (ties broken by submission order). Tasks without a deadline
(``deadline_us = inf``) sort last, so a mixed workload runs its
deadline-tagged jobs first and degrades to FIFO-by-tid for the rest.

EDF is optimal on a single processor under preemption; here it is
neither (non-preemptive, heterogeneous workers, no data awareness), so
it serves as the deadline-aware floor the deadline-boosted MultiPrio
variant should beat on miss rate *and* makespan — the ``rt`` experiment
measures exactly that.
"""

from __future__ import annotations

import heapq

from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler


class EDF(Scheduler):
    """Central deadline-ordered queue shared by all workers."""

    name = "edf"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, Task]] = []

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._heap = []

    def push(self, task: Task) -> None:
        heapq.heappush(self._heap, (task.deadline_us, task.tid, task))

    def pop(self, worker: Worker) -> Task | None:
        # Usually the most urgent task matches; otherwise scan in
        # deadline order for the first task this worker can execute
        # (e.g. a GPU-only task facing a CPU worker), putting the
        # skipped prefix back.
        heap = self._heap
        skipped: list[tuple[float, int, Task]] = []
        found: Task | None = None
        while heap:
            item = heapq.heappop(heap)
            if item[2].can_exec(worker.arch):
                found = item[2]
                break
            skipped.append(item)
        for item in skipped:
            heapq.heappush(heap, item)
        return found
