"""The scheduler interface: StarPU's PUSH/POP contract.

Every policy — MultiPrio and all baselines — implements this interface
and is driven identically by the engine:

* ``push(task)`` is called once per task, the moment its dependencies are
  all released (the task is *ready*);
* ``pop(worker)`` is called whenever ``worker`` is idle; returning ``None``
  parks the worker until new work is pushed or a completion occurs;
* ``force_pop(worker)`` is a liveness escape hatch the engine only uses
  if every worker is idle, nothing is running and ready tasks remain —
  a correct policy should virtually never be force-popped (the engine
  counts occurrences in :class:`~repro.runtime.engine.SimResult`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.events import DecisionEvent
from repro.runtime.task import Task
from repro.runtime.worker import Worker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.bus import Observability
    from repro.runtime.engine import SchedContext


class Scheduler:
    """Base class; concrete policies override ``push`` and ``pop``."""

    #: Registry/reporting name; subclasses override.
    name = "base"

    #: Observability channel, bound by the engine each run (None = off).
    obs: "Observability | None" = None

    def __init__(self) -> None:
        self.ctx: "SchedContext" = None  # type: ignore[assignment]
        self.obs = None

    def setup(self, ctx: "SchedContext") -> None:
        """Bind to a run context and reset all per-run state.

        Called by the engine at the start of every simulation; subclasses
        overriding this must call ``super().setup(ctx)``.
        """
        self.ctx = ctx

    # -- hook points -------------------------------------------------------

    def push(self, task: Task) -> None:
        """A task just became ready."""
        raise NotImplementedError

    def push_batch(self, tasks: list[Task]) -> None:
        """A coalesced batch of tasks became ready (batch-mode engine).

        The default preserves per-event semantics exactly: one
        ``push()`` per task, in buffer (reveal) order. Policies with a
        cheaper bulk insert (heapify instead of n pushes, amortized
        score computation) override this; the override must leave the
        policy in a state equivalent to n individual pushes.
        """
        push = self.push
        for task in tasks:
            push(task)

    def pop(self, worker: Worker) -> Task | None:
        """``worker`` is idle; return a ready task for it, or ``None``."""
        raise NotImplementedError

    def force_pop(self, worker: Worker) -> Task | None:
        """Last-resort pop ignoring any admission heuristics."""
        return self.pop(worker)

    # -- optional hooks -------------------------------------------------------

    def on_task_done(self, task: Task, worker: Worker) -> None:
        """Called when a task completes (before successors are pushed)."""

    def retract(self, task: Task) -> bool:
        """Withdraw a READY task the policy holds (control-plane eviction).

        The engine calls this when the control plane evicts a job whose
        tasks were already pushed: a policy that can cleanly remove (or
        tombstone) its queue entries returns ``True`` and the engine
        cancels the task; returning ``False`` (the default) leaves the
        task to run — only unrevealed work of the job is cancelled then.
        A ``True`` return means the policy will never hand this task to
        a worker again.
        """
        return False

    def on_task_failed(self, task: Task, worker: Worker) -> None:
        """A transient fault aborted ``task`` on ``worker``.

        The engine has already rolled the task back (its scheduler
        scratch is cleared) and will re-push it after a backoff; policies
        override this to fix internal estimates or counters.
        """

    def on_worker_failed(self, worker: Worker) -> list[Task]:
        """``worker`` suffered a fail-stop failure and is gone for good.

        The engine has already removed it from the context's topology
        views (``ctx.workers``, ``ctx.available_archs``, ...). Policies
        holding per-worker or per-node queues must purge entries the dead
        worker owned and return the ready tasks that are no longer
        reachable through any surviving queue — the engine re-pushes
        them. The default (for policies with only global queues) purges
        nothing.
        """
        return []

    def check(self) -> list[str]:
        """Self-validate internal data structures; return violations.

        Called by the opt-in invariant checker
        (:mod:`repro.check.invariants`) after every simulation event when
        ``check_invariants=True``. Policies with invariants worth
        guarding (heap order, counter exactness, ...) override this and
        return a human-readable description per violated invariant; an
        empty list means consistent. Never called on the default
        zero-overhead path, so implementations may be thorough rather
        than fast.
        """
        return []

    # -- decision provenance ---------------------------------------------------

    @property
    def decisions_enabled(self) -> bool:
        """Whether the engine asked for decision-provenance events."""
        obs = self.obs
        return obs is not None and obs.decisions

    def record_decision(
        self,
        action: str,
        task: Task | None = None,
        worker: Worker | None = None,
        **fields,
    ) -> None:
        """Publish one :class:`~repro.obs.events.DecisionEvent`.

        No-op unless the engine enabled decision-level observability, so
        policies may call it unconditionally at their decision points;
        hot loops that must also avoid building the keyword arguments
        should guard on :attr:`decisions_enabled` first.
        """
        obs = self.obs
        if obs is None or not obs.decisions:
            return
        obs.emit(
            DecisionEvent(
                t=self.ctx.now,
                scheduler=self.name,
                action=action,
                tid=-1 if task is None else task.tid,
                type_name="" if task is None else task.type_name,
                wid=-1 if worker is None else worker.wid,
                node=-1 if worker is None else worker.memory_node,
                **fields,
            )
        )

    def record_queue_depth(self, key: str, depth: float) -> None:
        """Sample a queue-depth gauge (no-op when observability is off)."""
        obs = self.obs
        if obs is not None:
            obs.metrics.gauge(key).set(depth, self.ctx.now)

    def stats(self) -> dict[str, float]:
        """Per-run counters for reporting (evictions, steals, ...)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
