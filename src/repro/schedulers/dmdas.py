"""Dmdas — data-aware dequeue model with priority-sorted queues.

The paper's primary baseline (Section II): per-worker queues are sorted
by the **user-provided task priorities**, and among the highest-priority
tasks a worker prefers those whose data is already resident on its
memory node. When the application sets no priorities, every task has
priority 0 and Dmdas degrades to Dmda with ready-order queues — exactly
how the paper describes running it on TBFMM and QR_MUMPS.
"""

from __future__ import annotations

import heapq

from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.schedulers.dmda import Dmda


class Dmdas(Dmda):
    """Dmda + priority-sorted per-worker queues + locality tiebreak."""

    name = "dmdas"

    def __init__(self, locality_window: int = 8) -> None:
        super().__init__()
        self.locality_window = max(1, int(locality_window))
        self._heaps: dict[int, list[tuple[int, int, Task]]] = {}
        self._seq = 0

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._heaps = {w.wid: [] for w in ctx.workers}
        self._seq = 0

    def _enqueue(self, task: Task, worker: Worker) -> None:
        heapq.heappush(self._heaps[worker.wid], (-task.priority, self._seq, task))
        self._seq += 1

    def pop(self, worker: Worker) -> Task | None:
        heap = self._heaps[worker.wid]
        if not heap:
            if self._expected_free[worker.wid] < self.ctx.now:
                self._expected_free[worker.wid] = self.ctx.now
            return None
        # Among the head-priority tasks (bounded window), prefer the one
        # with the most bytes already on this worker's memory node.
        top_prio = heap[0][0]
        window: list[tuple[int, int, Task]] = []
        while heap and heap[0][0] == top_prio and len(window) < self.locality_window:
            window.append(heapq.heappop(heap))
        node = worker.memory_node
        best_i = 0
        best_local = -1
        for i, (_, _, task) in enumerate(window):
            local = self.ctx.bytes_on_node(task, node)
            if local > best_local:
                best_local = local
                best_i = i
        chosen = window.pop(best_i)
        for item in window:
            heapq.heappush(heap, item)
        task = chosen[2]
        if self.decisions_enabled:
            self.record_decision(
                "pop",
                task=task,
                worker=worker,
                pop_condition=True,
                locality_bytes=float(best_local),
                delta=self.ctx.estimate(task, worker.arch),
                candidates=tuple(t.tid for _, _, t in window) + (task.tid,),
                reason=f"priority:{-top_prio}",
            )
        return task

    def force_pop(self, worker: Worker) -> Task | None:
        for heap in self._heaps.values():
            for i, (_, _, task) in enumerate(heap):
                if task.can_exec(worker.arch):
                    heap.pop(i)
                    heapq.heapify(heap)
                    return task
        return None

    def on_worker_failed(self, worker: Worker) -> list[Task]:
        """Purge the dead worker's priority heap; the engine re-pushes
        its tasks and push re-assigns them to surviving workers."""
        heap = self._heaps.get(worker.wid)
        if not heap:
            return []
        orphans = [task for _, _, task in heap]
        heap.clear()
        return orphans
