"""MultiQueue — relaxed priority scheduling via k sloppy queues.

The MultiQueue of Rihani, Sanders & Dementiev (and the refined analysis
of Postnikova et al. [NeurIPS'21, "Multi-queues can be state-of-the-art
priority schedulers"]) trades strict priority order for throughput: each
architecture owns ``k`` independent binary heaps; a push inserts into
the shorter of two sampled heaps, a pop takes the better top of two
sampled heaps. Both operations are O(log(n/k)) with no contention point,
and the *rank error* of a pop (how many strictly-better tasks were
passed over) is bounded in expectation.

In this simulator the draw is sequential, so the win is constant-factor
(smaller heaps, no score computation, no admission machinery) rather
than contention relief — which is exactly what the batched hot path
needs from a baseline: the cheapest priority-respecting policy that
still orders work. Determinism is preserved by a per-run xorshift64
generator seeded from a constructor parameter, never from global RNG.

Tasks enter the heap group of every architecture they can execute on;
entries elsewhere are invalidated lazily through a per-push token (the
same tombstoning idea MultiPrio uses for its per-node duplicates).
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.runtime.task import Task, TaskState
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler
from repro.utils.validation import ValidationError

_M64 = (1 << 64) - 1

#: Length of the precomputed two-choice pair table (power of two so the
#: cursor wraps with a mask).
_PAIR_TABLE = 4096


class MultiQueue(Scheduler):
    """k sloppy heaps per architecture, two-choice insert and pop.

    Parameters
    ----------
    k:
        Heaps per architecture group. ``k=1`` degenerates to one exact
        heap per architecture (zero rank error); larger ``k`` relaxes
        pop order for cheaper operations.
    seed:
        Seed of the per-run xorshift64 stream driving the two choices.
        Runs with equal seeds are bit-identical.
    """

    name = "multiqueue"

    def __init__(self, k: int = 4, seed: int = 0) -> None:
        super().__init__()
        k = int(k)
        if k < 1:
            raise ValidationError(f"multiqueue k must be >= 1, got {k}")
        self.k = k
        self.seed = int(seed)
        self._arch_order: tuple[str, ...] = ()
        self._groups: dict[str, list[list[tuple[int, int, int, Task]]]] = {}
        self._sizes: dict[str, list[int]] = {}
        self._seq = 0
        self._pairs: list[tuple[int, int]] = [(0, 0)]
        self._cursor = 0
        self._n_live = 0
        self._n_stale_discards = 0
        self._n_retractions = 0

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._arch_order = ctx.available_archs
        self._groups = {a: [[] for _ in range(self.k)] for a in ctx.available_archs}
        self._sizes = {a: [0] * self.k for a in ctx.available_archs}
        self._seq = 0
        # Deterministic non-zero xorshift64 state derived from the seed
        # (SplitMix-style scramble so seed=0 still yields a full stream).
        rng = ((self.seed * 0x9E3779B97F4A7C15) ^ 0xBF58476D1CE4E5B9) & _M64 | 1
        # The two choices come from a seeded table of index pairs cycled
        # by a cursor: a table lookup costs a fraction of a Python-level
        # xorshift step, and two-choice balance only needs the pair
        # sequence to be seed-deterministic and well spread, not
        # cryptographically long — the cycle (4096 draws) dwarfs k.
        k = self.k
        pairs = []
        for _ in range(_PAIR_TABLE):
            rng ^= (rng << 13) & _M64
            rng ^= rng >> 7
            rng ^= (rng << 17) & _M64
            pairs.append((rng % k, (rng >> 32) % k))
        self._pairs = pairs
        self._cursor = 0
        self._n_live = 0
        self._n_stale_discards = 0
        self._n_retractions = 0

    # -- staleness ---------------------------------------------------------

    @staticmethod
    def _is_live(task: Task, token: int) -> bool:
        return (
            task.state is TaskState.READY and task.sched.get("mq_token") == token
        )

    def _purge_top(self, heap: list[tuple[int, int, int, Task]], arch: str, idx: int):
        """Drop stale entries off ``heap``'s top; return the live top."""
        sizes = self._sizes[arch]
        ready = TaskState.READY
        while heap:
            entry = heap[0]
            task = entry[3]
            # _is_live() inlined: this loop runs on every pop.
            if task.state is ready and task.sched.get("mq_token") == entry[2]:
                return entry
            heappop(heap)
            sizes[idx] -= 1
            self._n_stale_discards += 1
        return None

    # -- hooks -------------------------------------------------------------

    def push(self, task: Task) -> None:
        seq = self._seq
        self._seq = seq + 1
        task.sched["mq_token"] = seq
        entry = (-task.priority, seq, seq, task)
        placed = False
        implementations = task.implementations
        pairs = self._pairs
        cursor = self._cursor
        # Iterate in the platform's stable arch order, not over the
        # implementations frozenset (whose order varies with the process
        # hash seed) — the two-choice draws must replay identically.
        for arch in self._arch_order:
            if arch not in implementations:
                continue
            group = self._groups.get(arch)
            if group is None:
                continue
            i, j = pairs[cursor & (_PAIR_TABLE - 1)]
            cursor += 1
            sizes = self._sizes[arch]
            if sizes[j] < sizes[i]:
                i = j
            heappush(group[i], entry)
            sizes[i] += 1
            placed = True
        self._cursor = cursor
        if placed:
            self._n_live += 1
        else:
            # No available architecture runs this task; forget the token
            # so check() does not count it as held.
            del task.sched["mq_token"]

    def pop(self, worker: Worker) -> Task | None:
        group = self._groups.get(worker.arch)
        if group is None:
            return None
        cursor = self._cursor
        self._cursor = cursor + 1
        i, j = self._pairs[cursor & (_PAIR_TABLE - 1)]
        best_idx = -1
        best = None
        top = self._purge_top(group[i], worker.arch, i)
        if top is not None:
            best, best_idx = top, i
        if j != i:
            top = self._purge_top(group[j], worker.arch, j)
            if top is not None and (best is None or top < best):
                best, best_idx = top, j
        if best is None:
            # Exact fallback: scan the whole group so a non-empty group
            # never parks a worker (pop is None only when truly empty,
            # which lets the default force_pop double as the rescue).
            for idx in range(self.k):
                top = self._purge_top(group[idx], worker.arch, idx)
                if top is not None and (best is None or top < best):
                    best, best_idx = top, idx
            if best is None:
                return None
        task = best[3]
        heappop(group[best_idx])
        self._sizes[worker.arch][best_idx] -= 1
        del task.sched["mq_token"]  # tombstones every duplicate entry
        self._n_live -= 1
        return task

    def retract(self, task: Task) -> bool:
        if "mq_token" not in task.sched:
            return False
        del task.sched["mq_token"]
        self._n_live -= 1
        self._n_retractions += 1
        return True

    def on_worker_failed(self, worker: Worker) -> list[Task]:
        """Drop an architecture's group once its last worker dies.

        Entries usually survive as duplicates in other architectures'
        groups; tasks whose only live entries sat in the dead group are
        returned for the engine to recover.
        """
        arch = worker.arch
        if arch in self.ctx.available_archs:
            return []  # surviving workers keep serving this group
        group = self._groups.pop(arch, None)
        self._sizes.pop(arch, None)
        if group is None:
            return []
        orphans: list[Task] = []
        for heap in group:
            for entry in heap:
                task = entry[3]
                if not self._is_live(task, entry[2]):
                    continue
                if any(a in self._groups for a in task.implementations):
                    continue  # still reachable through a duplicate entry
                del task.sched["mq_token"]
                self._n_live -= 1
                orphans.append(task)
        return orphans

    # -- validation / reporting --------------------------------------------

    def check(self) -> list[str]:
        violations: list[str] = []
        live_tids: set[int] = set()
        for arch, group in self._groups.items():
            for idx, heap in enumerate(group):
                if self._sizes[arch][idx] != len(heap):
                    violations.append(
                        f"multiqueue: size cache {self._sizes[arch][idx]} != "
                        f"len {len(heap)} for {arch}[{idx}]"
                    )
                for pos, entry in enumerate(heap):
                    if pos > 0 and heap[(pos - 1) >> 1] > entry:
                        violations.append(
                            f"multiqueue: heap order violated in {arch}[{idx}]"
                        )
                    if self._is_live(entry[3], entry[2]):
                        live_tids.add(entry[3].tid)
        if len(live_tids) != self._n_live:
            violations.append(
                f"multiqueue: live count {self._n_live} != "
                f"{len(live_tids)} distinct live tasks"
            )
        return violations

    def stats(self) -> dict[str, float]:
        return {
            "mq_stale_discards": float(self._n_stale_discards),
            "mq_retractions": float(self._n_retractions),
        }
