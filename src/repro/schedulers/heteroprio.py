"""HeteroPrio — per-task-type bucket scheduling (Agullo et al. [3]).

Ready tasks are dispatched into FIFO buckets, one per task *type*. Each
architecture consumes the buckets in its own order: the order encodes the
per-type priorities that, in the original semi-automatic scheduler, the
application expert provides (typically: GPUs first drain the types they
accelerate most, CPUs the types they handle comparatively well).

This is the scheduler whose "priority per type hides per-task
information" limitation motivates MultiPrio. The automatic variant that
derives the orders from observed affinities (Flint et al. [9]) lives in
:mod:`repro.schedulers.auto_heteroprio`.
"""

from __future__ import annotations

from collections import deque

from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler


class HeteroPrio(Scheduler):
    """Bucket-per-type scheduler with per-architecture consumption orders.

    Parameters
    ----------
    type_orders:
        Mapping ``arch -> [type_name, ...]``: the order in which workers
        of that architecture scan buckets. Types missing from an order
        are scanned afterwards, in first-seen order, so an incomplete
        specification still drains every bucket.
    steal_guard:
        Maximum acceptable slowdown for taking a task whose best
        architecture is elsewhere (the original HeteroPrio's
        acceptable-slowdown check when consuming non-preferred buckets).
        ``None`` disables the guard.
    """

    name = "heteroprio"

    def __init__(
        self,
        type_orders: dict[str, list[str]] | None = None,
        steal_guard: float | None = 15.0,
    ) -> None:
        super().__init__()
        self.type_orders = {a: list(ts) for a, ts in (type_orders or {}).items()}
        self.steal_guard = steal_guard
        self._buckets: dict[str, deque[Task]] = {}
        self._seen_types: list[str] = []

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._buckets = {}
        self._seen_types = []

    # -- hooks -------------------------------------------------------------

    def push(self, task: Task) -> None:
        bucket = self._buckets.get(task.type_name)
        if bucket is None:
            bucket = deque()
            self._buckets[task.type_name] = bucket
            self._seen_types.append(task.type_name)
        bucket.append(task)

    def _scan_order(self, arch: str) -> list[str]:
        explicit = self.type_orders.get(arch, [])
        tail = [t for t in self._seen_types if t not in explicit]
        return [t for t in explicit if t in self._buckets] + tail

    def _guard_allows(self, task: Task, worker: Worker) -> bool:
        """Acceptable-slowdown check for non-best workers."""
        if self.steal_guard is None:
            return True
        ctx = self.ctx
        best = ctx.best_arch(task)
        if worker.arch == best:
            return True
        return ctx.estimate(task, worker.arch) <= self.steal_guard * ctx.estimate(
            task, best
        )

    def pop(self, worker: Worker) -> Task | None:
        dec = self.decisions_enabled
        for type_name in self._scan_order(worker.arch):
            bucket = self._buckets.get(type_name)
            if not bucket:
                continue
            head = bucket[0]
            if not head.can_exec(worker.arch):
                continue
            if not self._guard_allows(head, worker):
                if dec:
                    self.record_decision(
                        "skip",
                        task=head,
                        worker=worker,
                        pop_condition=False,
                        delta=self.ctx.estimate(head, worker.arch),
                        reason=f"steal-guard bucket:{type_name}",
                    )
                continue
            task = bucket.popleft()
            if dec:
                self.record_decision(
                    "pop",
                    task=task,
                    worker=worker,
                    pop_condition=True,
                    delta=self.ctx.estimate(task, worker.arch),
                    reason=f"bucket:{type_name}",
                )
            return task
        return None

    def force_pop(self, worker: Worker) -> Task | None:
        for bucket in self._buckets.values():
            for _ in range(len(bucket)):
                task = bucket.popleft()
                if task.can_exec(worker.arch):
                    return task
                bucket.append(task)
        return None

    def on_worker_failed(self, worker: Worker) -> list[Task]:
        """Buckets are global (per task type), so no queued task is bound
        to the dead worker; when the last worker of an architecture dies,
        drop its scan order so stale per-arch state does not linger."""
        if not self.ctx.workers_of_arch(worker.arch):
            self.type_orders.pop(worker.arch, None)
        return []
