"""The MultiPrio scheduler (the paper's contribution).

Data structure: one binary max-heap per memory node; every ready task is
inserted into the heap of each node whose processing units can execute
it, scored by (gain, criticality) — Alg. 1. An idle worker selects the
most *local* task among the top-priority window of its node's heap, then
passes the **pop condition**: the best-architecture workers always take
their tasks; a slower worker is admitted only when the best workers have
enough work queued (``best_remaining_work``) to cover the slower
execution — otherwise the task is **evicted** from the slower node's
heap — Alg. 2, Section V-D.

Hyper-parameters: locality window ``n = 10`` (the paper's value) and the
score threshold ``ε``. The paper reports ``ε = 0.8``; on our
[0, 1]-normalized scores (whose spread is compressed by the running
``hd`` maximum) that admits nearly the whole window, and the data-hosted
metric then systematically routes the *largest* tasks to the slow
workers. The default here is ``ε = 0`` — locality breaks score *ties*
(which are plentiful: all same-type, same-size tasks score equally) —
and the ε sensitivity is covered by the ablation bench.

Ablation knobs used by the benchmark suite:

* ``eviction=False`` — disable the pop condition entirely (Fig. 4 top);
* ``use_locality=False`` — always take the heap root;
* ``use_criticality=False`` — drop the NOD secondary key;
* ``drain_aware=True`` (default) — the pop condition compares the best
  workers' remaining work *divided by their worker count* (a drain-time
  reading of "the best worker is sufficiently busy") against the
  candidate's δ; ``False`` compares the raw sum, a literal reading of
  Alg. 2's pseudocode. The drain-time variant dominates empirically and
  matches the paper's reported behaviour (slow workers only help when
  the fast ones are genuinely backlogged); the raw variant is kept as an
  ablation (`multiprio-rawbrw`).
"""

from __future__ import annotations

from functools import partial

from repro.core.criticality import NODTracker, nod
from repro.core.gain import GainTracker
from repro.core.heap import HeapEntry, RelaxedTaskHeap, TaskHeap
from repro.core.locality import ls_sdh2
from repro.runtime.task import Task, TaskState
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler
from repro.utils.validation import ValidationError, check_in_range, check_positive


class MultiPrio(Scheduler):
    """Dynamic multi-priority scheduler for heterogeneous nodes."""

    name = "multiprio"

    def __init__(
        self,
        *,
        locality_n: int = 10,
        locality_eps: float = 0.0,
        max_tries: int = 10,
        eviction: bool = True,
        use_locality: bool = True,
        use_criticality: bool = True,
        arch_filtered_nod: bool = False,
        drain_aware: bool = True,
        brw_safety: float = 1.0,
        slowdown_cap: float | None = 60.0,
        evict_on_reject: bool = False,
        relaxed: int = 0,
        deadline_boost: float | None = None,
    ) -> None:
        super().__init__()
        self.locality_n = int(check_positive("locality_n", locality_n))
        self.locality_eps = check_in_range("locality_eps", locality_eps, 0.0, 1.0)
        self.max_tries = int(check_positive("max_tries", max_tries))
        self.eviction = eviction
        self.use_locality = use_locality
        self.use_criticality = use_criticality
        self.arch_filtered_nod = arch_filtered_nod
        self.drain_aware = drain_aware
        # Safety factor on the pop condition: a slow worker is admitted
        # only when the best workers' drain time exceeds `brw_safety x`
        # its own execution time. >1 biases borderline decisions toward
        # the fast units (the remaining-work refinement of Section VII).
        self.brw_safety = check_positive("brw_safety", brw_safety)
        # Comparative-advantage guard: a non-best worker never takes a
        # task on which it is more than `slowdown_cap` times slower than
        # the best architecture, however large the backlog. Encodes the
        # Section VII observation that letting a CPU run a kernel "20x
        # slower" can wreck the makespan. None disables the guard.
        if slowdown_cap is not None:
            check_positive("slowdown_cap", slowdown_cap)
        self.slowdown_cap = slowdown_cap
        # Rejection handling: True removes the task from the requesting
        # node's heap (the literal Alg. 2 eviction — the task can never
        # run on this node again); False skips it, leaving it available
        # for when the best workers' backlog grows. Skipping preserves
        # the eviction mechanism's end-of-run benefit (Fig. 4) without
        # bleeding the slow-architecture heaps dry in steady state.
        self.evict_on_reject = evict_on_reject
        # Relaxed node heaps: `relaxed=k` (k >= 2) swaps every per-node
        # TaskHeap for a RelaxedTaskHeap of k sloppy sub-heaps with
        # two-choice operations (Postnikova et al.). The locality window
        # then samples a pair of sub-heaps instead of the exact top-n,
        # trading bounded rank error for O(log(n/k)) operations. 0 (the
        # default) keeps the paper's exact heaps.
        relaxed = int(relaxed)
        if relaxed < 0 or relaxed == 1:
            raise ValidationError(
                f"relaxed must be 0 (exact) or >= 2 sub-heaps, got {relaxed}"
            )
        self.relaxed = relaxed
        # Deadline awareness: a ready task whose slack (deadline - now,
        # measured at push time) falls below `deadline_boost` µs is
        # promoted above every regular task — its gain score is replaced
        # by 2 + urgency (urgency in [0, 1], higher the tighter the
        # slack), strictly dominating the [0, 1] range of normal scores
        # while keeping criticality as the secondary key. Tasks without
        # a deadline (inf) are never boosted; None disables the knob.
        if deadline_boost is not None:
            check_positive("deadline_boost", deadline_boost)
        self.deadline_boost = deadline_boost

        self.heaps: dict[int, TaskHeap] = {}
        self.best_remaining_work: dict[int, float] = {}
        self.ready_tasks_count: dict[int, int] = {}
        self._gain = GainTracker()
        self._nod: dict[str, NODTracker] = {}
        self._n_evictions = 0
        self._n_skips = 0
        self._n_rejections = 0
        self._n_stale_discards = 0
        self._n_task_failures = 0
        self._n_retractions = 0
        # Drain-adjusted best-remaining-work per best arch, memoized
        # between BRW mutations (cleared in push/_take/on_worker_failed).
        self._brw_memo: dict[str, float] = {}
        # Whether push-time δ values may be reused at pop time (set from
        # the perf model's `stable_estimates` promise in setup()).
        self._stable_deltas = False

    # -- lifecycle -------------------------------------------------------

    def setup(self, ctx) -> None:
        """Reset all per-run state and build one heap per memory node."""
        super().setup(ctx)
        self.heaps = {}
        self.best_remaining_work = {}
        self.ready_tasks_count = {}
        self._gain.reset()
        self._nod = {arch: NODTracker() for arch in ctx.available_archs}
        self._n_evictions = 0
        self._n_skips = 0
        self._n_rejections = 0
        self._n_stale_discards = 0
        self._n_task_failures = 0
        self._n_retractions = 0
        self._brw_memo = {}
        self._stable_deltas = bool(getattr(ctx.perfmodel, "stable_estimates", False))
        for node in ctx.platform.nodes:
            if ctx.platform.workers_of_node(node.mid):
                # Staleness is tracked with entry tombstones (marked in
                # `_take`), so the heaps need no task-level predicate.
                # The discard callback carries the node id so counters
                # stay exact even when the task's scratch (and with it
                # the entry map) was wiped by a fault rollback.
                if self.relaxed:
                    self.heaps[node.mid] = RelaxedTaskHeap(
                        self.relaxed,
                        node=node.mid,
                        on_discard=partial(self._on_discard, node.mid),
                    )
                else:
                    self.heaps[node.mid] = TaskHeap(
                        node=node.mid,
                        on_discard=partial(self._on_discard, node.mid),
                    )
                self.best_remaining_work[node.mid] = 0.0
                self.ready_tasks_count[node.mid] = 0

    @staticmethod
    def _is_stale(task: Task) -> bool:
        """Duplicate entries of a task already taken elsewhere are stale."""
        return task.state is not TaskState.READY or task.sched.get("mp_taken", False)

    def _on_discard(self, node: int, entry: HeapEntry) -> None:
        """A stale duplicate was dropped: fix counters and the entry map."""
        if node in self.ready_tasks_count:
            self.ready_tasks_count[node] -= 1
            if self.obs is not None:
                self.record_queue_depth(
                    f"heap_depth.node{node}", self.ready_tasks_count[node]
                )
        entry_map = entry.task.sched.get("mp_entries")
        if entry_map is not None and entry_map.get(node) is entry:
            del entry_map[node]
        self._n_stale_discards += 1

    # -- PUSH (Alg. 1) ------------------------------------------------------

    def push(self, task: Task) -> None:
        """Alg. 1: score the ready task and insert it into every heap
        whose processing units can execute it."""
        ctx = self.ctx
        archs = ctx.exec_archs(task)
        deltas = {a: ctx.estimate(task, a) for a in archs}
        gains = self._gain.observe_and_score(deltas)
        best_arch = ctx.best_arch(task)
        boost_gain = self._boost_gain(task)
        # The raw NOD is arch-independent unless filtering is on; the
        # per-arch trackers below still observe it in node order.
        raw_nod = 0.0
        if self.use_criticality and not self.arch_filtered_nod:
            raw_nod = nod(task)

        brw_nodes: list[int] = []
        entries: dict[int, HeapEntry] = {}
        enabled_nodes: list[int] = []
        for node in ctx.platform.nodes:
            mid = node.mid
            heap = self.heaps.get(mid)
            if heap is None or not task.can_exec(node.arch):
                continue
            gain = gains[node.arch] if boost_gain is None else boost_gain
            if self.use_criticality:
                if self.arch_filtered_nod:
                    arch = node.arch
                    raw = nod(task, lambda t, _a=arch: t.can_exec(_a))
                else:
                    raw = raw_nod
                prio = self._nod[node.arch].observe_and_score(raw)
            else:
                prio = 0.0
            entries[mid] = heap.insert(task, gain, prio)
            enabled_nodes.append(mid)
            self.ready_tasks_count[mid] += 1
            if node.arch == best_arch:
                self.best_remaining_work[mid] += deltas[best_arch]
                brw_nodes.append(mid)

        task.sched["mp_nodes"] = enabled_nodes
        task.sched["mp_entries"] = entries
        task.sched["mp_brw_nodes"] = brw_nodes
        task.sched["mp_best_delta"] = deltas[best_arch]
        task.sched["mp_deltas"] = deltas
        self._brw_memo.clear()
        if self.obs is not None:
            for mid in enabled_nodes:
                self.record_queue_depth(
                    f"heap_depth.node{mid}", self.ready_tasks_count[mid]
                )

    def _boost_gain(self, task: Task) -> float | None:
        """The promoted gain of a slack-critical task (None = no boost).

        Slack is measured once, at push time — consistent with the
        paper's push-time scoring: a task's priority is fixed when it
        becomes ready, not re-evaluated while it queues.
        """
        boost = self.deadline_boost
        if boost is None:
            return None
        slack = task.deadline_us - self.ctx.now
        if slack > boost:
            return None
        urgency = 1.0 - slack / boost
        if urgency > 1.0:  # already past the deadline: maximally urgent
            urgency = 1.0
        return 2.0 + urgency

    def push_batch(self, tasks: list[Task]) -> None:
        """Bulk Alg. 1 for the batch-mode engine.

        Bit-identical to ``len(tasks)`` sequential :meth:`push` calls:
        the score trackers observe every task in buffer order and each
        node heap receives its entries in exactly the sequential
        insertion order. A per-heap heapify would be asymptotically
        nicer but changes the physical slot layout, and
        ``top_candidates`` exposes the first-n slots — the candidate
        windows (and with them the schedule) would differ. The savings
        are amortization instead: loop-invariant context/tracker/heap
        lookups are hoisted out of the per-task loop, the BRW memo is
        cleared once instead of per task, and queue-depth gauges are
        sampled once per touched node instead of once per (task, node).
        """
        if len(tasks) < 2:
            for task in tasks:
                self.push(task)
            return
        ctx = self.ctx
        available = ctx.available_archs
        # `ctx.estimate` / `ctx.exec_archs` / `ctx.best_arch` are pure
        # forwarders over the perf model and the availability list; the
        # loop below inlines them (same values, same tie-breaking order)
        # to shed one call frame per (task, arch).
        estimate = ctx.perfmodel.estimate
        best_arch_of = ctx.best_arch
        observe_gain = self._gain.observe_and_score
        boost_gain_of = self._boost_gain if self.deadline_boost is not None else None
        use_crit = self.use_criticality
        arch_filtered = self.arch_filtered_nod
        counts = self.ready_tasks_count
        brw = self.best_remaining_work
        # (mid, arch, bound heap insert, bound NOD observe) per node.
        lanes = [
            (
                n.mid,
                n.arch,
                self.heaps[n.mid].insert,
                self._nod[n.arch].observe_and_score if use_crit else None,
            )
            for n in ctx.platform.nodes
            if n.mid in self.heaps
        ]
        touched: set[int] = set()
        for task in tasks:
            can_exec = task.can_exec
            sched = task.sched
            archs = [a for a in available if can_exec(a)]
            deltas = {a: estimate(task, a) for a in archs}
            gains = observe_gain(deltas)
            best_arch = sched.get("_best_arch")
            if best_arch is None:
                if archs:
                    best_arch = min(archs, key=deltas.__getitem__)
                    sched["_best_arch"] = best_arch
                else:
                    best_arch = best_arch_of(task)  # raises SchedulingError
            boost_gain = None if boost_gain_of is None else boost_gain_of(task)
            raw_nod = 0.0
            if use_crit and not arch_filtered:
                raw_nod = nod(task)
            brw_nodes: list[int] = []
            enabled_nodes: list[int] = []
            entries: dict[int, HeapEntry] = {}
            for mid, arch, insert, observe_nod in lanes:
                if not can_exec(arch):
                    continue
                gain = gains[arch] if boost_gain is None else boost_gain
                if observe_nod is not None:
                    if arch_filtered:
                        raw = nod(task, lambda t, _a=arch: t.can_exec(_a))
                    else:
                        raw = raw_nod
                    prio = observe_nod(raw)
                else:
                    prio = 0.0
                entries[mid] = insert(task, gain, prio)
                enabled_nodes.append(mid)
                counts[mid] += 1
                if arch == best_arch:
                    brw[mid] += deltas[best_arch]
                    brw_nodes.append(mid)
            sched["mp_nodes"] = enabled_nodes
            sched["mp_entries"] = entries
            sched["mp_brw_nodes"] = brw_nodes
            sched["mp_best_delta"] = deltas[best_arch]
            sched["mp_deltas"] = deltas
            touched.update(enabled_nodes)
        self._brw_memo.clear()
        if self.obs is not None:
            for mid in sorted(touched):
                self.record_queue_depth(f"heap_depth.node{mid}", counts[mid])

    # -- POP (Alg. 2) ----------------------------------------------------------

    def pop(self, worker: Worker) -> Task | None:
        """Alg. 2: locality-refined selection gated by the pop condition."""
        heap = self.heaps.get(worker.memory_node)
        if heap is None:
            return None
        if self.evict_on_reject:
            return self._pop_evicting(heap, worker)
        # Skip-on-reject (the default): rejections leave the heap
        # untouched and staleness cannot change mid-pop, so one candidate
        # window per pop suffices. Walking it in decreasing key order
        # replays exactly the rejection sequence the per-try re-scanning
        # loop would produce, at a fraction of the cost.
        window = heap.top_candidates(max(self.locality_n, self.max_tries + 1))
        if not window:
            return None
        dec = self.decisions_enabled
        tries = 0
        rejected: set[int] = set()
        for top in sorted(window, key=HeapEntry.key, reverse=True):
            if tries >= self.max_tries:
                break
            # Cheap first pass: the admission test; the (costlier)
            # locality refinement only runs for a candidate that will
            # actually be taken.
            admitted, brw, delta = self._admission(top.task, worker)
            if not admitted:
                # Skip: leave the entry for when the best workers'
                # backlog grows; try the next prioritized candidate.
                rejected.add(id(top))
                self._n_skips += 1
                tries += 1
                if dec:
                    self.record_decision(
                        "skip",
                        task=top.task,
                        worker=worker,
                        gain=top.gain,
                        nod=top.prio,
                        pop_condition=False,
                        brw=brw,
                        delta=delta,
                    )
                continue
            live = [e for e in window if id(e) not in rejected]
            entry = self._locality_refine(top, live, worker)
            # Candidate provenance must be derived before _take mutates
            # best_remaining_work (the admission tests would differ).
            cands = self._considered_candidates(top, live, worker) if dec else ()
            self._remove_entry(heap, entry, worker.memory_node)
            self._take(entry.task)
            if dec:
                self._record_pop(entry, worker, brw, cands)
            return entry.task
        if tries:
            self._n_rejections += 1
        return None

    def _pop_evicting(self, heap: TaskHeap, worker: Worker) -> Task | None:
        """The ``evict_on_reject=True`` variant of :meth:`pop`.

        Every rejection physically removes the candidate from this
        node's heap (the literal Alg. 2 eviction; duplicates elsewhere
        keep the task alive), so the candidate window must be rebuilt
        after each mutation.
        """
        dec = self.decisions_enabled
        tries = 0
        while tries < self.max_tries:
            window = heap.top_candidates(max(self.locality_n, self.max_tries + 1))
            if not window:
                break
            top = max(window, key=HeapEntry.key)
            admitted, brw, delta = self._admission(top.task, worker)
            if not admitted:
                self._remove_entry(heap, top, worker.memory_node)
                self._n_evictions += 1
                tries += 1
                if dec:
                    self.record_decision(
                        "evict",
                        task=top.task,
                        worker=worker,
                        gain=top.gain,
                        nod=top.prio,
                        pop_condition=False,
                        brw=brw,
                        delta=delta,
                    )
                continue
            entry = self._locality_refine(top, window, worker)
            cands = self._considered_candidates(top, window, worker) if dec else ()
            self._remove_entry(heap, entry, worker.memory_node)
            self._take(entry.task)
            if dec:
                self._record_pop(entry, worker, brw, cands)
            return entry.task
        if tries:
            self._n_rejections += 1
        return None

    def _considered_candidates(
        self, top: HeapEntry, live: list[HeapEntry], worker: Worker
    ) -> tuple[int, ...]:
        """The candidate set :meth:`_locality_refine` actually weighed.

        ``top`` is always a candidate; every other entry must sit in the
        top-``n`` window, score within ε of ``top``, *and* pass the pop
        condition — entries rejected by the admission test were never
        considered and must not appear in the provenance record. Called
        before :meth:`_take` so the admission tests see the same
        ``best_remaining_work`` the refinement saw.
        """
        if not self.use_locality or len(live) == 1:
            return (top.task.tid,)
        threshold = top.gain - self.locality_eps
        cands = [top.task.tid]
        for e in live[: self.locality_n]:
            if e is top or e.gain < threshold:
                continue
            if not self._pop_condition(e.task, worker):
                continue
            cands.append(e.task.tid)
        return tuple(cands)

    def _record_pop(
        self,
        entry: HeapEntry,
        worker: Worker,
        brw: float | None,
        cands: tuple[int, ...],
    ) -> None:
        """Publish the decision-provenance record of a successful pop."""
        self.record_decision(
            "pop",
            task=entry.task,
            worker=worker,
            gain=entry.gain,
            nod=entry.prio,
            ls_sdh2=ls_sdh2(entry.task, worker.memory_node),
            pop_condition=True,
            brw=brw,
            delta=self.ctx.estimate(entry.task, worker.arch),
            candidates=cands,
        )

    def force_pop(self, worker: Worker) -> Task | None:
        """Liveness escape hatch: take the best live entry executable by
        ``worker`` from any heap, ignoring the pop condition. O(n) scan —
        the engine only calls this when the whole machine would stall."""
        for mid, heap in sorted(self.heaps.items()):
            live = [
                e
                for e in heap.top_candidates(len(heap))
                if e.task.can_exec(worker.arch)
            ]
            if live:
                entry = max(live, key=lambda e: e.key())
                self._remove_entry(heap, entry, mid)
                self._take(entry.task)
                self.record_decision(
                    "force-pop",
                    task=entry.task,
                    worker=worker,
                    gain=entry.gain,
                    nod=entry.prio,
                    pop_condition=True,
                    reason=f"stall rescue from node {mid}",
                )
                return entry.task
        return None

    # -- fault hooks -------------------------------------------------------------

    def on_task_failed(self, task: Task, worker: Worker) -> None:
        """Count the transient failure; the engine re-pushes the task
        (its duplicates were already invalidated when it was taken)."""
        self._n_task_failures += 1

    def retract(self, task: Task) -> bool:
        """Withdraw a READY task for a control-plane eviction.

        Reuses the exact take path: the task's heap entries are
        tombstoned (``HeapEntry.dead``) and its best-remaining-work
        contribution is released, so every counter the self-check audits
        stays consistent — a retraction is indistinguishable from a pop
        that never executes.
        """
        if task.state is not TaskState.READY or task.sched.get("mp_taken", False):
            return False
        self._take(task)
        self._n_retractions += 1
        return True

    def on_worker_failed(self, worker: Worker) -> list[Task]:
        """Drop the dead worker's node heap once its last worker dies.

        Entries of the dropped heap usually survive as duplicates in
        other nodes' heaps; tasks whose *only* live entry was on the dead
        node are returned for the engine to re-push.
        """
        self._brw_memo.clear()  # worker counts (drain divisor) changed
        mid = worker.memory_node
        if self.ctx.workers_of_node(mid):
            return []  # surviving streams keep serving this heap
        heap = self.heaps.pop(mid, None)
        if heap is None:
            return []
        orphans: list[Task] = []
        for entry in list(heap):
            task = entry.task
            entry_map = task.sched.get("mp_entries", {})
            entry_map.pop(mid, None)
            if not self._is_stale(task) and not entry_map:
                orphans.append(task)
        heap.clear()
        self.ready_tasks_count.pop(mid, None)
        self.best_remaining_work.pop(mid, None)
        return orphans

    # -- internals ---------------------------------------------------------------

    def _remove_entry(self, heap: TaskHeap, entry: HeapEntry, mid: int) -> None:
        heap.remove(entry)
        self.ready_tasks_count[mid] -= 1
        entry.task.sched.get("mp_entries", {}).pop(mid, None)
        if self.obs is not None:
            self.record_queue_depth(
                f"heap_depth.node{mid}", self.ready_tasks_count[mid]
            )

    def _take(self, task: Task) -> None:
        """Commit a task to execution: tombstone its duplicates and
        release its contribution to every best-architecture work counter.

        The tombstones are entry-level (``HeapEntry.dead``), so they
        survive a fault rollback: a task re-pushed after a transient
        failure gets fresh entries while its pre-failure duplicates stay
        dead instead of resurrecting.
        """
        task.sched["mp_taken"] = True
        for dup in task.sched.get("mp_entries", {}).values():
            dup.dead = True
        delta = task.sched.get("mp_best_delta", 0.0)
        for mid in task.sched.get("mp_brw_nodes", ()):  # eager, exact BRW
            if mid not in self.best_remaining_work:
                continue  # node lost to a worker failure
            self.best_remaining_work[mid] -= delta
            if self.best_remaining_work[mid] < 1e-9:
                self.best_remaining_work[mid] = 0.0
        task.sched["mp_brw_nodes"] = []
        self._brw_memo.clear()

    def _locality_refine(
        self, top: HeapEntry, live: list[HeapEntry], worker: Worker
    ) -> HeapEntry:
        """The locality-aware selection of Section V-C.

        Take the most prioritized admissible task unless another task in
        the window — within ε of its score, restricted to the top-``n``
        candidates, and itself admissible — is more local to the
        worker's memory node (LS_SDH², Eq. 3).
        """
        if not self.use_locality or len(live) == 1:
            return top
        threshold = top.gain - self.locality_eps
        best_entry = top
        best_score = ls_sdh2(top.task, worker.memory_node)
        for entry in live[: self.locality_n]:
            if entry is top or entry.gain < threshold:
                continue
            if not self._pop_condition(entry.task, worker):
                continue
            score = ls_sdh2(entry.task, worker.memory_node)
            if score > best_score or (
                score == best_score and entry.sort_key > best_entry.sort_key
            ):
                best_entry = entry
                best_score = score
        return best_entry

    def _pop_condition(self, task: Task, worker: Worker) -> bool:
        """Alg. 2's admission test (Section V-D).

        The best worker always takes the task. A slower worker is
        admitted only when the best workers' queued best-work exceeds the
        task's execution time on the slower worker — i.e. the fast units
        are busy enough that letting a slow unit help maintains DAG
        progress instead of stretching the makespan.
        """
        return self._admission(task, worker)[0]

    def _admission(self, task: Task, worker: Worker) -> tuple[bool, float | None, float]:
        """One admission test with its provenance.

        Returns ``(admitted, brw, delta)``: the verdict, the (drain-
        adjusted) best-remaining-work the test compared against (``None``
        on the branches that never read it — best-arch workers, eviction
        disabled, slowdown-cap rejections), and δ(t, worker.arch). The
        decision events published at ``record_level="decisions"`` carry
        exactly these values.
        """
        ctx = self.ctx
        best_arch = ctx.best_arch(task)
        # δ values were computed at push time; with a stable perf model
        # they are reused here, otherwise queried live (history models
        # legitimately drift between push and pop).
        deltas = task.sched["mp_deltas"] if self._stable_deltas else None
        delta = deltas[worker.arch] if deltas is not None else ctx.estimate(task, worker.arch)
        if worker.arch == best_arch:
            return True, None, delta
        if not self.eviction:
            return True, None, delta
        best_delta = (
            deltas[best_arch] if deltas is not None else ctx.estimate(task, best_arch)
        )
        if self.slowdown_cap is not None and delta > self.slowdown_cap * best_delta:
            return False, None, delta
        brw = self._brw_memo.get(best_arch)
        if brw is None:
            brw = max(
                (
                    self.best_remaining_work[node.mid]
                    for node in ctx.platform.nodes_of_arch(best_arch)
                    if node.mid in self.best_remaining_work
                ),
                default=0.0,
            )
            if self.drain_aware:
                n_best = max(1, ctx.n_workers(best_arch))
                brw /= n_best
            self._brw_memo[best_arch] = brw
        return brw > self.brw_safety * delta, brw, delta

    # -- reporting -------------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Per-run counters: skips, evictions, rejected pops, stale drops.

        ``skips`` counts pop-condition rejections that left the entry in
        the heap (the default skip-on-reject mode); ``evictions`` counts
        real Alg. 2 evictions that removed the entry
        (``evict_on_reject=True``); ``pop_rejections`` counts pops that
        ended empty-handed after at least one rejection.
        """
        return {
            "skips": float(self._n_skips),
            "evictions": float(self._n_evictions),
            "pop_rejections": float(self._n_rejections),
            "stale_discards": float(self._n_stale_discards),
            "task_failures": float(self._n_task_failures),
            "retractions": float(self._n_retractions),
        }

    # -- invariant self-check (repro.check) ---------------------------------

    def check(self) -> list[str]:
        """Structural self-validation for the invariant checker.

        Verifies heap order/positions, the per-node ready-entry counters
        against the physical heap sizes, and ``best_remaining_work``
        against the exact sum of best-arch δ over untaken pushed tasks.
        """
        problems: list[str] = []
        for mid, heap in self.heaps.items():
            try:
                heap.check_invariants()
            except AssertionError as exc:
                problems.append(f"heap[{mid}] structure: {exc}")
            counted = self.ready_tasks_count.get(mid)
            if counted != len(heap):
                problems.append(
                    f"ready_tasks_count[{mid}]={counted} but heap holds "
                    f"{len(heap)} entries"
                )
        expect: dict[int, float] = {mid: 0.0 for mid in self.best_remaining_work}
        seen: set[int] = set()
        for heap in self.heaps.values():
            for entry in heap:
                task = entry.task
                if entry.dead or self._is_stale(task) or task.tid in seen:
                    continue
                seen.add(task.tid)
                delta = task.sched.get("mp_best_delta", 0.0)
                for mid in task.sched.get("mp_brw_nodes", ()):
                    if mid in expect:
                        expect[mid] += delta
        for mid, want in expect.items():
            got = self.best_remaining_work[mid]
            if abs(got - want) > 1e-6 * max(1.0, abs(want)):
                problems.append(
                    f"best_remaining_work[{mid}]={got!r} but the live "
                    f"entries sum to {want!r}"
                )
        return problems
