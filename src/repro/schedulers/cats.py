"""CATS — criticality-aware task scheduling (Chronaki et al. [17]).

From the paper's related work: CATS "dynamically assigns critical tasks
to fast cores in a heterogeneous multi-core". Ready tasks are classified
by their bottom level (longest flop-weighted path to a sink, computed
on demand over the submitted DAG): tasks whose bottom level is within
``critical_frac`` of the longest seen are *critical* and queue for the
fast architecture (largest mean throughput); the rest queue for the slow
ones. Idle workers drain their own class first and help the other class
from the appropriate end when empty.

Included as a third task-centric baseline; the paper compares against
its published results rather than re-running it, so no figure asserts
on CATS — it enriches the scheduler family for users of this library.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler
from repro.utils.validation import check_in_range


class CATS(Scheduler):
    """Criticality-aware scheduling: critical tasks go to fast units."""

    name = "cats"

    def __init__(self, critical_frac: float = 0.75) -> None:
        super().__init__()
        self.critical_frac = check_in_range("critical_frac", critical_frac, 0.0, 1.0)
        self._critical: list[tuple[float, int, Task]] = []  # max-heap by blevel
        self._normal: deque[Task] = deque()
        self._blevel: dict[int, float] = {}
        self._max_blevel = 0.0
        self._fast_arch = ""
        self._seq = 0

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._critical = []
        self._normal = deque()
        self._blevel = {}
        self._max_blevel = 0.0
        self._seq = 0
        # Fast architecture: the one with the fewest, biggest workers is
        # not knowable in the abstract; use mean default-kernel speed.
        self._fast_arch = "cuda" if "cuda" in ctx.available_archs else ctx.available_archs[0]

    # -- bottom levels -----------------------------------------------------

    def _bottom_level(self, task: Task) -> float:
        """Memoized flop-weighted bottom level over the submitted DAG.

        Iterative DFS: the STF front-end has already materialized every
        successor by the time a task becomes ready in practice, and any
        later-submitted successors would only raise criticality (the
        same partial-view caveat the paper accepts for NOD).
        """
        cached = self._blevel.get(task.tid)
        if cached is not None:
            return cached
        stack = [(task, False)]
        while stack:
            current, expanded = stack.pop()
            if current.tid in self._blevel:
                continue
            if expanded:
                best = max(
                    (self._blevel[s.tid] for s in current.succs),
                    default=0.0,
                )
                self._blevel[current.tid] = current.flops + best
            else:
                stack.append((current, True))
                for succ in current.succs:
                    if succ.tid not in self._blevel:
                        stack.append((succ, False))
        return self._blevel[task.tid]

    # -- hooks ---------------------------------------------------------------

    def push(self, task: Task) -> None:
        blevel = self._bottom_level(task)
        self._max_blevel = max(self._max_blevel, blevel)
        is_critical = (
            blevel >= self.critical_frac * self._max_blevel
            and task.can_exec(self._fast_arch)
        )
        if is_critical:
            heapq.heappush(self._critical, (-blevel, self._seq, task))
            self._seq += 1
        else:
            self._normal.append(task)

    def pop(self, worker: Worker) -> Task | None:
        if worker.arch == self._fast_arch:
            if self._critical:
                return heapq.heappop(self._critical)[2]
            return self._pop_normal(worker)
        task = self._pop_normal(worker)
        if task is not None:
            return task
        # Slow worker helps with the *least* critical of the fast queue.
        if self._critical:
            least = max(self._critical)  # smallest blevel in a min-heap of negatives
            if least[2].can_exec(worker.arch):
                self._critical.remove(least)
                heapq.heapify(self._critical)
                return least[2]
        return None

    def _pop_normal(self, worker: Worker) -> Task | None:
        for _ in range(len(self._normal)):
            task = self._normal.popleft()
            if task.can_exec(worker.arch):
                return task
            self._normal.append(task)
        return None
