"""Work stealing (StarPU ``ws``): per-worker deques with stealing.

A task released by a completion is queued on the releasing worker
(producer locality); source tasks are round-robined. Idle workers pop
their own deque LIFO and steal FIFO from the most-loaded victim. This is
the resource-centric family of Section II — no heterogeneity awareness,
which is exactly why the paper excludes it from GPU comparisons.
"""

from __future__ import annotations

from collections import deque

from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler


class WorkStealing(Scheduler):
    """Per-worker deques; steal from the most loaded victim."""

    name = "ws"

    def __init__(self) -> None:
        super().__init__()
        self._deques: dict[int, deque[Task]] = {}
        self._releasing_worker: Worker | None = None
        self._rr = 0
        self._n_steals = 0

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._deques = {w.wid: deque() for w in ctx.workers}
        self._releasing_worker = None
        self._rr = 0
        self._n_steals = 0

    # -- placement -----------------------------------------------------------

    def on_task_done(self, task: Task, worker: Worker) -> None:
        # Successors pushed right after this callback land on `worker`.
        self._releasing_worker = worker

    def _owner_for(self, task: Task) -> Worker:
        ctx = self.ctx
        releasing = self._releasing_worker
        if releasing is not None and ctx.can_exec(task, releasing.arch):
            return releasing
        eligible = [w for w in ctx.workers if ctx.can_exec(task, w.arch)]
        worker = eligible[self._rr % len(eligible)]
        self._rr += 1
        return worker

    def push(self, task: Task) -> None:
        self._deques[self._owner_for(task).wid].append(task)

    # -- consumption -------------------------------------------------------------

    def _steal_victims(self, thief: Worker) -> list[Worker]:
        """Victims ordered most-loaded first."""
        others = [w for w in self.ctx.workers if w.wid != thief.wid]
        others.sort(key=lambda w: -len(self._deques[w.wid]))
        return others

    def pop(self, worker: Worker) -> Task | None:
        own = self._deques[worker.wid]
        while own:
            task = own.pop()  # LIFO on own deque
            if task.can_exec(worker.arch):
                return task
            own.appendleft(task)
            break
        for victim in self._steal_victims(worker):
            queue = self._deques[victim.wid]
            for _ in range(len(queue)):
                task = queue.popleft()  # FIFO steal
                if task.can_exec(worker.arch):
                    self._n_steals += 1
                    return task
                queue.append(task)
        return None

    def stats(self) -> dict[str, float]:
        return {"steals": float(self._n_steals)}


class LocalityWorkStealing(WorkStealing):
    """``lws``: steal from same-memory-node neighbours first."""

    name = "lws"

    def _steal_victims(self, thief: Worker) -> list[Worker]:
        others = [w for w in self.ctx.workers if w.wid != thief.wid]
        # Same node first, then by load.
        others.sort(
            key=lambda w: (w.memory_node != thief.memory_node, -len(self._deques[w.wid]))
        )
        return others
