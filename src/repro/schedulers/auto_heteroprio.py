"""Automatic HeteroPrio — affinity-derived per-type bucket orders.

Implements the essence of Flint et al. [9]: instead of asking the user
for per-type priorities, derive each architecture's bucket order from
the observed per-type speedups. GPUs scan types by decreasing
``δ(cpu)/δ(gpu)`` (drain what they accelerate most first); CPUs scan by
increasing speedup (leave the GPU-loving types for last). Orders are
recomputed lazily as new types appear, so the scheduler remains fully
dynamic — this is the "automated HeteroPrio" configuration the paper's
experimental section compares MultiPrio against.
"""

from __future__ import annotations

from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.schedulers.heteroprio import HeteroPrio


class AutoHeteroPrio(HeteroPrio):
    """HeteroPrio with speedup-derived bucket orders."""

    name = "auto-heteroprio"

    def __init__(self) -> None:
        super().__init__(type_orders={})
        # Per type: mean estimate per arch (first-encounter snapshot,
        # updated as a running mean over pushed tasks).
        self._delta_sums: dict[str, dict[str, float]] = {}
        self._delta_counts: dict[str, int] = {}
        self._orders_dirty = True

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._delta_sums = {}
        self._delta_counts = {}
        self._orders_dirty = True

    def push(self, task: Task) -> None:
        sums = self._delta_sums.get(task.type_name)
        if sums is None:
            sums = {arch: 0.0 for arch in self.ctx.available_archs}
            self._delta_sums[task.type_name] = sums
            self._delta_counts[task.type_name] = 0
            self._orders_dirty = True
        for arch in self.ctx.available_archs:
            if task.can_exec(arch):
                sums[arch] += self.ctx.estimate(task, arch)
        self._delta_counts[task.type_name] += 1
        super().push(task)

    def on_worker_failed(self, worker: Worker) -> list[Task]:
        """A lost architecture changes every speedup-derived order."""
        self._orders_dirty = True
        return super().on_worker_failed(worker)

    def _speedup(self, type_name: str, arch: str) -> float:
        """Mean speedup of ``arch`` over the slowest arch for this type.

        Types an architecture cannot execute get speedup 0 so they sort
        to the end of that architecture's order.
        """
        sums = self._delta_sums[type_name]
        count = max(1, self._delta_counts[type_name])
        mine = sums.get(arch, 0.0) / count
        if mine <= 0.0:
            return 0.0
        worst = max(s / count for s in sums.values() if s > 0.0)
        return worst / mine

    def _scan_order(self, arch: str) -> list[str]:
        if self._orders_dirty:
            for a in self.ctx.available_archs:
                known = [t for t in self._seen_types if t in self._delta_sums]
                accel = [t for t in known if self._speedup(t, a) > 0.0]
                rest = [t for t in known if self._speedup(t, a) <= 0.0]
                # GPUs (any accelerator arch, i.e. not the slowest-per-type
                # arch in general): drain the most-accelerated types first;
                # CPUs the least-accelerated. "Accelerator" here means the
                # arch achieves a mean speedup > 1 across known types.
                mean_speedup = (
                    sum(self._speedup(t, a) for t in accel) / len(accel)
                    if accel
                    else 1.0
                )
                reverse = mean_speedup > 1.0
                accel.sort(key=lambda t: self._speedup(t, a), reverse=reverse)
                self.type_orders[a] = accel + rest
            self._orders_dirty = False
        return super()._scan_order(arch)
