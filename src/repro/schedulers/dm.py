"""Dm — StarPU's "dequeue model" scheduler (a.k.a. heft-tm).

Push-time assignment: when a task becomes ready, estimate its completion
time on every worker (worker's expected availability + δ(t, a)) and
queue it on the minimizing worker. This is the dynamic-HEFT strategy the
paper's Section II describes; Dmda and Dmdas refine it with data-transfer
awareness and priority sorting.
"""

from __future__ import annotations

from collections import deque

from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler


class Dm(Scheduler):
    """Dequeue-model scheduler: HEFT-style expected-completion fitness."""

    name = "dm"

    #: Dm ignores transfer costs; Dmda overrides.
    data_aware = False
    #: Dm does not prefetch; Dmda/Dmdas do (assignment is known early).
    prefetch = False

    def __init__(self) -> None:
        super().__init__()
        self._queues: dict[int, deque[Task]] = {}
        self._expected_free: dict[int, float] = {}

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._queues = {w.wid: deque() for w in ctx.workers}
        self._expected_free = {w.wid: 0.0 for w in ctx.workers}

    # -- fitness -----------------------------------------------------------

    def _fitness(
        self, task: Task, worker: Worker, transfer_cache: dict[int, float] | None = None
    ) -> float:
        """Expected completion time of ``task`` on ``worker``.

        With data awareness the transfer term is overlapped with the
        queue-drain time (transfers are prefetched while earlier tasks
        execute), so the start estimate is a max, not a sum. The transfer
        term depends only on the memory node, so one push evaluates it
        once per node (``transfer_cache``), not once per worker.
        """
        ctx = self.ctx
        start = max(ctx.now, self._expected_free[worker.wid])
        if self.data_aware:
            node = worker.memory_node
            if transfer_cache is None:
                transfer = ctx.transfer_estimate(task, node)
            else:
                transfer = transfer_cache.get(node)
                if transfer is None:
                    transfer = ctx.transfer_estimate(task, node)
                    transfer_cache[node] = transfer
            start = max(start, ctx.now + transfer)
        return start + ctx.estimate(task, worker.arch)

    def _choose_worker(self, task: Task) -> Worker:
        ctx = self.ctx
        best: Worker | None = None
        best_fit = float("inf")
        transfer_cache: dict[int, float] = {}
        for worker in ctx.workers:
            if not ctx.can_exec(task, worker.arch):
                continue
            fit = self._fitness(task, worker, transfer_cache)
            if fit < best_fit:
                best_fit = fit
                best = worker
        assert best is not None, f"no worker can execute {task.name}"
        return best

    # -- hooks ---------------------------------------------------------------

    def push(self, task: Task) -> None:
        ctx = self.ctx
        worker = self._choose_worker(task)
        self._expected_free[worker.wid] = self._fitness(task, worker)
        self._enqueue(task, worker)
        if self.prefetch:
            ctx.prefetch(task, worker.memory_node)

    def _enqueue(self, task: Task, worker: Worker) -> None:
        self._queues[worker.wid].append(task)

    def pop(self, worker: Worker) -> Task | None:
        queue = self._queues[worker.wid]
        if queue:
            return queue.popleft()
        # Keep the availability estimate honest while idle.
        if self._expected_free[worker.wid] < self.ctx.now:
            self._expected_free[worker.wid] = self.ctx.now
        return None

    def force_pop(self, worker: Worker) -> Task | None:
        for queue in self._queues.values():
            for _ in range(len(queue)):
                task = queue.popleft()
                if task.can_exec(worker.arch):
                    return task
                queue.append(task)
        return None

    # -- fault hooks ----------------------------------------------------------

    def on_task_failed(self, task: Task, worker: Worker) -> None:
        """The planned completion charged into the worker's availability
        will never happen; let the estimate re-anchor on the clock."""
        if self._expected_free[worker.wid] < self.ctx.now:
            self._expected_free[worker.wid] = self.ctx.now

    def on_worker_failed(self, worker: Worker) -> list[Task]:
        """Push-time assignment binds tasks to workers: hand every task
        queued on the dead worker back to the engine for re-pushing
        (push re-runs the fitness over the surviving workers)."""
        queue = self._queues.get(worker.wid)
        if not queue:
            return []
        orphans = list(queue)
        queue.clear()
        return orphans
