"""Static HEFT — the classic offline list scheduler as a reference bound.

Topcuoglu et al.'s HEFT [15] with full-DAG knowledge: tasks are ranked
by upward rank (mean-execution-cost bottom level) and assigned, in rank
order, to the worker minimizing the earliest finish time including an
estimated transfer delay for each cross-node dependency edge.

This is *not* one of the paper's dynamic baselines — the paper's dm
family is its dynamic derivative — but it provides the standard offline
reference point: a dynamic scheduler that loses badly to static HEFT on
a DAG with accurate cost models is leaving performance on the table,
while beating it indicates it exploits runtime information (actual
completion order, data residency) the static schedule cannot.

The plan is computed lazily on the first pop (by then the whole program
has been submitted — our generators submit everything ahead, like
CHAMELEON); execution then simply follows the per-worker queues.
"""

from __future__ import annotations

from collections import deque

from repro.runtime.task import Task, TaskState
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler


class StaticHEFT(Scheduler):
    """Offline HEFT plan, replayed through the PUSH/POP interface."""

    name = "static-heft"

    def __init__(self) -> None:
        super().__init__()
        self._known: list[Task] = []
        self._planned = False
        self._queues: dict[int, deque[Task]] = {}

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._known = []
        self._planned = False
        self._queues = {w.wid: deque() for w in ctx.workers}

    # -- plan construction ----------------------------------------------------

    def _mean_cost(self, task: Task) -> float:
        archs = self.ctx.exec_archs(task)
        return sum(self.ctx.estimate(task, a) for a in archs) / len(archs)

    def _upward_ranks(self, tasks: list[Task]) -> dict[int, float]:
        ranks: dict[int, float] = {}
        # Iterative reverse-topological sweep (no recursion-depth limits).
        for task in reversed(self._topo(tasks)):
            best_succ = max(
                (self._comm_cost(task, s) + ranks[s.tid] for s in task.succs),
                default=0.0,
            )
            ranks[task.tid] = self._mean_cost(task) + best_succ
        return ranks

    @staticmethod
    def _topo(tasks: list[Task]) -> list[Task]:
        indeg = {t.tid: len(t.preds) for t in tasks}
        queue = deque(t for t in tasks if indeg[t.tid] == 0)
        order: list[Task] = []
        while queue:
            task = queue.popleft()
            order.append(task)
            for succ in task.succs:
                if succ.tid in indeg:
                    indeg[succ.tid] -= 1
                    if indeg[succ.tid] == 0:
                        queue.append(succ)
        return order

    def _comm_cost(self, producer: Task, consumer: Task) -> float:
        """Mean transfer estimate of the data shared along the edge."""
        shared = {h.hid for h in producer.handles(written=True)}
        nbytes = sum(h.size for h in consumer.handles(written=False) if h.hid in shared)
        if nbytes == 0:
            return 0.0
        # One representative PCIe-class link; refined per-assignment below.
        links = self.ctx.platform.transfers.links()
        if not links:
            return 0.0
        mean_bw = sum(l.bandwidth for l in links) / len(links)
        mean_lat = sum(l.latency for l in links) / len(links)
        return mean_lat + nbytes / mean_bw

    def _build_plan(self) -> None:
        ctx = self.ctx
        # Only ready tasks have been pushed; the rest of the submitted
        # DAG is reachable through the successor links (our generators
        # submit ahead, like CHAMELEON). Take the transitive closure.
        tasks: list[Task] = []
        seen: set[int] = set()
        frontier = list(self._known)
        while frontier:
            task = frontier.pop()
            if task.tid in seen:
                continue
            seen.add(task.tid)
            tasks.append(task)
            frontier.extend(task.succs)
        ranks = self._upward_ranks(tasks)
        order = sorted(tasks, key=lambda t: -ranks[t.tid])
        worker_free = {w.wid: 0.0 for w in ctx.workers}
        finish: dict[int, float] = {}
        placed_node: dict[int, int] = {}
        for task in order:
            best_worker = None
            best_eft = float("inf")
            for worker in ctx.workers:
                if not ctx.can_exec(task, worker.arch):
                    continue
                ready = 0.0
                for pred in task.preds:
                    comm = (
                        0.0
                        if placed_node.get(pred.tid) == worker.memory_node
                        else self._comm_cost(pred, task)
                    )
                    ready = max(ready, finish.get(pred.tid, 0.0) + comm)
                start = max(worker_free[worker.wid], ready)
                eft = start + ctx.estimate(task, worker.arch)
                if eft < best_eft:
                    best_eft = eft
                    best_worker = worker
            assert best_worker is not None
            worker_free[best_worker.wid] = best_eft
            finish[task.tid] = best_eft
            placed_node[task.tid] = best_worker.memory_node
            task.sched["heft_worker"] = best_worker.wid
            task.sched["heft_start"] = best_eft - ctx.estimate(task, best_worker.arch)
        # Per-worker queues in planned start order.
        for task in sorted(order, key=lambda t: t.sched["heft_start"]):
            self._queues[task.sched["heft_worker"]].append(task)
        self._planned = True

    # -- hooks ---------------------------------------------------------------

    def push(self, task: Task) -> None:
        self._known.append(task)
        # Tasks covered by the plan were queued at planning time; a task
        # genuinely unseen by the plan (dynamically materialized after
        # planning, outside the submitted closure) is placed greedily.
        if self._planned and "heft_worker" not in task.sched:
            ctx = self.ctx
            worker = min(
                (w for w in ctx.workers if ctx.can_exec(task, w.arch)),
                key=lambda w: len(self._queues[w.wid]) * ctx.estimate(task, w.arch),
            )
            self._queues[worker.wid].append(task)

    def pop(self, worker: Worker) -> Task | None:
        if not self._planned:
            self._build_plan()
        queue = self._queues[worker.wid]
        # Respect the planned order: only release a task whose turn has
        # come (it is READY); otherwise wait (the engine re-polls).
        if queue and queue[0].state is TaskState.READY:
            return queue.popleft()
        return None

    def force_pop(self, worker: Worker) -> Task | None:
        for queue in self._queues.values():
            for _ in range(len(queue)):
                task = queue.popleft()
                if task.state is TaskState.READY and task.can_exec(worker.arch):
                    return task
                queue.append(task)
        return None
