"""Name → scheduler factory registry used by the experiment harness.

Factories are callables accepting keyword parameters, so a registry
name identifies a *family* and ``make_scheduler(name, **params)``
selects a member: ``make_scheduler("multiprio", locality_eps=0.5,
locality_n=5)``. The ablation aliases (``multiprio-noevict`` etc.) are
thin wrappers that pre-bind one parameter and forward the rest.
"""

from __future__ import annotations

from typing import Callable

from repro.schedulers.auto_heteroprio import AutoHeteroPrio
from repro.schedulers.base import Scheduler
from repro.schedulers.cats import CATS
from repro.schedulers.dm import Dm
from repro.schedulers.dmda import Dmda
from repro.schedulers.dmdas import Dmdas
from repro.schedulers.edf import EDF
from repro.schedulers.eager import Eager
from repro.schedulers.heteroprio import HeteroPrio
from repro.schedulers.multiprio import MultiPrio
from repro.schedulers.multiqueue import MultiQueue
from repro.schedulers.random_sched import RandomScheduler
from repro.schedulers.static_heft import StaticHEFT
from repro.schedulers.ws import LocalityWorkStealing, WorkStealing
from repro.utils.validation import ValidationError

_FACTORIES: dict[str, Callable[..., Scheduler]] = {
    "eager": Eager,
    "edf": EDF,
    "random": RandomScheduler,
    "ws": WorkStealing,
    "lws": LocalityWorkStealing,
    "cats": CATS,
    "dm": Dm,
    "dmda": Dmda,
    "dmdas": Dmdas,
    "heteroprio": AutoHeteroPrio,  # the automated variant, as evaluated
    "heteroprio-manual": HeteroPrio,
    "static-heft": StaticHEFT,
    "multiprio": MultiPrio,
    "multiqueue": MultiQueue,
    # Relaxed-priority variant: per-node RelaxedTaskHeaps with k=4
    # sub-heaps (pass `relaxed=` explicitly to pick another width).
    "multiprio-relaxed": lambda **kw: MultiPrio(**{"relaxed": 4, **kw}),
    # Deadline-aware variant: promote tasks whose slack at push time
    # drops under 1 ms (pass `deadline_boost=` to pick another window).
    "multiprio-deadline": lambda **kw: MultiPrio(
        **{"deadline_boost": 1000.0, **kw}
    ),
    # Ablation aliases: back-compat wrappers over MultiPrio parameters.
    "multiprio-noevict": lambda **kw: MultiPrio(eviction=False, **kw),
    "multiprio-nolocality": lambda **kw: MultiPrio(use_locality=False, **kw),
    "multiprio-nocrit": lambda **kw: MultiPrio(use_criticality=False, **kw),
    "multiprio-rawbrw": lambda **kw: MultiPrio(drain_aware=False, **kw),
}


def _register_extensions() -> None:
    """Extension schedulers live outside the core package; import them
    lazily so the registry module has no hard dependency on them."""
    from repro.extensions.energy import EdpMultiPrio, EnergyAwareMultiPrio

    _FACTORIES.setdefault("multiprio-energy", EnergyAwareMultiPrio)
    _FACTORIES.setdefault("multiprio-edp", EdpMultiPrio)


_register_extensions()


def scheduler_names() -> list[str]:
    """All registered scheduler names."""
    return sorted(_FACTORIES)


def make_scheduler(name: str, **params) -> Scheduler:
    """Instantiate a fresh scheduler by registry name.

    Keyword parameters are forwarded to the scheduler factory::

        make_scheduler("multiprio", locality_eps=0.5, locality_n=5)
        make_scheduler("multiprio-noevict", slowdown_cap=None)

    A parameter the factory does not accept raises
    :class:`~repro.utils.validation.ValidationError`.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValidationError(
            f"unknown scheduler {name!r}; known: {', '.join(scheduler_names())}"
        )
    try:
        return factory(**params)
    except TypeError as exc:
        raise ValidationError(
            f"scheduler {name!r} rejected parameters {params!r}: {exc}"
        ) from None


def register_scheduler(
    name: str, factory: Callable[..., Scheduler], *, override: bool = False
) -> None:
    """Register a custom scheduler factory (used by examples/tests).

    ``override=True`` replaces an existing registration — re-runnable
    scripts and tests use it to avoid duplicate-name errors.
    """
    if name in _FACTORIES and not override:
        raise ValidationError(
            f"scheduler {name!r} already registered (pass override=True to replace)"
        )
    _FACTORIES[name] = factory


def parse_sched_opts(pairs: list[str] | tuple[str, ...]) -> dict[str, object]:
    """Parse CLI ``key=value`` scheduler options into typed kwargs.

    Values are coerced in order: ``true``/``false`` → bool, ``none`` →
    None, int, float, and finally the bare string. Used by the CLI's
    ``--sched-opt`` passthrough.
    """
    opts: dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValidationError(
                f"malformed scheduler option {pair!r}; expected key=value"
            )
        opts[key] = _coerce(raw.strip())
    return opts


def _coerce(raw: str) -> object:
    lowered = raw.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw
