"""Name → scheduler factory registry used by the experiment harness."""

from __future__ import annotations

from typing import Callable

from repro.core.multiprio import MultiPrio
from repro.schedulers.auto_heteroprio import AutoHeteroPrio
from repro.schedulers.base import Scheduler
from repro.schedulers.cats import CATS
from repro.schedulers.dm import Dm
from repro.schedulers.dmda import Dmda
from repro.schedulers.dmdas import Dmdas
from repro.schedulers.eager import Eager
from repro.schedulers.heteroprio import HeteroPrio
from repro.schedulers.random_sched import RandomScheduler
from repro.schedulers.static_heft import StaticHEFT
from repro.schedulers.ws import LocalityWorkStealing, WorkStealing
from repro.utils.validation import ValidationError

_FACTORIES: dict[str, Callable[[], Scheduler]] = {
    "eager": Eager,
    "random": RandomScheduler,
    "ws": WorkStealing,
    "lws": LocalityWorkStealing,
    "cats": CATS,
    "dm": Dm,
    "dmda": Dmda,
    "dmdas": Dmdas,
    "heteroprio": AutoHeteroPrio,  # the automated variant, as evaluated
    "heteroprio-manual": HeteroPrio,
    "static-heft": StaticHEFT,
    "multiprio": MultiPrio,
    "multiprio-noevict": lambda: MultiPrio(eviction=False),
    "multiprio-nolocality": lambda: MultiPrio(use_locality=False),
    "multiprio-nocrit": lambda: MultiPrio(use_criticality=False),
    "multiprio-rawbrw": lambda: MultiPrio(drain_aware=False),
}


def _register_extensions() -> None:
    """Extension schedulers live outside the core package; import them
    lazily so the registry module has no hard dependency on them."""
    from repro.extensions.energy import EnergyAwareMultiPrio

    _FACTORIES.setdefault("multiprio-energy", EnergyAwareMultiPrio)


_register_extensions()


def scheduler_names() -> list[str]:
    """All registered scheduler names."""
    return sorted(_FACTORIES)


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a fresh scheduler by registry name."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValidationError(
            f"unknown scheduler {name!r}; known: {', '.join(scheduler_names())}"
        )
    return factory()


def register_scheduler(name: str, factory: Callable[[], Scheduler]) -> None:
    """Register a custom scheduler factory (used by examples/tests)."""
    if name in _FACTORIES:
        raise ValidationError(f"scheduler {name!r} already registered")
    _FACTORIES[name] = factory
