"""Random: StarPU's ``random`` policy — push-time assignment to a worker
drawn with probability proportional to the worker's speed on the task.

Serves as a statistical baseline: it balances *expected* load but ignores
readiness, criticality and locality entirely.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler
from repro.utils.rng import make_rng


class RandomScheduler(Scheduler):
    """Speed-weighted random push-time assignment, FIFO per worker."""

    name = "random"

    def __init__(self, seed: int | None = None) -> None:
        super().__init__()
        self._seed = seed
        self._rng: np.random.Generator = make_rng(seed)
        self._queues: dict[int, deque[Task]] = {}

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._rng = make_rng(self._seed)
        self._queues = {w.wid: deque() for w in ctx.workers}

    def push(self, task: Task) -> None:
        ctx = self.ctx
        candidates = [w for w in ctx.workers if ctx.can_exec(task, w.arch)]
        # Weight by speed: 1/δ normalized.
        weights = np.array(
            [1.0 / max(ctx.estimate(task, w.arch), 1e-9) for w in candidates]
        )
        weights /= weights.sum()
        chosen = candidates[int(self._rng.choice(len(candidates), p=weights))]
        self._queues[chosen.wid].append(task)

    def pop(self, worker: Worker) -> Task | None:
        queue = self._queues[worker.wid]
        if queue:
            return queue.popleft()
        return None

    def force_pop(self, worker: Worker) -> Task | None:
        # Drain any queue holding an executable task (its owner may be
        # unable to reach it only in pathological configurations).
        for queue in self._queues.values():
            for _ in range(len(queue)):
                task = queue.popleft()
                if task.can_exec(worker.arch):
                    return task
                queue.append(task)
        return None
