"""Eager: StarPU's simplest policy — one central FIFO.

Workers take the oldest ready task they can execute. No affinity, no
priorities, no data awareness; the floor every other policy should beat
on heterogeneous workloads.
"""

from __future__ import annotations

from collections import deque

from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler


class Eager(Scheduler):
    """Central FIFO queue shared by all workers."""

    name = "eager"

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[Task] = deque()

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._queue = deque()

    def push(self, task: Task) -> None:
        self._queue.append(task)

    def pop(self, worker: Worker) -> Task | None:
        # Usually the head matches; otherwise scan for the first
        # executable task (e.g. a GPU-only task facing a CPU worker).
        for _ in range(len(self._queue)):
            task = self._queue.popleft()
            if task.can_exec(worker.arch):
                return task
            self._queue.append(task)
        return None
