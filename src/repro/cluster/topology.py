"""The instantiated cluster fabric: vertices, links, routes, transfers.

:class:`Cluster` turns a :class:`~repro.cluster.spec.ClusterSpec` into
runnable state: one :class:`~repro.runtime.memory.Link` per declared
inter-node link (the same FIFO-pipe model PCIe uses inside a node,
with GB/s converted to bytes/µs identically to
:class:`~repro.runtime.platform_config.Platform`), shortest routes
between every compute-node pair (BFS with deterministic tie-breaking),
and per-node lazily-built perf models over *independent* calibration
tables.

Transfers chain hop by hop: each link is entered only once the previous
hop delivered, so a congested core link delays exactly the bytes routed
through it. :meth:`Cluster.transfer_estimate` projects an arrival time
without touching link state (what placement policies cost with);
:meth:`Cluster.transfer_charge` actually reserves the wire (what the
cluster simulation charges cross-node dependency bytes to).
"""

from __future__ import annotations

from repro.cluster.spec import ClusterSpec
from repro.platform.machines import MachineModel
from repro.runtime.memory import Link
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.utils.units import US_PER_S
from repro.utils.validation import ValidationError


class Cluster:
    """A :class:`ClusterSpec` instantiated into mutable fabric state.

    Vertex ids number compute nodes first (spec order), then switches;
    links carry those ids in their ``src``/``dst`` fields. The cluster
    owns per-run mutable state (link clocks) exactly like a
    :class:`~repro.runtime.platform_config.Platform` does — call
    :meth:`reset_runtime_state` between runs.
    """

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.node_names: tuple[str, ...] = spec.node_names
        vertices = list(self.node_names) + list(spec.switches)
        self._vid: dict[str, int] = {v: i for i, v in enumerate(vertices)}
        self._vertex_names: tuple[str, ...] = tuple(vertices)

        self._links: dict[tuple[int, int], Link] = {}
        adjacency: dict[int, list[int]] = {i: [] for i in range(len(vertices))}
        for lspec in spec.links:
            src, dst = self._vid[lspec.src], self._vid[lspec.dst]
            self._links[(src, dst)] = Link(
                src,
                dst,
                bandwidth=lspec.bandwidth_gbps * 1e9 / US_PER_S,  # bytes per us
                latency=lspec.latency_us,
            )
            adjacency[src].append(dst)
        for neighbors in adjacency.values():
            neighbors.sort()  # deterministic BFS visit order

        # All-pairs shortest routes between compute nodes, as link
        # chains. BFS per source with sorted neighbor expansion makes
        # equal-length route choice deterministic.
        self._routes: dict[tuple[int, int], tuple[Link, ...]] = {}
        n_nodes = len(self.node_names)
        for src in range(n_nodes):
            parent = self._bfs(src, adjacency)
            for dst in range(n_nodes):
                if dst == src:
                    self._routes[(src, dst)] = ()
                    continue
                if parent[dst] < 0:
                    raise ValidationError(
                        f"cluster {self.name!r} has no route from node "
                        f"{self.node_names[src]!r} to {self.node_names[dst]!r}"
                    )
                hops: list[Link] = []
                v = dst
                while v != src:
                    p = parent[v]
                    hops.append(self._links[(p, v)])
                    v = p
                self._routes[(src, dst)] = tuple(reversed(hops))

        # Per-node perf models, built lazily over *fresh* calibration
        # tables (MachineModel.calibration() constructs a new table per
        # call) so no two nodes share mutable calibration state.
        self._perfmodels: dict[str, AnalyticalPerfModel] = {}

    @staticmethod
    def _bfs(src: int, adjacency: dict[int, list[int]]) -> list[int]:
        """Parent array of the BFS tree rooted at ``src`` (-1 = unreached)."""
        parent = [-1] * len(adjacency)
        parent[src] = src
        frontier = [src]
        while frontier:
            nxt: list[int] = []
            for v in frontier:
                for w in adjacency[v]:
                    if parent[w] < 0:
                        parent[w] = v
                        nxt.append(w)
            frontier = nxt
        parent[src] = -1
        return parent

    # -- lookups ---------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of compute nodes."""
        return len(self.node_names)

    def node_index(self, name: str) -> int:
        """Index of a compute node by name."""
        return self.spec.node_index(name)

    def machine_of(self, name: str) -> MachineModel:
        """The machine model of the named compute node."""
        return self.spec.nodes[self.node_index(name)].machine

    def perfmodel_of(self, name: str) -> AnalyticalPerfModel:
        """The node's own (noise-free) analytical perf model.

        Built on first use from a fresh calibration table; cached per
        node so placement costing reuses one model per node.
        """
        pm = self._perfmodels.get(name)
        if pm is None:
            pm = AnalyticalPerfModel(self.machine_of(name).calibration())
            self._perfmodels[name] = pm
        return pm

    def archs_of(self, name: str) -> tuple[str, ...]:
        """Architectures with at least one worker on the named node."""
        spec = self.machine_of(name).spec
        out: list[str] = []
        for node in spec.nodes:
            if node.n_workers > 0 and node.arch not in out:
                out.append(node.arch)
        return tuple(sorted(out))

    def n_workers_of(self, name: str) -> int:
        """Total worker count of the named node."""
        return sum(n.n_workers for n in self.machine_of(name).spec.nodes)

    def route(self, src: str, dst: str) -> tuple[Link, ...]:
        """The link chain from node ``src`` to node ``dst`` (empty if same)."""
        return self._routes[(self.node_index(src), self.node_index(dst))]

    def hops(self, src: str, dst: str) -> int:
        """Route length in links."""
        return len(self.route(src, dst))

    def inter_links(self) -> list[Link]:
        """Every fabric link, in spec declaration order."""
        return [self._links[(self._vid[l.src], self._vid[l.dst])]
                for l in self.spec.links]

    def vertex_name(self, vid: int) -> str:
        """Vertex name (node or switch) for a link endpoint id."""
        return self._vertex_names[vid]

    # -- transfers -------------------------------------------------------

    def wire_duration(self, src: str, dst: str, nbytes: int) -> float:
        """Queue-free end-to-end wire time for ``nbytes`` (0 if same node)."""
        return sum(link.duration(nbytes) for link in self.route(src, dst))

    def transfer_estimate(
        self, src: str, dst: str, nbytes: int, now: float
    ) -> float:
        """Projected arrival time of ``nbytes`` sent at ``now``, given the
        current link queues, *without* reserving any wire."""
        t = now
        for link in self.route(src, dst):
            t = link.queue_estimate(t, nbytes, prefetch=False)
        return t

    def transfer_charge(self, src: str, dst: str, nbytes: int, now: float) -> float:
        """Reserve the route for ``nbytes`` departing at ``now``; returns
        the arrival time. Each hop queues behind earlier traffic on its
        link and starts only after the previous hop delivered."""
        t = now
        for link in self.route(src, dst):
            t = link.reserve(t, nbytes, prefetch=False)
        return t

    def link_stats(self) -> tuple[dict, ...]:
        """Per-link traffic counters as JSON-ready mappings."""
        return tuple(
            {
                "src": self.vertex_name(link.src),
                "dst": self.vertex_name(link.dst),
                "bytes_moved": link.bytes_moved,
                "n_transfers": link.n_transfers,
            }
            for link in self.inter_links()
        )

    def reset_runtime_state(self) -> None:
        """Reset every fabric link's clocks and counters."""
        for link in self._links.values():
            link.reset_runtime_state()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster {self.name!r}: {self.n_nodes} nodes, "
            f"{len(self._links)} links>"
        )
