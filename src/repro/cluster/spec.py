"""Declarative cluster topologies: nodes, switches and inter-node links.

A :class:`ClusterSpec` composes N existing single-node
:class:`~repro.platform.machines.MachineModel` machines into one
cluster joined by a network fabric. Links reuse the semantics of the
intra-node PCIe :class:`~repro.runtime.memory.Link` model — directed
FIFO pipes with bandwidth and latency — but connect *cluster vertices*
(compute nodes and pure-forwarding switches) instead of memory nodes.

Validation mirrors the strict :class:`~repro.workload.stream.JobStream`
contract: every malformed topology (empty cluster, duplicate node
names, non-finite or non-positive link bandwidth, negative or
non-finite latency, dangling link endpoints, duplicate directed links)
raises a typed :class:`~repro.utils.validation.ValidationError` at
construction, never at simulation time.

Two presets cover the usual fabrics:

* :func:`star_cluster` — every node hangs off one central switch
  (2-hop any-to-any routes), the classic single-rack picture;
* :func:`fat_tree_cluster` — a simplified two-level fat tree: nodes in
  pods under edge switches, edge switches under one core switch, so
  intra-pod traffic stays 2 hops while cross-pod traffic pays 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.platform.machines import MACHINES, MachineModel
from repro.utils.validation import ValidationError


def _resolve_node_machine(machine: MachineModel | str) -> MachineModel:
    """A :class:`MachineModel` from an instance or a registry name."""
    if isinstance(machine, str):
        factory = MACHINES.get(machine)
        if factory is None:
            raise ValidationError(
                f"unknown machine {machine!r}; known: {', '.join(sorted(MACHINES))}"
            )
        return factory()
    return machine


@dataclass(frozen=True)
class ClusterNodeSpec:
    """One compute node of the cluster: a name plus its machine model.

    The :class:`MachineModel` is a frozen *description* — every node
    built from it instantiates its own independent
    :class:`~repro.runtime.platform_config.Platform` and
    :class:`~repro.runtime.perfmodel.CalibrationTable`, so many nodes
    may share one model without sharing any mutable state.
    """

    name: str
    machine: MachineModel

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("cluster node name must be non-empty")


@dataclass(frozen=True)
class InterLinkSpec:
    """Declarative directed inter-node link between two cluster vertices.

    ``bandwidth_gbps`` is in GB/s (decimal), ``latency_us`` in
    microseconds — the same units as the intra-node
    :class:`~repro.runtime.platform_config.LinkSpec`, just with
    network-scale defaults.
    """

    src: str
    dst: str
    bandwidth_gbps: float
    latency_us: float = 50.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValidationError(
                f"inter-node link endpoints must differ, got {self.src!r} twice"
            )
        if not math.isfinite(self.bandwidth_gbps) or self.bandwidth_gbps <= 0:
            raise ValidationError(
                f"link {self.src!r}->{self.dst!r} bandwidth must be finite and "
                f"> 0 GB/s, got {self.bandwidth_gbps}"
            )
        if not math.isfinite(self.latency_us) or self.latency_us < 0:
            raise ValidationError(
                f"link {self.src!r}->{self.dst!r} latency must be finite and "
                f">= 0 us, got {self.latency_us}"
            )


@dataclass(frozen=True)
class ClusterSpec:
    """A validated multi-node platform description.

    ``nodes`` are the compute nodes (each with a machine model);
    ``switches`` are pure-forwarding fabric vertices links may route
    through; ``links`` is the directed link set over both.
    """

    name: str
    nodes: tuple[ClusterNodeSpec, ...]
    links: tuple[InterLinkSpec, ...] = field(default_factory=tuple)
    switches: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValidationError(
                f"cluster {self.name!r} has no nodes; a ClusterSpec must "
                f"carry at least one compute node"
            )
        seen: set[str] = set()
        for node in self.nodes:
            if node.name in seen:
                raise ValidationError(
                    f"cluster {self.name!r} has duplicate node name "
                    f"{node.name!r}"
                )
            seen.add(node.name)
        for switch in self.switches:
            if not switch:
                raise ValidationError("cluster switch name must be non-empty")
            if switch in seen:
                raise ValidationError(
                    f"cluster {self.name!r} vertex name {switch!r} is used "
                    f"by both a node and a switch (or twice as a switch)"
                )
            seen.add(switch)
        link_keys: set[tuple[str, str]] = set()
        for link in self.links:
            for endpoint in (link.src, link.dst):
                if endpoint not in seen:
                    raise ValidationError(
                        f"cluster {self.name!r} link {link.src!r}->"
                        f"{link.dst!r} references unknown vertex {endpoint!r}"
                    )
            key = (link.src, link.dst)
            if key in link_keys:
                raise ValidationError(
                    f"cluster {self.name!r} has duplicate link "
                    f"{link.src!r}->{link.dst!r}"
                )
            link_keys.add(key)

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def node_names(self) -> tuple[str, ...]:
        """Compute-node names in declaration order."""
        return tuple(n.name for n in self.nodes)

    def node_index(self, name: str) -> int:
        """Index of the named compute node within ``nodes``."""
        for i, node in enumerate(self.nodes):
            if node.name == name:
                return i
        raise ValidationError(f"unknown cluster node {name!r} in {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClusterSpec {self.name!r}: {len(self.nodes)} nodes, "
            f"{len(self.switches)} switches, {len(self.links)} links>"
        )


def _both_ways(
    a: str, b: str, bandwidth_gbps: float, latency_us: float
) -> list[InterLinkSpec]:
    return [
        InterLinkSpec(a, b, bandwidth_gbps, latency_us),
        InterLinkSpec(b, a, bandwidth_gbps, latency_us),
    ]


def star_cluster(
    n_nodes: int,
    machine: MachineModel | str = "small-hetero",
    *,
    bandwidth_gbps: float = 12.5,
    latency_us: float = 50.0,
    name: str | None = None,
) -> ClusterSpec:
    """``n_nodes`` identical machines around one central switch.

    Every node pair is 2 hops apart through ``sw0`` — all traffic
    shares the switch's per-link pipes, the classic top-of-rack
    contention picture. ``bandwidth_gbps`` defaults to ~100 GbE.
    """
    if n_nodes < 1:
        raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
    mach = _resolve_node_machine(machine)
    nodes = tuple(
        ClusterNodeSpec(f"node{i}", mach) for i in range(n_nodes)
    )
    links: list[InterLinkSpec] = []
    for node in nodes:
        links.extend(_both_ways(node.name, "sw0", bandwidth_gbps, latency_us))
    return ClusterSpec(
        name=name or f"star-{n_nodes}x{mach.name}",
        nodes=nodes,
        links=tuple(links),
        switches=("sw0",),
    )


def fat_tree_cluster(
    n_nodes: int,
    machine: MachineModel | str = "small-hetero",
    *,
    pod_size: int = 4,
    edge_gbps: float = 12.5,
    core_gbps: float = 50.0,
    latency_us: float = 50.0,
    name: str | None = None,
) -> ClusterSpec:
    """A simplified two-level fat tree: pods of ``pod_size`` nodes under
    edge switches, edge switches under one core switch.

    Intra-pod routes are 2 hops (node → edge → node); cross-pod routes
    are 4 (node → edge → core → edge → node) over the fatter
    ``core_gbps`` uplinks — the locality gradient locality-aware
    placement exploits.
    """
    if n_nodes < 1:
        raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
    if pod_size < 1:
        raise ValidationError(f"pod_size must be >= 1, got {pod_size}")
    mach = _resolve_node_machine(machine)
    nodes = tuple(
        ClusterNodeSpec(f"node{i}", mach) for i in range(n_nodes)
    )
    n_pods = math.ceil(n_nodes / pod_size)
    switches = [f"edge{p}" for p in range(n_pods)]
    links: list[InterLinkSpec] = []
    for i, node in enumerate(nodes):
        links.extend(
            _both_ways(node.name, f"edge{i // pod_size}", edge_gbps, latency_us)
        )
    if n_pods > 1:
        switches.append("core")
        for p in range(n_pods):
            links.extend(_both_ways(f"edge{p}", "core", core_gbps, latency_us))
    return ClusterSpec(
        name=name or f"fat-tree-{n_nodes}x{mach.name}",
        nodes=nodes,
        links=tuple(links),
        switches=tuple(switches),
    )
