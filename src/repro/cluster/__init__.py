"""Multi-node platform and two-level hierarchical scheduling.

The paper evaluates MultiPrio on single heterogeneous nodes; this
subsystem composes many such nodes into a *cluster* joined by a network
fabric and adds a global placement tier above the unchanged per-node
scheduler — the Firmament-style architecture::

    from repro.cluster import simulate_cluster, star_cluster
    from repro.workload import poisson_stream
    from repro.apps.dense import cholesky_program

    spec = star_cluster(8, "small-hetero")
    stream = poisson_stream([lambda: cholesky_program(6, 512)],
                            rate_jobs_per_s=40.0, n_jobs=32)
    res = simulate_cluster(stream, spec, placement="locality-aware")
    print(res.makespan_us, res.mean_utilization, res.imbalance)

Pieces:

* :mod:`repro.cluster.spec` — validated topology descriptions with
  star / fat-tree presets;
* :mod:`repro.cluster.topology` — the instantiated fabric: routed
  inter-node links (the PCIe :class:`~repro.runtime.memory.Link` model
  at network scale) and per-node perf models;
* :mod:`repro.cluster.placement` — the global scheduler tier and its
  policy registry (``pack`` / ``round-robin`` / ``random`` /
  ``load-aware`` / ``locality-aware``);
* :mod:`repro.cluster.sim` — the :func:`simulate_cluster` facade:
  global admission, placement, sharded per-node engines, and the
  cross-node dependency fixed point;
* :mod:`repro.cluster.result` — per-node utilization/imbalance plus
  the standard per-job stream metrics.
"""

from repro.cluster.spec import (
    ClusterNodeSpec,
    ClusterSpec,
    InterLinkSpec,
    fat_tree_cluster,
    star_cluster,
)
from repro.cluster.topology import Cluster
from repro.cluster.placement import (
    PLACEMENTS,
    GlobalScheduler,
    NodeView,
    PlacementPolicy,
    make_placement,
    placement_names,
)
from repro.cluster.result import (
    ClusterJobResult,
    ClusterResult,
    CrossTransfer,
    NodeStats,
    PlacementRecord,
)
from repro.cluster.sim import job_output_bytes, job_work_us, simulate_cluster

__all__ = [
    "Cluster",
    "ClusterJobResult",
    "ClusterNodeSpec",
    "ClusterResult",
    "ClusterSpec",
    "CrossTransfer",
    "GlobalScheduler",
    "InterLinkSpec",
    "NodeStats",
    "NodeView",
    "PLACEMENTS",
    "PlacementPolicy",
    "PlacementRecord",
    "fat_tree_cluster",
    "job_output_bytes",
    "job_work_us",
    "make_placement",
    "placement_names",
    "simulate_cluster",
    "star_cluster",
]
