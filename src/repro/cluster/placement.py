"""The global scheduler tier: which node does an arriving job run on?

The two-level architecture keeps the per-node scheduler (MultiPrio by
default) completely unmodified — the cluster's contribution is the
*placement* decision above it. A :class:`GlobalScheduler` processes
jobs in arrival order, asks its :class:`PlacementPolicy` for a node,
and maintains per-node :class:`NodeView` load bookkeeping (projected
queue drain times from the per-node perf model's work estimates).

Policies, all registered in :data:`PLACEMENTS`:

* ``pack`` — consolidate: the busiest feasible node wins (lowest index
  on ties), maximizing idle nodes, the bin-packing baseline;
* ``round-robin`` — rotate over feasible nodes, ignoring load;
* ``random`` — a seeded uniform choice over feasible nodes (the
  control arm experiments compare against);
* ``load-aware`` — minimize the job's projected finish time
  ``max(avail_until, t) + work/width`` on each node;
* ``locality-aware`` — ``load-aware`` plus an inter-node transfer
  penalty: a job chained ``after`` a predecessor placed elsewhere pays
  the projected fabric arrival delay of the predecessor's output bytes,
  so chains gravitate to one node unless it is badly overloaded —
  XKaapi-style data-locality-driven placement.

Every decision carries provenance: the winning reason string and the
full per-node score vector, surfaced as
:class:`~repro.obs.events.JobPlaced` / :class:`~repro.obs.events.NodeLoad`
events and :class:`~repro.cluster.result.PlacementRecord` rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.result import PlacementRecord
from repro.cluster.topology import Cluster
from repro.obs.events import Event, JobPlaced, NodeLoad
from repro.utils.validation import ValidationError
from repro.workload.stream import Job

#: Score for a node that cannot execute the job at all (some task has
#: no implementation for any of the node's architectures).
_INFEASIBLE = math.inf


@dataclass
class NodeView:
    """The global tier's running load picture of one node.

    ``avail_until`` is the projected time the node's queue drains,
    advanced optimistically at each placement by the job's work spread
    over the node's workers — a deliberately cheap model (the real
    drain time comes from the per-node simulation afterwards).
    """

    name: str
    index: int
    n_workers: int
    n_jobs: int = 0
    est_work_us: float = 0.0
    avail_until: float = 0.0

    def backlog_us(self, t: float) -> float:
        """Projected queued work (µs) still ahead of a job arriving at ``t``."""
        return max(0.0, self.avail_until - t)


@dataclass(frozen=True)
class PlacementContext:
    """Everything a policy may consult for one decision.

    ``work_us[i]`` is the job's total work on node ``i`` under that
    node's own perf model (inf = infeasible); ``pred`` is
    ``(node_index, nbytes)`` of a cross-job ``after`` predecessor's
    placement and output size, or ``None``.
    """

    job: Job
    t: float
    views: tuple[NodeView, ...]
    work_us: tuple[float, ...]
    pred: tuple[int, int] | None
    cluster: Cluster

    def feasible(self) -> list[int]:
        """Indices of nodes that can execute the job, in node order."""
        out = [i for i, w in enumerate(self.work_us) if math.isfinite(w)]
        if not out:
            raise ValidationError(
                f"{self.job.label} cannot execute on any cluster node: no "
                f"node offers an architecture for every task"
            )
        return out


class PlacementPolicy:
    """Base policy: subclasses override :meth:`choose`."""

    name = "base"

    def choose(self, ctx: PlacementContext) -> tuple[int, str, tuple[float, ...]]:
        """(winning node index, reason, per-node score vector)."""
        raise NotImplementedError


class PackPolicy(PlacementPolicy):
    """Consolidate onto the busiest feasible node (ties: lowest index)."""

    name = "pack"

    def choose(self, ctx: PlacementContext) -> tuple[int, str, tuple[float, ...]]:
        scores = tuple(v.backlog_us(ctx.t) for v in ctx.views)
        best = max(ctx.feasible(), key=lambda i: (scores[i], -i))
        return best, f"most-loaded feasible node ({scores[best]:.0f}us backlog)", scores


class RoundRobinPolicy(PlacementPolicy):
    """Rotate placements over feasible nodes, ignoring load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, ctx: PlacementContext) -> tuple[int, str, tuple[float, ...]]:
        feasible = ctx.feasible()
        best = feasible[self._next % len(feasible)]
        self._next += 1
        return best, f"round-robin slot {self._next - 1}", ()


class RandomPolicy(PlacementPolicy):
    """Seeded uniform choice over feasible nodes (the control arm)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(np.random.SeedSequence(seed))

    def choose(self, ctx: PlacementContext) -> tuple[int, str, tuple[float, ...]]:
        feasible = ctx.feasible()
        best = feasible[int(self._rng.integers(len(feasible)))]
        return best, "uniform random over feasible nodes", ()


class LoadAwarePolicy(PlacementPolicy):
    """Minimize the job's projected finish time across nodes."""

    name = "load-aware"

    def _finish(self, ctx: PlacementContext, i: int) -> float:
        view = ctx.views[i]
        if not math.isfinite(ctx.work_us[i]):
            return _INFEASIBLE
        start = max(view.avail_until, ctx.t)
        return start + ctx.work_us[i] / max(1, view.n_workers)

    def choose(self, ctx: PlacementContext) -> tuple[int, str, tuple[float, ...]]:
        scores = tuple(self._finish(ctx, i) for i in range(len(ctx.views)))
        best = min(ctx.feasible(), key=lambda i: (scores[i], i))
        return best, f"earliest projected finish ({scores[best]:.0f}us)", scores


class LocalityAwarePolicy(LoadAwarePolicy):
    """Load-aware plus the fabric cost of cross-node ``after`` inputs.

    A node other than the predecessor's pays the projected arrival
    delay of the predecessor's output bytes over the current fabric
    queues — placement therefore follows the data unless the owning
    node's queue outweighs the transfer.
    """

    name = "locality-aware"

    def _finish(self, ctx: PlacementContext, i: int) -> float:
        score = super()._finish(ctx, i)
        if not math.isfinite(score) or ctx.pred is None:
            return score
        pred_node, nbytes = ctx.pred
        if pred_node == i or nbytes <= 0:
            return score
        src = ctx.cluster.node_names[pred_node]
        dst = ctx.cluster.node_names[i]
        penalty = ctx.cluster.transfer_estimate(src, dst, nbytes, ctx.t) - ctx.t
        return score + penalty

    def choose(self, ctx: PlacementContext) -> tuple[int, str, tuple[float, ...]]:
        scores = tuple(self._finish(ctx, i) for i in range(len(ctx.views)))
        best = min(ctx.feasible(), key=lambda i: (scores[i], i))
        why = "earliest projected finish incl. input transfer"
        if ctx.pred is not None and ctx.pred[0] == best:
            why = "co-located with after-predecessor's data"
        return best, f"{why} ({scores[best]:.0f}us)", scores


#: Placement policy registry, mirroring the scheduler registry's shape.
PLACEMENTS: dict[str, Callable[..., PlacementPolicy]] = {
    "pack": PackPolicy,
    "round-robin": RoundRobinPolicy,
    "random": RandomPolicy,
    "load-aware": LoadAwarePolicy,
    "locality-aware": LocalityAwarePolicy,
}


def make_placement(name: str, **params) -> PlacementPolicy:
    """Instantiate a registered placement policy by name."""
    factory = PLACEMENTS.get(name)
    if factory is None:
        raise ValidationError(
            f"unknown placement policy {name!r}; known: "
            f"{', '.join(placement_names())}"
        )
    return factory(**params)


def placement_names() -> tuple[str, ...]:
    """Registered placement policy names, sorted."""
    return tuple(sorted(PLACEMENTS))


@dataclass
class GlobalScheduler:
    """The cluster's top scheduling tier: places jobs onto nodes.

    Stateful across one stream: per-node :class:`NodeView` bookkeeping,
    the placement ledger, and the provenance event log. Per-node
    schedulers below it never see any of this — they receive ordinary
    job sub-streams.
    """

    cluster: Cluster
    policy: PlacementPolicy
    views: tuple[NodeView, ...] = field(init=False)
    placements: dict[int, PlacementRecord] = field(init=False, default_factory=dict)
    events: list[Event] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.views = tuple(
            NodeView(
                name=name,
                index=i,
                n_workers=self.cluster.n_workers_of(name),
            )
            for i, name in enumerate(self.cluster.node_names)
        )

    def place(
        self,
        job: Job,
        work_us: tuple[float, ...],
        pred: tuple[int, int] | None,
    ) -> PlacementRecord:
        """Decide ``job``'s node, update views, log provenance events."""
        ctx = PlacementContext(
            job=job,
            t=job.arrival_us,
            views=self.views,
            work_us=work_us,
            pred=pred,
            cluster=self.cluster,
        )
        index, reason, scores = self.policy.choose(ctx)
        view = self.views[index]
        est = work_us[index] / max(1, view.n_workers)
        view.n_jobs += 1
        view.est_work_us += work_us[index]
        view.avail_until = max(view.avail_until, job.arrival_us) + est
        record = PlacementRecord(
            jid=job.jid,
            node=view.name,
            policy=self.policy.name,
            est_work_us=work_us[index],
            reason=reason,
            scores=scores,
        )
        self.placements[job.jid] = record
        self.events.append(JobPlaced(
            t=job.arrival_us,
            jid=job.jid,
            tenant=job.tenant,
            node=view.name,
            policy=self.policy.name,
            est_work_us=work_us[index],
            reason=reason,
            scores=scores,
        ))
        self.events.append(NodeLoad(
            t=job.arrival_us,
            node=view.name,
            n_jobs=view.n_jobs,
            backlog_us=view.backlog_us(job.arrival_us),
            avail_until=view.avail_until,
        ))
        return record
