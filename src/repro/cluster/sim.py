"""Two-level cluster simulation: global placement over per-node engines.

:func:`simulate_cluster` runs a :class:`~repro.workload.stream.JobStream`
on a multi-node :class:`~repro.cluster.topology.Cluster`:

1. **Global admission** (optional) — a
   :class:`~repro.control.quota.QuotaAccountant` meters tenants at the
   cluster door; a job is costed at its *cheapest* node's total work
   and either admitted (guaranteed jobs may overdraft) or shed. The
   per-node delay/eviction machinery of :mod:`repro.control` stays a
   node-tier concern and is not applied globally.
2. **Global placement** — a
   :class:`~repro.cluster.placement.GlobalScheduler` assigns each
   admitted job to one node, costing candidates with that node's own
   perf model plus projected fabric transfer delays for cross-node
   ``after`` dependencies.
3. **Per-node execution** — each node independently runs its sub-stream
   through an unmodified engine + scheduler (MultiPrio by default),
   exactly as :func:`~repro.api.simulate_stream` would. Node runs are
   independent simulations, so ``jobs=N`` shards them across processes
   via :func:`repro.sweep.run_tasks` — hundreds-of-node clusters
   simulate in parallel, bit-identical to the serial order.
4. **Cross-node dependency fixed point** — an ``after`` edge whose
   endpoints landed on different nodes couples the otherwise decoupled
   node clocks: the successor may only be released once the
   predecessor's output bytes arrive over the fabric. The driver
   iterates to a fixed point — run nodes, charge each cross edge's
   transfer to the fabric at the predecessor's completion, raise the
   successor's release to the arrival, rerun — until no release moves
   (releases are monotone non-decreasing, so the loop converges;
   ``max_rounds`` caps it and the result records ``converged``).
   Streams without cross-node chains finish in one round.

A single-node cluster degenerates to exactly
:func:`~repro.api.simulate_stream`: same merged program, same engine
configuration, bit-identical schedule — the equivalence the
``repro check`` differential suite enforces.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from repro.api import SimConfig, _UNSET, _build_simulator, _legacy_config
from repro.cluster.result import (
    ClusterJobResult,
    ClusterResult,
    CrossTransfer,
    NodeStats,
    PlacementRecord,
)
from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import Cluster
from repro.cluster.placement import (
    GlobalScheduler,
    PlacementPolicy,
    make_placement,
)
from repro.obs.events import JobRejected, RecordLevel
from repro.platform.machines import MachineModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import Program
from repro.sweep import CallSpec, run_tasks
from repro.utils.validation import ValidationError
from repro.workload.merge import merge_stream
from repro.workload.stream import Job, JobStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.plane import ControlConfig

#: Float slack below which a release bump does not trigger another round.
_RELEASE_EPS = 1e-9


def job_work_us(
    program: Program, perfmodel: AnalyticalPerfModel, archs: tuple[str, ...]
) -> float:
    """Total best-architecture work of ``program`` under one node's model.

    Returns ``inf`` when some task has no implementation for any of the
    node's architectures (the job is infeasible there).
    """
    total = 0.0
    for task in program.tasks:
        usable = [a for a in archs if task.can_exec(a)]
        if not usable:
            return math.inf
        total += min(perfmodel.estimate(task, a) for a in usable)
    return total


def job_output_bytes(program: Program) -> int:
    """Bytes of the job's produced dataset: every handle some task writes.

    This is what a chained successor on another node must fetch over
    the fabric — the whole written working set, not just final sinks
    (the successor's sources read the predecessor's outputs wholesale
    in the closed-loop pattern).
    """
    seen: set[int] = set()
    total = 0
    for task in program.tasks:
        for handle in task.handles(written=True):
            if handle.hid not in seen:
                seen.add(handle.hid)
                total += handle.size
    return total


# -- picklable per-node cells (executed by repro.sweep workers) -------------


def _node_cell(
    node_name: str,
    machine: MachineModel,
    jobs: tuple[Job, ...],
    releases: dict[int, float],
    scheduler: str,
    cfg: SimConfig,
    stream_name: str,
) -> dict:
    """Run one node's sub-stream; return a picklable outcome payload.

    ``releases`` maps jid → earliest release (≥ the job's arrival) as
    imposed by cross-node dependency arrivals; the job's tasks' release
    times are raised accordingly before the run.
    """
    stream = JobStream(name=stream_name, jobs=jobs)
    merged = merge_stream(stream)
    adjusted = list(merged.release_times or [0.0] * len(merged.tasks))
    bumped = False
    for span in merged.jobs:
        rel = releases.get(span.jid, span.arrival_us)
        if rel > span.arrival_us:
            bumped = True
            for tid in range(span.first_tid, span.first_tid + span.n_tasks):
                adjusted[tid] = rel
    if bumped:
        # Cross-node arrivals may raise a release past a later job's,
        # so the adjusted vector skips Program.__init__'s monotonicity
        # validation — the engine's reveal loop handles any values.
        merged.release_times = tuple(adjusted)
    res = _build_simulator(cfg, machine, scheduler).run(merged)
    job_records: dict[int, tuple[float, float]] = {}
    task_records: list[tuple[int, int, float, float]] = []
    for span in merged.jobs:
        recs = [
            merged.tasks[tid].sched["_record"]
            for tid in range(span.first_tid, span.first_tid + span.n_tasks)
        ]
        job_records[span.jid] = (
            min(r[2] for r in recs), max(r[3] for r in recs)
        )
        task_records.extend(
            (span.first_tid + i, r[0], r[2], r[3]) for i, r in enumerate(recs)
        )
    return {
        "node": node_name,
        "sim": res,
        "job_records": job_records,
        "task_records": tuple(sorted(task_records)),
    }


def _baseline_cell(
    machine: MachineModel, program: Program, scheduler: str, cfg: SimConfig
) -> float:
    """Isolated makespan of one program on one node."""
    return _build_simulator(cfg, machine, scheduler).run(program).makespan


# -- the facade -------------------------------------------------------------


def simulate_cluster(
    stream: JobStream,
    cluster: Cluster | ClusterSpec,
    scheduler: str = "multiprio",
    *,
    placement: PlacementPolicy | str = "load-aware",
    placement_params: dict | None = None,
    config: SimConfig | None = None,
    control: "ControlConfig | None" = None,
    isolated_baseline: bool = True,
    jobs: int = 1,
    max_rounds: int = 16,
    seed: int = _UNSET,
    noise_sigma: float = _UNSET,
    record_level: RecordLevel | str | int = _UNSET,
    pipeline: bool = _UNSET,
    submission_window: int | None = _UNSET,
    check_invariants: bool | None = _UNSET,
    sched_params: dict | None = _UNSET,
    progress: Callable[[int, int], None] | None = None,
) -> ClusterResult:
    """Simulate ``stream`` on a multi-node cluster.

    Parameters
    ----------
    stream:
        The arriving jobs (any :class:`~repro.workload.stream.JobStream`).
    cluster:
        A :class:`~repro.cluster.topology.Cluster` or the
        :class:`~repro.cluster.spec.ClusterSpec` to instantiate.
    scheduler:
        Per-node scheduler *registry name* (each node builds its own
        instance; passing an instance would share scheduler state
        between nodes and is rejected).
    placement:
        Global placement policy — a registry name (see
        :func:`~repro.cluster.placement.placement_names`) instantiated
        with ``placement_params``, or a ready
        :class:`~repro.cluster.placement.PlacementPolicy`.
    control:
        Optional :class:`~repro.control.ControlConfig`; its quotas are
        enforced at the *global* tier (accept or shed only — delays,
        in-flight budgets and eviction remain per-node concerns and are
        ignored here). Guaranteed jobs always admit (overdraft).
    jobs:
        Process count for sharding node simulations (and isolated
        baselines) via :func:`repro.sweep.run_tasks`; any value yields
        bit-identical results.
    max_rounds:
        Cap on cross-node dependency fixed-point iterations. Release
        bumps ripple through node schedules, so scattered workflow
        chains can need a few more rounds than their depth; the
        default absorbs typical ripples and ``converged`` records
        whether the run settled within the cap.
    isolated_baseline / seed / noise_sigma / record_level / pipeline /
    submission_window / check_invariants / sched_params:
        As in :func:`~repro.api.simulate_stream`, applied per node.
        ``config`` (when given) takes precedence, but may not carry a
        ``perfmodel``, ``faults`` or ``record_trace`` — per-node models
        are built from each node's own calibration, and fault injection
        at the cluster tier is not supported yet.

    Returns a :class:`~repro.cluster.result.ClusterResult`.
    """
    clus = Cluster(cluster) if isinstance(cluster, ClusterSpec) else cluster
    if not isinstance(scheduler, str):
        raise ValidationError(
            "simulate_cluster needs the scheduler by registry name (each "
            f"node instantiates its own); got {type(scheduler).__name__}"
        )
    cfg = _legacy_config("simulate_cluster()", config, dict(
        seed=seed,
        noise_sigma=noise_sigma,
        record_level=record_level,
        pipeline=pipeline,
        submission_window=submission_window,
        check_invariants=check_invariants,
        sched_params=sched_params,
    ))
    if cfg.perfmodel is not None:
        raise ValidationError(
            "simulate_cluster builds one perf model per node from its own "
            "calibration; an explicit SimConfig.perfmodel cannot serve "
            "heterogeneous nodes"
        )
    if cfg.faults is not None:
        raise ValidationError(
            "fault injection is not supported at the cluster tier yet"
        )
    if cfg.record_trace:
        raise ValidationError(
            "record_trace is not supported at the cluster tier; per-node "
            "task records are always available in the result payloads"
        )
    policy = (
        make_placement(placement, **(placement_params or {}))
        if isinstance(placement, str)
        else placement
    )
    if placement_params and not isinstance(placement, str):
        raise ValidationError(
            "placement_params only apply when the policy is given by name"
        )
    clus.reset_runtime_state()
    events: list = []

    # Per-(node, program) work estimates, shared by admission costing and
    # placement scoring. Cached by program identity — streams routinely
    # reuse one program object across jobs.
    archs_by_node = {name: clus.archs_of(name) for name in clus.node_names}
    work_cache: dict[tuple[str, int], float] = {}

    def work_on(node: str, program: Program) -> float:
        key = (node, id(program))
        cached = work_cache.get(key)
        if cached is None:
            cached = job_work_us(
                program, clus.perfmodel_of(node), archs_by_node[node]
            )
            work_cache[key] = cached
        return cached

    # -- global admission (quotas at the cluster door) -------------------
    rejected: list[tuple[int, str, str]] = []
    admitted: list[Job] = []
    accountant = None
    if control is not None:
        from repro.control.quota import QuotaAccountant

        accountant = QuotaAccountant(control.quotas, control.default_quota)
    admitted_jids: set[int] = set()
    for job in stream.jobs:
        if accountant is None:
            admitted.append(job)
            admitted_jids.add(job.jid)
            continue
        cost = min(work_on(n, job.program) for n in clus.node_names)
        if not math.isfinite(cost):
            cost = 0.0  # infeasible everywhere; placement will raise
        now = job.arrival_us
        if job.qos == "guaranteed" or accountant.can_afford(job.tenant, cost, now):
            accountant.charge(job.tenant, cost, now)
            admitted.append(job)
            admitted_jids.add(job.jid)
        else:
            rejected.append((job.jid, job.tenant, "quota"))
            events.append(JobRejected(
                t=now, jid=job.jid, tenant=job.tenant, qos=job.qos,
                reason="quota",
            ))

    # -- global placement ------------------------------------------------
    global_sched = GlobalScheduler(clus, policy)
    for job in admitted:
        work = tuple(work_on(n, job.program) for n in clus.node_names)
        pred: tuple[int, int] | None = None
        if job.after is not None and job.after in admitted_jids:
            pred_record = global_sched.placements[job.after]
            pred_program = next(
                j.program for j in stream.jobs if j.jid == job.after
            )
            pred = (
                clus.node_index(pred_record.node),
                job_output_bytes(pred_program),
            )
        global_sched.place(job, work, pred)
    events.extend(global_sched.events)
    placements: dict[int, PlacementRecord] = global_sched.placements

    # -- per-node sub-streams and cross-node edges -----------------------
    jobs_by_node: dict[str, list[Job]] = {n: [] for n in clus.node_names}
    cross_edges: list[tuple[int, int, str, str, int]] = []
    program_of: dict[int, Program] = {j.jid: j.program for j in stream.jobs}
    for job in admitted:
        node = placements[job.jid].node
        sub = job
        if job.after is not None:
            pred_ok = job.after in admitted_jids
            same_node = pred_ok and placements[job.after].node == node
            if pred_ok and not same_node:
                cross_edges.append((
                    job.after, job.jid, placements[job.after].node, node,
                    job_output_bytes(program_of[job.after]),
                ))
            if not same_node:
                sub = replace(job, after=None)
        jobs_by_node[node].append(sub)
    active_nodes = [n for n in clus.node_names if jobs_by_node[n]]

    # -- fixed-point execution of the decoupled node engines -------------
    releases: dict[int, float] = {j.jid: j.arrival_us for j in admitted}
    payload_by_node: dict[str, dict] = {}
    transfers: list[CrossTransfer] = []
    rounds = 0
    converged = not admitted
    while rounds < max_rounds and not converged:
        rounds += 1
        cells = [
            CallSpec(_node_cell, (
                node,
                clus.machine_of(node),
                tuple(jobs_by_node[node]),
                {j.jid: releases[j.jid] for j in jobs_by_node[node]},
                scheduler,
                cfg,
                f"{stream.name}@{node}",
            ))
            for node in active_nodes
        ]
        outcomes = run_tasks(cells, jobs=jobs, progress=progress)
        payload_by_node = {p["node"]: p for p in outcomes}
        if not cross_edges:
            converged = True
            break
        completion: dict[int, float] = {}
        for payload in outcomes:
            for jid, (_, end) in payload["job_records"].items():
                completion[jid] = end
        clus.reset_runtime_state()
        transfers = []
        changed = False
        for pred_jid, succ_jid, src, dst, nbytes in sorted(
            cross_edges, key=lambda e: (completion[e[0]], e[0], e[1])
        ):
            depart = completion[pred_jid]
            arrive = clus.transfer_charge(src, dst, nbytes, depart)
            transfers.append(CrossTransfer(
                pred_jid=pred_jid, succ_jid=succ_jid, src=src, dst=dst,
                nbytes=nbytes, depart_us=depart, arrive_us=arrive,
                hops=clus.hops(src, dst),
            ))
            if arrive > releases[succ_jid] + _RELEASE_EPS:
                releases[succ_jid] = arrive
                changed = True
        if not changed:
            converged = True

    # -- isolated baselines (on each job's placed node) ------------------
    isolated: dict[int, float] = {}
    if isolated_baseline and admitted:
        keys: list[tuple[str, int]] = []
        cells = []
        for job in admitted:
            node = placements[job.jid].node
            key = (node, id(job.program))
            if key not in keys:
                keys.append(key)
                cells.append(CallSpec(
                    _baseline_cell,
                    (clus.machine_of(node), job.program, scheduler, cfg),
                ))
        makespans = run_tasks(cells, jobs=jobs, progress=progress)
        by_key = dict(zip(keys, makespans))
        for job in admitted:
            isolated[job.jid] = by_key[(placements[job.jid].node, id(job.program))]

    # -- assembly --------------------------------------------------------
    node_sims = {n: p["sim"] for n, p in payload_by_node.items()}
    cluster_makespan = max(
        (res.makespan for res in node_sims.values()), default=0.0
    )
    nodes: list[NodeStats] = []
    for name in clus.node_names:
        payload = payload_by_node.get(name)
        n_workers = clus.n_workers_of(name)
        if payload is None:
            nodes.append(NodeStats(
                name=name, n_workers=n_workers, n_jobs=0, n_tasks=0,
                makespan_us=0.0, busy_us=0.0, utilization=0.0,
            ))
            continue
        res = payload["sim"]
        busy = sum(res.exec_time_by_arch.values())
        horizon = n_workers * cluster_makespan
        nodes.append(NodeStats(
            name=name,
            n_workers=n_workers,
            n_jobs=len(payload["job_records"]),
            n_tasks=res.n_tasks,
            makespan_us=res.makespan,
            busy_us=busy,
            utilization=busy / horizon if horizon > 0 else 0.0,
        ))

    job_results: list[ClusterJobResult] = []
    for job in admitted:
        node = placements[job.jid].node
        start, end = payload_by_node[node]["job_records"][job.jid]
        job_results.append(ClusterJobResult(
            jid=job.jid,
            name=job.name or job.program.name,
            tenant=job.tenant,
            arrival_us=job.arrival_us,
            start_us=start,
            end_us=end,
            n_tasks=len(job.program),
            isolated_us=isolated.get(job.jid),
            node=node,
        ))

    result = ClusterResult(
        cluster_name=clus.name,
        policy=policy.name,
        scheduler=scheduler,
        jobs=job_results,
        nodes=nodes,
        placements=placements,
        transfers=transfers,
        rejected=rejected,
        rounds=rounds,
        converged=converged,
        events=tuple(events),
        link_stats=clus.link_stats(),
        node_sims=node_sims,
    )
    result._task_records = {  # type: ignore[attr-defined]
        n: p["task_records"] for n, p in payload_by_node.items()
    }
    _maybe_check(result, cfg, len(stream.jobs))
    return result


def _maybe_check(result: ClusterResult, cfg: SimConfig, n_arrived: int) -> None:
    """Run the cluster checker family when invariant checking is on."""
    enabled = cfg.check_invariants
    if enabled is None:
        import os

        enabled = os.environ.get("REPRO_CHECK_INVARIANTS", "") not in ("", "0")
    if not enabled:
        return
    from repro.check.cluster import check_cluster

    violations = check_cluster(result, n_arrived=n_arrived)
    if violations:
        from repro.utils.validation import InvariantError

        raise InvariantError(
            "cluster invariants violated:\n  " + "\n  ".join(violations)
        )
