"""Outcomes of one cluster simulation: placements, node stats, jobs.

:class:`ClusterResult` carries three layers: the global tier's ledger
(:class:`PlacementRecord` provenance, rejections, cross-node
:class:`CrossTransfer` charges, fixed-point convergence), per-node
rollups (:class:`NodeStats` with utilization against the cluster-wide
horizon, plus the full per-node
:class:`~repro.runtime.engine.SimResult`), and the same per-job stream
metrics :class:`~repro.workload.results.StreamResult` reports —
latency, queueing, slowdown-vs-isolated, Jain fairness — so cluster
and single-node experiments read identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.stats import jain_fairness_index, percentile
from repro.workload.results import JobResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import SimResult


@dataclass(frozen=True)
class PlacementRecord:
    """Why one job landed on one node.

    ``scores`` is the policy's per-node cost vector in cluster node
    order (empty for policies that do not score); ``reason`` a readable
    account of the winning criterion.
    """

    jid: int
    node: str
    policy: str
    est_work_us: float
    reason: str = ""
    scores: tuple[float, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready mapping."""
        return {
            "jid": self.jid,
            "node": self.node,
            "policy": self.policy,
            "est_work_us": self.est_work_us,
            "reason": self.reason,
            "scores": list(self.scores),
        }


@dataclass(frozen=True)
class CrossTransfer:
    """One cross-node ``after``-dependency data movement, as charged to
    the fabric: the predecessor's output bytes leaving its node at
    completion and arriving at the successor's node."""

    pred_jid: int
    succ_jid: int
    src: str
    dst: str
    nbytes: int
    depart_us: float
    arrive_us: float
    hops: int

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready mapping."""
        return {
            "pred_jid": self.pred_jid,
            "succ_jid": self.succ_jid,
            "src": self.src,
            "dst": self.dst,
            "nbytes": self.nbytes,
            "depart_us": self.depart_us,
            "arrive_us": self.arrive_us,
            "hops": self.hops,
        }


@dataclass(frozen=True)
class ClusterJobResult(JobResult):
    """A stream :class:`~repro.workload.results.JobResult` plus the node
    the job was placed on."""

    node: str = ""

    def as_dict(self) -> dict[str, Any]:
        out = super().as_dict()
        out["node"] = self.node
        return out


@dataclass(frozen=True)
class NodeStats:
    """One node's share of the cluster run.

    ``utilization`` is busy worker-µs over ``n_workers`` × the *cluster*
    makespan (not the node's own), so lightly-loaded nodes read low even
    if they finished their little work efficiently — that asymmetry is
    what ``ClusterResult.imbalance`` measures.
    """

    name: str
    n_workers: int
    n_jobs: int
    n_tasks: int
    makespan_us: float
    busy_us: float
    utilization: float

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready mapping."""
        return {
            "name": self.name,
            "n_workers": self.n_workers,
            "n_jobs": self.n_jobs,
            "n_tasks": self.n_tasks,
            "makespan_us": self.makespan_us,
            "busy_us": self.busy_us,
            "utilization": self.utilization,
        }


@dataclass
class ClusterResult:
    """Outcome of one :func:`~repro.cluster.sim.simulate_cluster` run."""

    cluster_name: str
    policy: str
    scheduler: str
    jobs: list[ClusterJobResult]
    nodes: list[NodeStats]
    placements: dict[int, PlacementRecord]
    transfers: list[CrossTransfer]
    #: ``(jid, tenant, reason)`` of jobs shed by global admission.
    rejected: list[tuple[int, str, str]]
    rounds: int
    converged: bool
    #: Global-tier provenance events (JobPlaced / NodeLoad / JobRejected).
    events: tuple
    #: Per-fabric-link traffic counters after the final charge pass.
    link_stats: tuple[dict, ...]
    #: Full per-node engine results, keyed by node name.
    node_sims: dict[str, "SimResult"] = field(repr=False, default_factory=dict)

    # -- cluster-level aggregates ---------------------------------------

    @property
    def makespan_us(self) -> float:
        """Completion time of the whole cluster run (max over nodes)."""
        return max((n.makespan_us for n in self.nodes), default=0.0)

    @property
    def mean_utilization(self) -> float:
        """Mean per-node utilization against the cluster makespan."""
        if not self.nodes:
            return 0.0
        return sum(n.utilization for n in self.nodes) / len(self.nodes)

    @property
    def imbalance(self) -> float:
        """Max over mean per-node utilization (1.0 = perfectly even).

        Degenerate inputs (no nodes, zero mean) report 1.0 — an empty
        cluster is trivially balanced.
        """
        if not self.nodes:
            return 1.0
        mean = self.mean_utilization
        if mean <= 0.0:
            return 1.0
        return max(n.utilization for n in self.nodes) / mean

    @property
    def total_inter_node_bytes(self) -> int:
        """Bytes charged to the fabric (each hop counted once)."""
        return sum(int(s["bytes_moved"]) for s in self.link_stats)

    # -- stream-style per-job aggregates --------------------------------

    @property
    def throughput_jobs_per_s(self) -> float:
        """Completed jobs per second of virtual time."""
        if self.makespan_us <= 0:
            return 0.0
        return len(self.jobs) / (self.makespan_us * 1e-6)

    @property
    def mean_latency_us(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.latency_us for j in self.jobs) / len(self.jobs)

    @property
    def p95_latency_us(self) -> float:
        return percentile([j.latency_us for j in self.jobs], 0.95)

    @property
    def mean_queueing_us(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.queueing_us for j in self.jobs) / len(self.jobs)

    @property
    def slowdowns(self) -> list[float] | None:
        """Per-job slowdowns, or ``None`` when baselines were skipped."""
        vals = [j.slowdown for j in self.jobs]
        if any(v is None for v in vals):
            return None
        return vals  # type: ignore[return-value]

    @property
    def mean_slowdown(self) -> float | None:
        vals = self.slowdowns
        return sum(vals) / len(vals) if vals else None

    @property
    def max_slowdown(self) -> float | None:
        vals = self.slowdowns
        return max(vals) if vals else None

    @property
    def fairness(self) -> float:
        """Jain index over slowdowns (latencies without baselines)."""
        vals = self.slowdowns
        if vals is None:
            vals = [j.latency_us for j in self.jobs]
        return jain_fairness_index(vals)

    def jobs_on(self, node: str) -> list[ClusterJobResult]:
        """Completed jobs placed on the named node."""
        return [j for j in self.jobs if j.node == node]

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready report: cluster stats, nodes, placements, jobs."""
        return {
            "cluster": self.cluster_name,
            "policy": self.policy,
            "scheduler": self.scheduler,
            "n_nodes": len(self.nodes),
            "n_jobs": len(self.jobs),
            "n_rejected": len(self.rejected),
            "makespan_us": self.makespan_us,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "mean_utilization": self.mean_utilization,
            "imbalance": self.imbalance,
            "mean_latency_us": self.mean_latency_us,
            "p95_latency_us": self.p95_latency_us,
            "mean_queueing_us": self.mean_queueing_us,
            "mean_slowdown": self.mean_slowdown,
            "max_slowdown": self.max_slowdown,
            "fairness": self.fairness,
            "rounds": self.rounds,
            "converged": self.converged,
            "total_inter_node_bytes": self.total_inter_node_bytes,
            "n_cross_transfers": len(self.transfers),
            "nodes": [n.as_dict() for n in self.nodes],
            "placements": [
                self.placements[jid].as_dict() for jid in sorted(self.placements)
            ],
            "transfers": [t.as_dict() for t in self.transfers],
            "rejected": [
                {"jid": jid, "tenant": tenant, "reason": reason}
                for jid, tenant, reason in self.rejected
            ],
            "link_stats": list(self.link_stats),
            "jobs": [j.as_dict() for j in self.jobs],
        }
