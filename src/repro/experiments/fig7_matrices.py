"""Fig. 7 reproduction: the sparse matrix collection table.

The paper's Fig. 7 lists the ten matrices used for the QR_MUMPS
evaluation, sorted by factorization op count. We reproduce the table
verbatim from the published statistics and augment it with the
properties of the synthetic elimination tree each matrix maps to
(front count, tree depth, achieved op count) so the substitution is
auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.sparseqr.matrices import MATRICES, MatrixSpec, matrix_tree
from repro.experiments.reporting import format_table
from repro.sweep import CallSpec, run_tasks


@dataclass
class Fig7Row:
    """Published stats plus the synthetic tree's achieved numbers."""

    spec: MatrixSpec
    n_fronts: int
    tree_depth: int
    achieved_gflops: float
    scale: float

    @property
    def flop_error(self) -> float:
        """Relative deviation of the synthetic tree from the (scaled)
        published op count."""
        target = self.spec.gflops * self.scale
        return abs(self.achieved_gflops - target) / target


def _fig7_row(spec: MatrixSpec, scale: float, seed: int) -> Fig7Row:
    """Build one matrix's synthetic tree and collect its statistics
    (module-level so sweep workers can execute it by reference)."""
    tree = matrix_tree(spec, scale=scale, seed=seed)
    return Fig7Row(
        spec=spec,
        n_fronts=len(tree),
        tree_depth=tree.depth(),
        achieved_gflops=tree.total_factor_flops() / 1e9,
        scale=scale,
    )


def run_fig7(*, scale: float = 1.0, seed: int = 0, jobs: int = 1) -> list[Fig7Row]:
    """Build every synthetic tree (``jobs`` processes) and collect
    statistics."""
    tasks = [CallSpec(_fig7_row, (spec, scale, seed)) for spec in MATRICES]
    rows = run_tasks(tasks, jobs=jobs)
    rows.sort(key=lambda r: r.spec.gflops)
    return rows


def format_fig7(rows: list[Fig7Row]) -> str:
    """Render the Fig. 7 table plus synthetic-tree properties."""
    table_rows = [
        [
            r.spec.name,
            r.spec.rows,
            r.spec.cols,
            r.spec.nnz,
            f"{r.spec.gflops:,.0f}",
            r.n_fronts,
            r.tree_depth,
            f"{r.achieved_gflops:,.0f}",
        ]
        for r in rows
    ]
    scale = rows[0].scale if rows else 1.0
    return format_table(
        ["matrix", "rows", "cols", "nnz", "op.count (Gflop)", "fronts", "depth",
         f"synthetic Gflop (scale={scale:g})"],
        table_rows,
        title="Fig. 7: QR_MUMPS matrices (published stats + synthetic analogs)",
    )
