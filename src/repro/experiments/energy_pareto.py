"""Energy Pareto sweep: makespan × joules × fairness under power caps.

The paper's Section VII names energy efficiency as the intended
extension of multi-priority scheduling. This sweep makes the trade
measurable: the same Poisson job stream runs under four policies —

* ``multiprio`` — the paper's policy, energy-oblivious;
* ``multiprio-energy`` — the δ·P admission relaxation (work shifts to
  lean units whenever the energy trade is favourable);
* ``multiprio-edp`` — the δ²·P variant: joules only trade against a
  quadratically-penalized slowdown;
* ``eager`` — the greedy baseline, spreading work over every unit;

— each at three node power-cap levels (uncapped plus two fractions of
every node's peak busy draw), with the engine's power subsystem
(:class:`~repro.runtime.power.PowerStateModel`) metering joules and
enforcing the caps via DVFS downgrades and delayed starts. Every cell
reports makespan, whole-run joules, per-job attributed joules, mean
latency, Jain fairness and the throttle counters; rows that no other
row beats on *both* makespan and joules are marked Pareto-optimal.

Expected shape: uncapped, the energy-aware variants sit below plain
``multiprio`` on joules at a small makespan premium (the acceptance
property: at least one dominates on joules within a 10% makespan
cost). Caps compress the spread — once the hardware itself throttles,
policy-level energy awareness matters less — at a makespan price that
grows as the cap tightens. Cells are dispatched through
:mod:`repro.sweep`, so ``jobs=N`` is bit-identical to a serial run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.api import SimConfig, SimSpec
from repro.apps.dense import cholesky_program
from repro.experiments.overload import (
    estimate_job_cost_us,
    sustainable_rate_jobs_per_s,
)
from repro.experiments.reporting import format_table
from repro.platform.machines import MACHINES
from repro.runtime.power import PowerStateModel
from repro.sweep import CallSpec, run_tasks
from repro.workload.stream import JobStream, poisson_stream

DEFAULT_SCHEDULERS: tuple[str, ...] = (
    "multiprio", "multiprio-energy", "multiprio-edp", "eager",
)

#: Node cap levels as fractions of each node's peak busy draw
#: (``None`` = uncapped). Three levels per the sweep's design.
DEFAULT_CAP_FRACTIONS: tuple[float | None, ...] = (None, 0.8, 0.6)
QUICK_CAP_FRACTIONS: tuple[float | None, ...] = (None, 0.6)

#: Offered load as a multiple of the node's sustainable service rate:
#: busy enough that placement choices matter, not so overloaded that
#: queueing drowns the energy signal.
DEFAULT_LOAD = 1.5


def node_caps_for(
    machine: str, fraction: float, model: PowerStateModel | None = None
) -> dict[int, float]:
    """Per-node caps at ``fraction`` of each node's peak busy draw.

    Peak is the sum over the node's workers of their architecture's
    busy watts in the fastest runnable state. The cap is clamped up to
    the node's *feasibility floor* — the largest single-worker draw in
    the leanest runnable state — so the returned mapping always
    validates. On single-worker nodes (one GPU per memory node on the
    built-in machines) caps quantize to the state ladder: any fraction
    below the full draw forces the leaner state rather than a
    proportional slowdown, exactly like a real TDP limit pinning a
    device to a lower DVFS operating point.
    """
    model = model or PowerStateModel()
    platform = MACHINES[machine]().platform()
    states = model.run_states
    fast, lean = states[0], states[-1]
    caps: dict[int, float] = {}
    for node in platform.nodes:
        workers = platform.workers_of_node(node.mid)
        if not workers:
            continue
        draws = [model.power.arch_power(w.arch).busy_watts for w in workers]
        peak = sum(d * fast.busy_scale for d in draws)
        floor = max(d * lean.busy_scale for d in draws)
        caps[node.mid] = max(fraction * peak, floor)
    return caps


def energy_workload(
    *,
    rate_jobs_per_s: float,
    n_tenants: int,
    n_jobs: int,
    n_tiles: int = 4,
    tile_size: int = 256,
    seed: int = 0,
) -> JobStream:
    """A Poisson Cholesky stream over ``n_tenants`` tenants."""
    tenants = tuple(f"t{i:02d}" for i in range(n_tenants))
    return poisson_stream(
        [("cholesky", lambda: cholesky_program(n_tiles, tile_size))],
        rate_jobs_per_s=rate_jobs_per_s,
        n_jobs=n_jobs,
        seed=seed,
        tenants=tenants,
        name=f"energy-{rate_jobs_per_s:g}",
    )


@dataclass
class EnergyRow:
    """One (scheduler, cap level) cell of the sweep."""

    scheduler: str
    cap_fraction: float | None
    cap_watts: dict[int, float] | None
    makespan_us: float
    total_energy_j: float
    busy_energy_j: float
    jobs_energy_j: float
    mean_latency_us: float
    mean_edp_j_s: float
    fairness: float
    n_throttled: int
    throttle_delay_us: float
    n_jobs: int
    #: No other row beats this one on both makespan and joules.
    pareto: bool = False
    per_tenant: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def cap_label(self) -> str:
        if self.cap_fraction is None:
            return "none"
        return f"{self.cap_fraction:g}x"


@dataclass
class EnergyExperimentResult:
    """All rows of the energy Pareto sweep."""

    machine: str
    n_tenants: int
    n_jobs: int
    seed: int
    load: float
    rate_jobs_per_s: float
    rows: list[EnergyRow] = field(default_factory=list)

    def baseline_row(self) -> EnergyRow | None:
        """The uncapped plain-``multiprio`` row (the reference point)."""
        for row in self.rows:
            if row.scheduler == "multiprio" and row.cap_fraction is None:
                return row
        return None

    def dominating_rows(self, makespan_slack: float = 0.10) -> list[EnergyRow]:
        """Energy-aware rows that beat uncapped ``multiprio`` on joules
        within ``makespan_slack`` relative makespan cost — the sweep's
        acceptance property is that this list is non-empty."""
        base = self.baseline_row()
        if base is None:
            return []
        limit = base.makespan_us * (1.0 + makespan_slack)
        return [
            row
            for row in self.rows
            if row is not base
            and row.scheduler in ("multiprio-energy", "multiprio-edp")
            and row.total_energy_j < base.total_energy_j
            and row.makespan_us <= limit
        ]


def mark_pareto(rows: Sequence[EnergyRow]) -> None:
    """Flag rows no other row dominates on (makespan, joules), both
    minimized. Dominance is strict in at least one coordinate."""
    for row in rows:
        row.pareto = not any(
            other.makespan_us <= row.makespan_us
            and other.total_energy_j <= row.total_energy_j
            and (
                other.makespan_us < row.makespan_us
                or other.total_energy_j < row.total_energy_j
            )
            for other in rows
        )


def _energy_cell(
    scheduler: str,
    cap_fraction: float | None,
    *,
    machine: str,
    n_tenants: int,
    n_jobs: int,
    n_tiles: int,
    tile_size: int,
    rate_jobs_per_s: float,
    seed: int,
    check_invariants: bool,
) -> EnergyRow:
    """One cell, executed in whichever process the sweep picked."""
    caps = (
        node_caps_for(machine, cap_fraction)
        if cap_fraction is not None
        else None
    )
    power = PowerStateModel(node_cap_watts=caps)
    stream = energy_workload(
        rate_jobs_per_s=rate_jobs_per_s, n_tenants=n_tenants,
        n_jobs=n_jobs, n_tiles=n_tiles, tile_size=tile_size, seed=seed,
    )
    res = SimSpec(
        machine, scheduler, isolated_baseline=False,
        config=SimConfig(power=power, check_invariants=check_invariants),
    ).run_stream(stream)
    energy = res.sim.energy
    assert energy is not None  # the power model is always attached here
    return EnergyRow(
        scheduler=scheduler,
        cap_fraction=cap_fraction,
        cap_watts=caps,
        makespan_us=res.makespan_us,
        total_energy_j=energy.total_j,
        busy_energy_j=energy.busy_j,
        jobs_energy_j=res.jobs_energy_j,
        mean_latency_us=res.mean_latency_us,
        mean_edp_j_s=res.mean_edp_j_s,
        fairness=res.fairness,
        n_throttled=energy.n_throttled,
        throttle_delay_us=energy.throttle_delay_us,
        n_jobs=len(res.jobs),
        per_tenant=res.per_tenant(),
    )


def run_energy_experiment(
    *,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    cap_fractions: Sequence[float | None] = DEFAULT_CAP_FRACTIONS,
    machine: str = "small-hetero",
    n_tenants: int = 6,
    n_jobs: int = 24,
    n_tiles: int = 4,
    tile_size: int = 256,
    load: float = DEFAULT_LOAD,
    seed: int = 0,
    check_invariants: bool = False,
    jobs: int = 1,
    progress: Callable[[int, int], None] | None = None,
) -> EnergyExperimentResult:
    """The (scheduler × cap level) energy sweep; ``jobs=N`` is
    bit-identical to serial execution."""
    job_cost = estimate_job_cost_us(machine, n_tiles, tile_size)
    rate = load * sustainable_rate_jobs_per_s(machine, job_cost)
    cells = [
        CallSpec(
            _energy_cell,
            (scheduler, cap_fraction),
            {
                "machine": machine,
                "n_tenants": n_tenants,
                "n_jobs": n_jobs,
                "n_tiles": n_tiles,
                "tile_size": tile_size,
                "rate_jobs_per_s": rate,
                "seed": seed,
                "check_invariants": check_invariants,
            },
        )
        for scheduler in schedulers
        for cap_fraction in cap_fractions
    ]
    rows = list(run_tasks(cells, jobs=jobs, progress=progress))
    mark_pareto(rows)
    return EnergyExperimentResult(
        machine=machine,
        n_tenants=n_tenants,
        n_jobs=n_jobs,
        seed=seed,
        load=load,
        rate_jobs_per_s=rate,
        rows=rows,
    )


def format_energy_experiment(result: EnergyExperimentResult) -> str:
    """The sweep as an aligned text table (``*`` = Pareto-optimal)."""
    rows = [
        [
            ("* " if row.pareto else "  ") + row.scheduler,
            row.cap_label,
            f"{row.makespan_us / 1e3:.2f}",
            f"{row.total_energy_j:.3f}",
            f"{row.jobs_energy_j:.3f}",
            f"{row.mean_latency_us / 1e3:.2f}",
            f"{row.mean_edp_j_s:.4f}",
            f"{row.fairness:.3f}",
            f"{row.n_throttled}",
            f"{row.throttle_delay_us / 1e3:.2f}",
        ]
        for row in result.rows
    ]
    table = format_table(
        [
            "scheduler", "cap", "makespan ms", "total J", "job J",
            "lat ms", "EDP J.s", "fairness", "thr", "delay ms",
        ],
        rows,
        title=(
            f"energy pareto on {result.machine} "
            f"({result.n_tenants} tenants, {result.n_jobs} jobs/cell, "
            f"load {result.load:g}x, seed {result.seed}; "
            f"* = Pareto-optimal on makespan x joules)"
        ),
    )
    base = result.baseline_row()
    dominating = result.dominating_rows()
    if base is None:
        verdict = "no uncapped multiprio baseline in the grid"
    elif dominating:
        best = min(dominating, key=lambda r: r.total_energy_j)
        saved = 100.0 * (1.0 - best.total_energy_j / base.total_energy_j)
        cost = 100.0 * (best.makespan_us / base.makespan_us - 1.0)
        verdict = (
            f"{best.scheduler} (cap {best.cap_label}) saves {saved:.1f}% "
            f"joules at {cost:+.1f}% makespan vs uncapped multiprio"
        )
    else:
        verdict = (
            "no energy-aware row beat uncapped multiprio on joules "
            "within 10% makespan"
        )
    return f"{table}\n{verdict}"


def energy_report(result: EnergyExperimentResult) -> dict[str, Any]:
    """JSON-ready report with per-tenant joules per cell."""
    return {
        "experiment": "energy",
        "machine": result.machine,
        "n_tenants": result.n_tenants,
        "n_jobs": result.n_jobs,
        "seed": result.seed,
        "load": result.load,
        "rate_jobs_per_s": result.rate_jobs_per_s,
        "n_dominating": len(result.dominating_rows()),
        "rows": [
            {
                "scheduler": row.scheduler,
                "cap_fraction": row.cap_fraction,
                "cap_watts": (
                    {str(mid): w for mid, w in row.cap_watts.items()}
                    if row.cap_watts is not None
                    else None
                ),
                "makespan_us": row.makespan_us,
                "total_energy_j": row.total_energy_j,
                "busy_energy_j": row.busy_energy_j,
                "jobs_energy_j": row.jobs_energy_j,
                "mean_latency_us": row.mean_latency_us,
                "mean_edp_j_s": row.mean_edp_j_s,
                "fairness": row.fairness,
                "n_throttled": row.n_throttled,
                "throttle_delay_us": row.throttle_delay_us,
                "n_jobs": row.n_jobs,
                "pareto": row.pareto,
                "per_tenant": row.per_tenant,
            }
            for row in result.rows
        ],
    }


def write_energy_report(result: EnergyExperimentResult, path: str) -> None:
    """Serialize :func:`energy_report` to ``path``."""
    with open(path, "w") as fh:
        json.dump(energy_report(result), fh, indent=2)
        fh.write("\n")
