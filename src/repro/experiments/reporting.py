"""Plain-text rendering of experiment tables and series."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], *, unit: str = ""
) -> str:
    """Render one named (x, y) series as aligned columns."""
    lines = [f"{name}{f' [{unit}]' if unit else ''}:"]
    for x, y in zip(xs, ys):
        lines.append(f"  {str(x):>12} {y:12.3f}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
