"""Arrival-rate sweep: schedulers under an online multi-tenant stream.

No direct paper counterpart — the paper's experiments feed one static
DAG at a time — but its subject is *dynamic* scheduling, and the regime
where policies actually differentiate is a node shared by jobs that
arrive over time. This sweep offers a Poisson stream of small dense
jobs (Cholesky + LU, two tenants) at increasing arrival rates and
reports, per (scheduler, rate): throughput, mean/p95 latency, queueing
delay, slowdown vs each job running alone, and Jain's fairness index
over the per-job slowdowns.

Expected shape: at light load every scheduler sits near slowdown 1.0
and fairness 1.0; as the offered load approaches the node's capacity,
latencies and slowdowns fan out and locality-aware policies hold
fairness longer. Cells are dispatched through :mod:`repro.sweep`, so
``jobs=N`` is bit-identical to a serial run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.api import SimConfig, SimSpec
from repro.apps.dense import cholesky_program, lu_program
from repro.experiments.reporting import format_table
from repro.sweep import CallSpec, run_tasks
from repro.workload.stream import JobStream, poisson_stream

#: Offered arrival rates (jobs/s). The default job mix services at
#: roughly 6-8 ms/job on the default machine, so the top rate pushes
#: the node well past saturation.
DEFAULT_RATES: tuple[float, ...] = (20.0, 60.0, 180.0)

DEFAULT_SCHEDULERS: tuple[str, ...] = ("multiprio", "dmdas", "heteroprio")


def stream_workload(
    *,
    rate_jobs_per_s: float,
    n_jobs: int = 8,
    n_tiles: int = 5,
    tile_size: int = 512,
    seed: int = 0,
) -> JobStream:
    """The sweep's canonical workload: a two-tenant Poisson mix of
    small Cholesky and LU jobs."""
    return poisson_stream(
        [
            ("cholesky", lambda: cholesky_program(n_tiles, tile_size)),
            ("lu", lambda: lu_program(n_tiles, tile_size)),
        ],
        rate_jobs_per_s=rate_jobs_per_s,
        n_jobs=n_jobs,
        seed=seed,
        tenants=("tenant0", "tenant1"),
        name=f"poisson-{rate_jobs_per_s:g}",
    )


@dataclass
class StreamRow:
    """One (scheduler, arrival rate) cell of the sweep."""

    scheduler: str
    rate_jobs_per_s: float
    n_jobs: int
    makespan_us: float
    throughput_jobs_per_s: float
    mean_latency_us: float
    p95_latency_us: float
    mean_queueing_us: float
    mean_slowdown: float
    max_slowdown: float
    fairness: float
    per_tenant: dict[str, dict[str, float]] = field(default_factory=dict)
    jobs: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class StreamExperimentResult:
    """All rows of the arrival-rate sweep."""

    machine: str
    n_jobs: int
    seed: int
    rows: list[StreamRow] = field(default_factory=list)


def _stream_cell(
    scheduler: str,
    rate: float,
    *,
    machine: str,
    n_jobs: int,
    n_tiles: int,
    tile_size: int,
    seed: int,
    window: int | None,
) -> StreamRow:
    """One cell, executed in whichever process the sweep picked."""
    stream = stream_workload(
        rate_jobs_per_s=rate, n_jobs=n_jobs,
        n_tiles=n_tiles, tile_size=tile_size, seed=seed,
    )
    res = SimSpec(
        machine, scheduler, config=SimConfig(submission_window=window),
    ).run_stream(stream)
    return StreamRow(
        scheduler=scheduler,
        rate_jobs_per_s=rate,
        n_jobs=n_jobs,
        makespan_us=res.makespan_us,
        throughput_jobs_per_s=res.throughput_jobs_per_s,
        mean_latency_us=res.mean_latency_us,
        p95_latency_us=res.p95_latency_us,
        mean_queueing_us=res.mean_queueing_us,
        mean_slowdown=res.mean_slowdown or 0.0,
        max_slowdown=res.max_slowdown or 0.0,
        fairness=res.fairness,
        per_tenant=res.per_tenant(),
        jobs=[j.as_dict() for j in res.jobs],
    )


def run_stream_experiment(
    *,
    rates: Sequence[float] = DEFAULT_RATES,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    machine: str = "small-hetero",
    n_jobs: int = 8,
    n_tiles: int = 5,
    tile_size: int = 512,
    seed: int = 0,
    window: int | None = None,
    jobs: int = 1,
    progress: Callable[[int, int], None] | None = None,
) -> StreamExperimentResult:
    """The (scheduler × arrival rate) sweep; ``jobs=N`` is bit-identical
    to serial execution (cells are pure functions of their arguments)."""
    cells = [
        CallSpec(
            _stream_cell,
            (scheduler, float(rate)),
            {
                "machine": machine,
                "n_jobs": n_jobs,
                "n_tiles": n_tiles,
                "tile_size": tile_size,
                "seed": seed,
                "window": window,
            },
        )
        for scheduler in schedulers
        for rate in rates
    ]
    rows = run_tasks(cells, jobs=jobs, progress=progress)
    return StreamExperimentResult(
        machine=machine, n_jobs=n_jobs, seed=seed, rows=list(rows)
    )


def format_stream_experiment(result: StreamExperimentResult) -> str:
    """The sweep as an aligned text table."""
    rows = [
        [
            row.scheduler,
            f"{row.rate_jobs_per_s:g}",
            f"{row.throughput_jobs_per_s:.1f}",
            f"{row.mean_latency_us / 1e3:.2f}",
            f"{row.p95_latency_us / 1e3:.2f}",
            f"{row.mean_queueing_us / 1e3:.2f}",
            f"{row.mean_slowdown:.2f}",
            f"{row.max_slowdown:.2f}",
            f"{row.fairness:.3f}",
        ]
        for row in result.rows
    ]
    return format_table(
        [
            "scheduler", "rate/s", "tput/s", "lat ms", "p95 ms",
            "queue ms", "slow", "max slow", "fairness",
        ],
        rows,
        title=(
            f"poisson stream on {result.machine} "
            f"({result.n_jobs} jobs/cell, seed {result.seed})"
        ),
    )


def stream_report(result: StreamExperimentResult) -> dict[str, Any]:
    """JSON-ready report with per-job stats for every cell."""
    return {
        "experiment": "stream",
        "machine": result.machine,
        "n_jobs": result.n_jobs,
        "seed": result.seed,
        "rows": [
            {
                "scheduler": row.scheduler,
                "rate_jobs_per_s": row.rate_jobs_per_s,
                "makespan_us": row.makespan_us,
                "throughput_jobs_per_s": row.throughput_jobs_per_s,
                "mean_latency_us": row.mean_latency_us,
                "p95_latency_us": row.p95_latency_us,
                "mean_queueing_us": row.mean_queueing_us,
                "mean_slowdown": row.mean_slowdown,
                "max_slowdown": row.max_slowdown,
                "fairness": row.fairness,
                "per_tenant": row.per_tenant,
                "jobs": row.jobs,
            }
            for row in result.rows
        ],
    }


def write_stream_report(result: StreamExperimentResult, path: str) -> None:
    """Serialize :func:`stream_report` to ``path``."""
    with open(path, "w") as fh:
        json.dump(stream_report(result), fh, indent=2)
        fh.write("\n")
