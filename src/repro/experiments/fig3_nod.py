"""Fig. 3 reproduction: the NOD criticality worked example.

The paper's example DAG has two ready tasks T2 and T3 with
NOD(T2) = 2.5 and NOD(T3) = 1. The figure itself shows a 7-node DAG;
we reconstruct the smallest DAG consistent with the printed values:

* T2's successors: T4 (two predecessors, shared with T3... no — shared
  with T1), T5 and T6 (single-predecessor) → 1/2 + 1 + 1 = 2.5;
* T3's successors: T4 would give 1/2... T3 has one successor T7 with a
  single predecessor → 1.

Concretely: T1 (done) precedes T2 and T3 (ready). T2 → {T4, T5, T6},
T3 → {T7}, and T4 has one additional completed predecessor T1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.criticality import nod
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, Task


@dataclass
class Fig3Result:
    """NOD values of the two ready tasks."""

    nod_t2: float
    nod_t3: float
    tasks: dict[str, Task]


def build_fig3_dag() -> dict[str, Task]:
    """Build the example DAG through the STF front-end."""
    flow = TaskFlow("fig3")
    d1 = flow.data(8, label="d1")  # T1 -> T2
    d2 = flow.data(8, label="d2")  # T1 -> T3, T4
    d3 = flow.data(8, label="d3")  # T2 -> T4
    d4 = flow.data(8, label="d4")  # T2 -> T5
    d5 = flow.data(8, label="d5")  # T2 -> T6
    d6 = flow.data(8, label="d6")  # T3 -> T7
    W, R = AccessMode.W, AccessMode.R
    tasks = {
        "T1": flow.submit("t1", [(d1, W), (d2, W)]),
        "T2": flow.submit("t2", [(d1, R), (d3, W), (d4, W), (d5, W)]),
        "T3": flow.submit("t3", [(d2, R), (d6, W)]),
        "T4": flow.submit("t4", [(d2, R), (d3, R)]),
        "T5": flow.submit("t5", [(d4, R)]),
        "T6": flow.submit("t6", [(d5, R)]),
        "T7": flow.submit("t7", [(d6, R)]),
    }
    flow.program()
    return tasks


def run_fig3() -> Fig3Result:
    """Compute NOD(T2) and NOD(T3) on the example DAG."""
    tasks = build_fig3_dag()
    return Fig3Result(
        nod_t2=nod(tasks["T2"]),
        nod_t3=nod(tasks["T3"]),
        tasks=tasks,
    )


def format_fig3(result: Fig3Result) -> str:
    """Render the computed values next to the published ones."""
    return (
        "Fig. 3: NOD criticality worked example\n"
        f"  NOD(T2) ours = {result.nod_t2:.1f}   paper = 2.5\n"
        f"  NOD(T3) ours = {result.nod_t3:.1f}   paper = 1.0"
    )
