"""Overload sweep: the control plane under 1x-10x offered load.

No direct paper counterpart — the paper schedules one DAG at a time —
but a heterogeneous node shared by *dozens* of tenants is exactly where
dynamic multi-priority scheduling needs an admission story. This sweep
offers a mixed-QoS Poisson stream (guaranteed / burstable / best-effort
tenants, round-robin) at multiples of the node's sustainable service
rate and compares an uncontrolled run against one behind
:mod:`repro.control`: completion/rejection/eviction counts, SLO-miss
rate, per-class p99 slowdown and tenant fairness.

Expected shape: uncontrolled, every class degrades together — p99
slowdown grows without bound with the overload multiplier. Controlled,
the plane sheds best-effort and (after its delay budget) burstable work
so the guaranteed class stays near its isolated latency, at the price
of an explicit rejection rate; no guaranteed job is ever rejected.
Cells are dispatched through :mod:`repro.sweep`, so ``jobs=N`` is
bit-identical to a serial run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.analysis.stats import percentile
from repro.api import SimConfig, SimSpec
from repro.apps.dense import cholesky_program
from repro.control.plane import default_overload_config
from repro.experiments.reporting import format_table
from repro.platform.machines import MACHINES
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.sweep import CallSpec, run_tasks
from repro.workload.stream import QOS_CLASSES, JobStream, poisson_stream

#: Offered load as multiples of the node's sustainable service rate.
DEFAULT_MULTIPLIERS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 10.0)
QUICK_MULTIPLIERS: tuple[float, ...] = (1.0, 4.0)

DEFAULT_SCHEDULERS: tuple[str, ...] = ("multiprio",)


def estimate_job_cost_us(
    machine: str, n_tiles: int = 4, tile_size: int = 256
) -> float:
    """One job's work in µs: Σ over its tasks of the best-arch estimate.

    The same costing the control plane itself applies, so quotas derived
    from this number are exact in expectation.
    """
    mach = MACHINES[machine]()
    platform = mach.platform()
    pm = AnalyticalPerfModel(mach.calibration())
    archs = [a for a in platform.archs if platform.n_workers(a) > 0]
    program = cholesky_program(n_tiles, tile_size)
    return sum(
        min(pm.estimate(t, a) for a in archs if t.can_exec(a))
        for t in program.tasks
    )


def sustainable_rate_jobs_per_s(machine: str, job_cost_us: float) -> float:
    """Arrival rate that saturates every worker with zero headroom."""
    n_workers = len(MACHINES[machine]().platform().workers)
    return n_workers * 1e6 / job_cost_us


def overload_workload(
    *,
    rate_jobs_per_s: float,
    n_tenants: int,
    n_jobs: int,
    n_tiles: int = 4,
    tile_size: int = 256,
    seed: int = 0,
) -> JobStream:
    """A Poisson stream over ``n_tenants`` tenants whose QoS classes
    round-robin through guaranteed / burstable / best-effort."""
    tenants = tuple(f"t{i:02d}" for i in range(n_tenants))
    return poisson_stream(
        [("cholesky", lambda: cholesky_program(n_tiles, tile_size))],
        rate_jobs_per_s=rate_jobs_per_s,
        n_jobs=n_jobs,
        seed=seed,
        tenants=tenants,
        qos=QOS_CLASSES,
        name=f"overload-{rate_jobs_per_s:g}",
    )


@dataclass
class OverloadRow:
    """One (scheduler, multiplier, controlled?) cell of the sweep."""

    scheduler: str
    multiplier: float
    controlled: bool
    rate_jobs_per_s: float
    arrived: int
    completed: int
    rejected: int
    evicted: int
    delays: int
    slo_miss_rate: float
    mean_latency_us: float
    p99_latency_us: float
    p99_slowdown: float
    guaranteed_p99_slowdown: float
    tenant_fairness: float
    makespan_us: float
    per_class: dict[str, dict[str, float]] = field(default_factory=dict)
    per_tenant: dict[str, dict[str, float]] = field(default_factory=dict)


@dataclass
class OverloadExperimentResult:
    """All rows of the overload sweep."""

    machine: str
    n_tenants: int
    n_jobs: int
    seed: int
    job_cost_us: float
    sustainable_rate_jobs_per_s: float
    rows: list[OverloadRow] = field(default_factory=list)


def _class_p99_slowdowns(res, qos_of_jid: dict[int, str]) -> dict[str, float]:
    """Per-QoS-class p99 slowdown of an (un)controlled StreamResult."""
    grouped: dict[str, list[float]] = {}
    for job in res.jobs:
        slow = job.slowdown
        if slow is not None:
            grouped.setdefault(qos_of_jid[job.jid], []).append(slow)
    return {qos: percentile(vals, 0.99) for qos, vals in grouped.items()}


def _overload_cell(
    scheduler: str,
    multiplier: float,
    controlled: bool,
    *,
    machine: str,
    n_tenants: int,
    n_jobs: int,
    n_tiles: int,
    tile_size: int,
    seed: int,
    check_invariants: bool,
) -> OverloadRow:
    """One cell, executed in whichever process the sweep picked."""
    job_cost = estimate_job_cost_us(machine, n_tiles, tile_size)
    sustainable = sustainable_rate_jobs_per_s(machine, job_cost)
    rate = multiplier * sustainable
    stream = overload_workload(
        rate_jobs_per_s=rate, n_tenants=n_tenants, n_jobs=n_jobs,
        n_tiles=n_tiles, tile_size=tile_size, seed=seed,
    )
    control = None
    if controlled:
        n_workers = len(MACHINES[machine]().platform().workers)
        control = default_overload_config(
            tenants=tuple(f"t{i:02d}" for i in range(n_tenants)),
            sustainable_work_per_s=float(n_workers),
            job_cost_us=job_cost,
            max_inflight_jobs=2.0 * n_workers,
        )
    res = SimSpec(
        machine, scheduler, control=control,
        config=SimConfig(check_invariants=check_invariants),
    ).run_stream(stream)
    qos_of_jid = {job.jid: job.qos for job in stream.jobs}
    if res.control is not None:
        overall = res.control.overall()
        per_class = res.control.per_class()
        per_tenant = res.control.per_tenant()
        guaranteed_p99 = per_class.get("guaranteed", {}).get(
            "p99_slowdown", 0.0
        )
        row_counts = {
            "arrived": res.control.n_arrived,
            "completed": res.control.n_completed,
            "rejected": res.control.n_rejected,
            "evicted": res.control.n_evicted,
            "delays": res.control.n_delays,
        }
        slo_miss = overall["slo_miss_rate"]
        p99_slow = overall["p99_slowdown"]
    else:
        class_p99 = _class_p99_slowdowns(res, qos_of_jid)
        per_class = {
            qos: {"p99_slowdown": p99} for qos, p99 in class_p99.items()
        }
        per_tenant = res.per_tenant()
        guaranteed_p99 = class_p99.get("guaranteed", 0.0)
        row_counts = {
            "arrived": len(stream.jobs),
            "completed": len(res.jobs),
            "rejected": 0,
            "evicted": 0,
            "delays": 0,
        }
        slows = res.slowdowns or []
        slo_miss = (
            sum(1 for s in slows if s > 4.0) / len(slows) if slows else 0.0
        )
        p99_slow = percentile(slows, 0.99)
    return OverloadRow(
        scheduler=scheduler,
        multiplier=multiplier,
        controlled=controlled,
        rate_jobs_per_s=rate,
        arrived=int(row_counts["arrived"]),
        completed=int(row_counts["completed"]),
        rejected=int(row_counts["rejected"]),
        evicted=int(row_counts["evicted"]),
        delays=int(row_counts["delays"]),
        slo_miss_rate=slo_miss,
        mean_latency_us=res.mean_latency_us,
        p99_latency_us=res.p99_latency_us,
        p99_slowdown=p99_slow,
        guaranteed_p99_slowdown=guaranteed_p99,
        tenant_fairness=res.tenant_fairness,
        makespan_us=res.makespan_us,
        per_class=per_class,
        per_tenant=per_tenant,
    )


def run_overload_experiment(
    *,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    machine: str = "small-hetero",
    n_tenants: int = 24,
    n_jobs: int = 72,
    n_tiles: int = 4,
    tile_size: int = 256,
    seed: int = 0,
    check_invariants: bool = False,
    jobs: int = 1,
    progress: Callable[[int, int], None] | None = None,
) -> OverloadExperimentResult:
    """The (scheduler × multiplier × {uncontrolled, controlled}) sweep;
    ``jobs=N`` is bit-identical to serial execution."""
    cells = [
        CallSpec(
            _overload_cell,
            (scheduler, float(multiplier), controlled),
            {
                "machine": machine,
                "n_tenants": n_tenants,
                "n_jobs": n_jobs,
                "n_tiles": n_tiles,
                "tile_size": tile_size,
                "seed": seed,
                "check_invariants": check_invariants,
            },
        )
        for scheduler in schedulers
        for multiplier in multipliers
        for controlled in (False, True)
    ]
    rows = run_tasks(cells, jobs=jobs, progress=progress)
    job_cost = estimate_job_cost_us(machine, n_tiles, tile_size)
    return OverloadExperimentResult(
        machine=machine,
        n_tenants=n_tenants,
        n_jobs=n_jobs,
        seed=seed,
        job_cost_us=job_cost,
        sustainable_rate_jobs_per_s=sustainable_rate_jobs_per_s(
            machine, job_cost
        ),
        rows=list(rows),
    )


def format_overload_experiment(result: OverloadExperimentResult) -> str:
    """The sweep as an aligned text table."""
    rows = [
        [
            row.scheduler,
            f"{row.multiplier:g}x",
            "ctl" if row.controlled else "raw",
            f"{row.completed}/{row.arrived}",
            f"{row.rejected}",
            f"{row.evicted}",
            f"{row.delays}",
            f"{row.slo_miss_rate:.2f}",
            f"{row.mean_latency_us / 1e3:.2f}",
            f"{row.p99_slowdown:.2f}",
            f"{row.guaranteed_p99_slowdown:.2f}",
            f"{row.tenant_fairness:.3f}",
        ]
        for row in result.rows
    ]
    return format_table(
        [
            "scheduler", "load", "mode", "done", "rej", "evct", "dly",
            "miss", "lat ms", "p99 slow", "g p99", "fairness",
        ],
        rows,
        title=(
            f"overload sweep on {result.machine} "
            f"({result.n_tenants} tenants, {result.n_jobs} jobs/cell, "
            f"sustainable {result.sustainable_rate_jobs_per_s:.1f} jobs/s, "
            f"seed {result.seed})"
        ),
    )


def overload_report(result: OverloadExperimentResult) -> dict[str, Any]:
    """JSON-ready report with per-class/per-tenant stats per cell."""
    return {
        "experiment": "overload",
        "machine": result.machine,
        "n_tenants": result.n_tenants,
        "n_jobs": result.n_jobs,
        "seed": result.seed,
        "job_cost_us": result.job_cost_us,
        "sustainable_rate_jobs_per_s": result.sustainable_rate_jobs_per_s,
        "rows": [
            {
                "scheduler": row.scheduler,
                "multiplier": row.multiplier,
                "controlled": row.controlled,
                "rate_jobs_per_s": row.rate_jobs_per_s,
                "arrived": row.arrived,
                "completed": row.completed,
                "rejected": row.rejected,
                "evicted": row.evicted,
                "delays": row.delays,
                "slo_miss_rate": row.slo_miss_rate,
                "mean_latency_us": row.mean_latency_us,
                "p99_latency_us": row.p99_latency_us,
                "p99_slowdown": row.p99_slowdown,
                "guaranteed_p99_slowdown": row.guaranteed_p99_slowdown,
                "tenant_fairness": row.tenant_fairness,
                "makespan_us": row.makespan_us,
                "per_class": row.per_class,
                "per_tenant": row.per_tenant,
            }
            for row in result.rows
        ],
    }


def write_overload_report(result: OverloadExperimentResult, path: str) -> None:
    """Serialize :func:`overload_report` to ``path``."""
    with open(path, "w") as fh:
        json.dump(overload_report(result), fh, indent=2)
        fh.write("\n")
