"""Fig. 6 reproduction: TBFMM execution time on both platforms.

The paper runs a 10⁶-particle, height-6 FMM and compares MultiPrio,
Dmdas and HeteroPrio on Intel-V100 and AMD-A100 while varying the GPU
stream count. No user priorities are set. Expected shape: MultiPrio
achieves the shortest makespan on both platforms — the FMM DAG is very
disconnected, so workload balance plus per-task affinity dominates,
which is unfavourable for the task-centric Dmdas; HeteroPrio sits in
between.

Paper scale: 10⁶ particles, height 6 (hours of compute). Default here:
2x10⁵ particles, height 5 — the DAG shape (wide, mixed granularity from
the ellipsoid distribution) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.apps.fmm import fmm_program
from repro.experiments.reporting import format_table
from repro.platform.machines import amd_a100, intel_v100
from repro.sweep import CallSpec, SweepCell, SweepSpec, run_sweep

#: Execution variance of the FMM kernels (irregular particle boxes).
FMM_NOISE = 0.15


@dataclass
class Fig6Cell:
    """Makespan of one (machine, scheduler, streams) combination."""

    machine: str
    scheduler: str
    gpu_streams: int
    makespan_us: float


@dataclass
class Fig6Result:
    """The full grid plus the per-(machine, scheduler) best."""

    cells: list[Fig6Cell] = field(default_factory=list)

    def best(self, machine: str, scheduler: str) -> Fig6Cell:
        """Best-stream cell for one machine/scheduler."""
        mine = [
            c for c in self.cells if c.machine == machine and c.scheduler == scheduler
        ]
        return min(mine, key=lambda c: c.makespan_us)

    def winner(self, machine: str) -> str:
        """Scheduler with the shortest best makespan on ``machine``."""
        schedulers = {c.scheduler for c in self.cells if c.machine == machine}
        return min(schedulers, key=lambda s: self.best(machine, s).makespan_us)


def fig6_spec(
    *,
    n_particles: int = 200_000,
    height: int = 5,
    distribution: str = "ellipsoid",
    schedulers: Sequence[str] = ("multiprio", "dmdas", "heteroprio"),
    stream_counts: Sequence[int] = (1, 2, 4),
    machines: Sequence[str] = ("intel-v100", "amd-a100"),
    seed: int = 0,
) -> SweepSpec:
    """The FMM grid as a declarative cell list. The particle
    distribution is seeded, so rebuilding the program per cell yields
    the identical task graph in every worker process."""
    program = CallSpec(
        fmm_program,
        kwargs=dict(
            n_particles=n_particles,
            height=height,
            distribution=distribution,
            seed=seed,
        ),
    )
    factories = {"intel-v100": intel_v100, "amd-a100": amd_a100}
    cells = [
        SweepCell(
            program=program,
            machine=factories[machine_name](gpu_streams=streams),
            scheduler=sched,
            seed=seed,
            noise_sigma=FMM_NOISE,
            extra={"gpu_streams": streams},
        )
        for machine_name in machines
        for streams in stream_counts
        for sched in schedulers
    ]
    return SweepSpec(experiment="fig6", cells=cells)


def run_fig6(
    *,
    n_particles: int = 200_000,
    height: int = 5,
    distribution: str = "ellipsoid",
    schedulers: Sequence[str] = ("multiprio", "dmdas", "heteroprio"),
    stream_counts: Sequence[int] = (1, 2, 4),
    machines: Sequence[str] = ("intel-v100", "amd-a100"),
    seed: int = 0,
    jobs: int = 1,
    progress=None,
) -> Fig6Result:
    """Run the FMM grid (schedulers x machines x stream counts)."""
    spec = fig6_spec(
        n_particles=n_particles,
        height=height,
        distribution=distribution,
        schedulers=schedulers,
        stream_counts=stream_counts,
        machines=machines,
        seed=seed,
    )
    rows = run_sweep(spec, jobs=jobs, progress=progress)
    result = Fig6Result()
    for row in rows:
        result.cells.append(
            Fig6Cell(
                machine=row.machine,
                scheduler=row.scheduler,
                gpu_streams=row.extra["gpu_streams"],
                makespan_us=row.makespan_us,
            )
        )
    return result


def format_fig6(result: Fig6Result) -> str:
    """Render the grid with the per-machine winner."""
    rows = [
        [c.machine, c.scheduler, c.gpu_streams, f"{c.makespan_us / 1e3:.2f}"]
        for c in result.cells
    ]
    table = format_table(
        ["machine", "scheduler", "streams", "makespan ms"],
        rows,
        title="Fig. 6: TBFMM execution time (no user priorities)",
    )
    machines = sorted({c.machine for c in result.cells})
    winners = ", ".join(f"{m}: {result.winner(m)}" for m in machines)
    return f"{table}\nshortest makespan — {winners} (paper: multiprio on both)"
