"""Experiment harnesses: one module per paper table/figure.

Every experiment exposes a ``run_*`` function returning plain data
(dataclasses / dicts) and a ``format_*`` function rendering the same
rows/series the paper reports; the ``benchmarks/`` suite calls both.

Scaling: the paper's runs are hours of wall-clock on real hardware; the
defaults here are simulation-sized. Each experiment takes explicit size
parameters with defaults chosen so the full suite runs on a laptop, and
the module docstrings state the paper-scale values.
"""

from repro.experiments.harness import (
    ExperimentResult,
    run_grid,
    run_one,
    speedup_table,
)
from repro.experiments.reporting import format_table, format_series

__all__ = [
    "ExperimentResult",
    "run_grid",
    "run_one",
    "speedup_table",
    "format_table",
    "format_series",
]
