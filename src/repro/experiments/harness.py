"""Shared experiment plumbing: run (program x machine x scheduler) grids."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.api import SimConfig, SimSpec
from repro.obs.events import RecordLevel
from repro.platform.machines import MachineModel
from repro.runtime.engine import SimResult
from repro.runtime.stf import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.perfmodel import PerfModel


@dataclass
class ExperimentResult:
    """One simulated run within an experiment grid."""

    experiment: str
    machine: str
    scheduler: str
    workload: str
    makespan_us: float
    gflops: float
    bytes_transferred: int
    idle_frac_by_arch: dict[str, float] = field(default_factory=dict)
    extra: dict[str, float] = field(default_factory=dict)


def run_one(
    program: Program,
    machine: MachineModel,
    scheduler_name: str,
    *,
    experiment: str = "",
    seed: int = 0,
    noise_sigma: float = 0.0,
    perfmodel: "PerfModel | None" = None,
    record_trace: bool = False,
    record_level: RecordLevel | str | int = RecordLevel.OFF,
    sched_params: dict | None = None,
) -> tuple[ExperimentResult, SimResult]:
    """Simulate one (program, machine, scheduler) combination.

    A thin wrapper over :meth:`repro.api.SimSpec.run` that additionally
    shapes the outcome into an :class:`ExperimentResult` row.
    ``perfmodel`` overrides the default analytical model (making e.g.
    :class:`~repro.runtime.perfmodel.HistoryPerfModel` runs reachable
    from the harness); ``record_level`` enables the observability
    subsystem for the run — the returned :class:`SimResult` then
    carries the event stream and a metrics snapshot (see
    :mod:`repro.obs`).
    """
    res = SimSpec(
        machine,
        scheduler_name,
        config=SimConfig(
            seed=seed,
            noise_sigma=noise_sigma,
            perfmodel=perfmodel,
            record_trace=record_trace,
            record_level=record_level,
            sched_params=dict(sched_params) if sched_params else {},
        ),
    ).run(program)
    row = ExperimentResult(
        experiment=experiment,
        machine=machine.name,
        scheduler=scheduler_name,
        workload=program.name,
        makespan_us=res.makespan,
        gflops=res.gflops,
        bytes_transferred=res.bytes_transferred,
        idle_frac_by_arch=dict(res.idle_frac_by_arch),
    )
    return row, res


def run_grid(
    programs: Iterable[Program],
    machines: Iterable[MachineModel],
    schedulers: Iterable[str],
    *,
    experiment: str = "",
    seed: int = 0,
    noise_sigma: float = 0.0,
    progress: Callable[[ExperimentResult], None] | None = None,
) -> list[ExperimentResult]:
    """Run the full cartesian grid; returns one row per combination."""
    rows: list[ExperimentResult] = []
    for machine in machines:
        for program in programs:
            for scheduler_name in schedulers:
                row, _ = run_one(
                    program,
                    machine,
                    scheduler_name,
                    experiment=experiment,
                    seed=seed,
                    noise_sigma=noise_sigma,
                )
                rows.append(row)
                if progress is not None:
                    progress(row)
    return rows


def speedup_table(
    rows: list[ExperimentResult], reference: str = "dmdas"
) -> dict[tuple[str, str], dict[str, float]]:
    """Per (machine, workload): scheduler -> makespan ratio vs reference.

    Ratio > 1 means faster than the reference (the paper's Fig. 8
    convention: "higher ratios indicate better results").
    """
    by_key: dict[tuple[str, str], dict[str, float]] = {}
    for row in rows:
        by_key.setdefault((row.machine, row.workload), {})[row.scheduler] = row.makespan_us
    out: dict[tuple[str, str], dict[str, float]] = {}
    for key, spans in by_key.items():
        ref = spans.get(reference)
        if ref is None or ref <= 0:
            continue
        out[key] = {sched: ref / span for sched, span in spans.items() if span > 0}
    return out
