"""Fig. 4 reproduction: the eviction-mechanism ablation.

The paper simulates (StarPU over SimGrid) a Cholesky factorization of a
960 x 20-tile matrix on a node with 1 GPU and 6 CPU workers, and
compares MultiPrio with and without the eviction mechanism: without it,
slow workers grab critical tasks near the end of the run and the GPU
idles (29% idle); with it the GPU idle drops to 1% and the makespan
shrinks.

We reproduce the full setup: same workload, same platform shape, per-
resource idle percentages, makespans, and the practical critical path.
The whole analysis is regenerated from the observability event stream
(``record_level="decisions"``) rather than the engine's built-in trace:
the Gantt, idle fractions and critical path come out of
:mod:`repro.obs.export`, and the decision counts expose how often the
pop condition actually fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.dense.cholesky import cholesky_program
from repro.schedulers.multiprio import MultiPrio
from repro.obs.export import (
    decision_counts,
    idle_fractions_from_events,
    trace_from_events,
)
from repro.platform.machines import fig4_machine
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.trace import Trace


@dataclass
class Fig4Variant:
    """One trace of the ablation (with or without eviction)."""

    label: str
    makespan_us: float
    gpu_idle_frac: float
    cpu_idle_frac: float
    critical_path_len: int
    trace: Trace
    decisions: dict[str, int] = field(default_factory=dict)


@dataclass
class Fig4Result:
    """Both variants plus the headline deltas."""

    with_eviction: Fig4Variant
    without_eviction: Fig4Variant

    @property
    def gpu_idle_reduction(self) -> float:
        """Idle-fraction drop the eviction mechanism buys on the GPU."""
        return self.without_eviction.gpu_idle_frac - self.with_eviction.gpu_idle_frac

    @property
    def makespan_gain(self) -> float:
        """Relative makespan improvement from the eviction mechanism."""
        return 1.0 - self.with_eviction.makespan_us / self.without_eviction.makespan_us


def run_fig4(n_tiles: int = 20, tile_size: int = 960, seed: int = 0) -> Fig4Result:
    """Run the ablation on the paper's workload (Cholesky 960 x 20)."""
    machine = fig4_machine()
    program = cholesky_program(n_tiles, tile_size, with_priorities=False)
    variants: dict[bool, Fig4Variant] = {}
    for eviction in (True, False):
        scheduler = MultiPrio(eviction=eviction)
        sim = Simulator(
            machine.platform(),
            scheduler,
            AnalyticalPerfModel(machine.calibration()),
            seed=seed,
            record_trace=False,
            record_level="decisions",
        )
        res = sim.run(program)
        assert res.events is not None
        workers = sim.platform.workers
        trace = trace_from_events(res.events, workers)
        idle = idle_fractions_from_events(res.events, workers)
        pcp = trace.practical_critical_path(program.tasks)
        variants[eviction] = Fig4Variant(
            label="with eviction" if eviction else "without eviction",
            makespan_us=res.makespan,
            gpu_idle_frac=idle.get("cuda", 0.0),
            cpu_idle_frac=idle.get("cpu", 0.0),
            critical_path_len=len(pcp),
            trace=trace,
            decisions=decision_counts(res.events),
        )
    return Fig4Result(with_eviction=variants[True], without_eviction=variants[False])


def format_fig4(result: Fig4Result, *, gantt: bool = False) -> str:
    """Render the ablation summary (optionally with ASCII Gantt charts)."""
    lines = ["Fig. 4: eviction mechanism ablation (Cholesky 960x20, 1 GPU + 6 CPUs)"]
    for variant in (result.without_eviction, result.with_eviction):
        lines.append(
            f"  {variant.label:18s} makespan = {variant.makespan_us / 1e3:9.1f} ms   "
            f"GPU idle = {variant.gpu_idle_frac * 100:5.1f}%   "
            f"CPU idle = {variant.cpu_idle_frac * 100:5.1f}%   "
            f"practical CP = {variant.critical_path_len} tasks"
        )
        if variant.decisions:
            lines.append(
                "  " + " " * 18 + "decisions: "
                + ", ".join(f"{a}={n}" for a, n in sorted(variant.decisions.items()))
            )
    lines.append(
        f"  eviction gains: GPU idle -{result.gpu_idle_reduction * 100:.1f} points, "
        f"makespan -{result.makespan_gain * 100:.1f}%  "
        "(paper: GPU idle 29% -> 1%)"
    )
    if gantt:
        for variant in (result.without_eviction, result.with_eviction):
            lines.append(f"\n--- {variant.label} ---")
            lines.append(variant.trace.gantt_ascii(width=96))
    return "\n".join(lines)
