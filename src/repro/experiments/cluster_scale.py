"""Cluster-scale sweep: placement policies across node counts.

No direct paper counterpart — the paper schedules one heterogeneous
node — but the natural next question for any per-node policy is how it
composes: put the unchanged MultiPrio engine on every node of an
8/32-node cluster and vary only the *global* placement tier. The
workload is a Poisson stream of small workflow chains (each job
``after`` its predecessor), so placement decides both load spread and
how many multi-megabyte intermediate results must cross the fabric.

Expected shape: ``random`` scatters chains across nodes and pays a
cross-node transfer per hop, ``pack`` piles everything on one node,
``load-aware`` balances but still scatters chains, and
``locality-aware`` keeps each chain on its node unless the queue there
is worth more than the transfer — so it should win on makespan with
the best imbalance among the locality-blind policies. Cells are
dispatched through :mod:`repro.sweep`, so ``jobs=N`` is bit-identical
to a serial run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.apps.dense import cholesky_program, lu_program
from repro.cluster.sim import simulate_cluster
from repro.cluster.spec import ClusterSpec, fat_tree_cluster, star_cluster
from repro.experiments.reporting import format_table
from repro.sweep import CallSpec, run_tasks
from repro.workload.stream import Job, JobStream

DEFAULT_POLICIES: tuple[str, ...] = (
    "random", "pack", "load-aware", "locality-aware",
)

DEFAULT_NODE_COUNTS: tuple[int, ...] = (8, 32)

#: Chain arrivals per second *per node*. The offered load scales with
#: the cluster so every size runs in the heavily-overlapped regime
#: where placement policies separate.
DEFAULT_RATE_PER_NODE: float = 50.0


def cluster_workload(
    *,
    n_chains: int,
    chain_len: int = 3,
    rate_chains_per_s: float = 400.0,
    n_tiles: int = 4,
    tile_size: int = 512,
    seed: int = 0,
) -> JobStream:
    """A Poisson stream of dependent workflow chains.

    Chain heads arrive with exponential inter-arrival times; every
    later stage carries ``after=<previous jid>`` and the head's arrival
    time (the dependency, not the clock, gates its start). Stages
    alternate Cholesky and LU so both job shapes cross the fabric.
    """
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    mean_gap_us = 1e6 / rate_chains_per_s
    clock = 0.0
    jobs: list[Job] = []
    jid = 0
    for chain in range(n_chains):
        clock += float(rng.exponential(mean_gap_us))
        prev: int | None = None
        for stage in range(chain_len):
            factory = cholesky_program if (jid % 2 == 0) else lu_program
            jobs.append(Job(
                jid=jid,
                arrival_us=clock,
                program=factory(n_tiles, tile_size),
                tenant=f"chain{chain}",
                after=prev,
            ))
            prev = jid
            jid += 1
    return JobStream(
        name=f"chains-{n_chains}x{chain_len}@{rate_chains_per_s:g}",
        jobs=tuple(jobs),
    )


@dataclass
class ClusterRow:
    """One (placement policy, node count) cell of the sweep."""

    policy: str
    n_nodes: int
    n_jobs: int
    makespan_us: float
    throughput_jobs_per_s: float
    mean_utilization: float
    imbalance: float
    mean_latency_us: float
    p95_latency_us: float
    mean_slowdown: float
    max_slowdown: float
    n_cross_transfers: int
    inter_node_mb: float
    rounds: int
    converged: bool
    nodes: list[dict[str, Any]] = field(default_factory=list)
    jobs: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class ClusterExperimentResult:
    """All rows of the placement × cluster-size sweep."""

    machine: str
    scheduler: str
    topology: str
    chain_len: int
    rate_per_node: float
    seed: int
    rows: list[ClusterRow] = field(default_factory=list)


def _make_cluster(topology: str, n_nodes: int, machine: str) -> ClusterSpec:
    if topology == "fat-tree":
        return fat_tree_cluster(n_nodes, machine)
    return star_cluster(n_nodes, machine)


def _cluster_cell(
    policy: str,
    n_nodes: int,
    *,
    machine: str,
    scheduler: str,
    topology: str,
    n_chains: int,
    chain_len: int,
    rate: float,
    n_tiles: int,
    tile_size: int,
    seed: int,
    check_invariants: bool,
) -> ClusterRow:
    """One cell, executed in whichever process the sweep picked."""
    stream = cluster_workload(
        n_chains=n_chains, chain_len=chain_len, rate_chains_per_s=rate,
        n_tiles=n_tiles, tile_size=tile_size, seed=seed,
    )
    res = simulate_cluster(
        stream,
        _make_cluster(topology, n_nodes, machine),
        scheduler,
        placement=policy,
        check_invariants=check_invariants or None,
    )
    return ClusterRow(
        policy=policy,
        n_nodes=n_nodes,
        n_jobs=len(res.jobs),
        makespan_us=res.makespan_us,
        throughput_jobs_per_s=res.throughput_jobs_per_s,
        mean_utilization=res.mean_utilization,
        imbalance=res.imbalance,
        mean_latency_us=res.mean_latency_us,
        p95_latency_us=res.p95_latency_us,
        mean_slowdown=res.mean_slowdown or 0.0,
        max_slowdown=res.max_slowdown or 0.0,
        n_cross_transfers=len(res.transfers),
        inter_node_mb=res.total_inter_node_bytes / 2**20,
        rounds=res.rounds,
        converged=res.converged,
        nodes=[n.as_dict() for n in res.nodes],
        jobs=[j.as_dict() for j in res.jobs],
    )


def run_cluster_experiment(
    *,
    policies: Sequence[str] = DEFAULT_POLICIES,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    machine: str = "small-hetero",
    scheduler: str = "multiprio",
    topology: str = "star",
    chains_per_node: int = 2,
    chain_len: int = 3,
    rate_per_node: float = DEFAULT_RATE_PER_NODE,
    n_tiles: int = 4,
    tile_size: int = 512,
    seed: int = 0,
    check_invariants: bool = False,
    jobs: int = 1,
    progress: Callable[[int, int], None] | None = None,
) -> ClusterExperimentResult:
    """The (placement policy × node count) sweep.

    The workload scales with the cluster — ``chains_per_node`` chains
    and ``rate_per_node`` arrivals/s per node — so every size is
    compared under the same offered load per node. ``jobs=N`` is
    bit-identical to serial execution (cells are pure functions of
    their arguments).
    """
    cells = [
        CallSpec(
            _cluster_cell,
            (policy, int(n_nodes)),
            {
                "machine": machine,
                "scheduler": scheduler,
                "topology": topology,
                "n_chains": chains_per_node * int(n_nodes),
                "chain_len": chain_len,
                "rate": rate_per_node * int(n_nodes),
                "n_tiles": n_tiles,
                "tile_size": tile_size,
                "seed": seed,
                "check_invariants": check_invariants,
            },
        )
        for n_nodes in node_counts
        for policy in policies
    ]
    rows = run_tasks(cells, jobs=jobs, progress=progress)
    return ClusterExperimentResult(
        machine=machine, scheduler=scheduler, topology=topology,
        chain_len=chain_len, rate_per_node=rate_per_node, seed=seed,
        rows=list(rows),
    )


def format_cluster_experiment(result: ClusterExperimentResult) -> str:
    """The sweep as an aligned text table."""
    rows = [
        [
            f"{row.n_nodes}",
            row.policy,
            f"{row.makespan_us / 1e3:.1f}",
            f"{row.throughput_jobs_per_s:.1f}",
            f"{row.mean_utilization:.3f}",
            f"{row.imbalance:.2f}",
            f"{row.p95_latency_us / 1e3:.2f}",
            f"{row.mean_slowdown:.2f}",
            f"{row.n_cross_transfers}",
            f"{row.inter_node_mb:.0f}",
        ]
        for row in result.rows
    ]
    return format_table(
        [
            "nodes", "placement", "mk ms", "tput/s", "util", "imbal",
            "p95 ms", "slow", "xfers", "MiB",
        ],
        rows,
        title=(
            f"{result.topology} cluster of {result.machine} nodes, "
            f"{result.scheduler} per node (chains of {result.chain_len} "
            f"at {result.rate_per_node:g}/s/node, seed {result.seed})"
        ),
    )


def cluster_report(result: ClusterExperimentResult) -> dict[str, Any]:
    """JSON-ready report with per-node and per-job stats per cell."""
    return {
        "experiment": "cluster",
        "machine": result.machine,
        "scheduler": result.scheduler,
        "topology": result.topology,
        "chain_len": result.chain_len,
        "rate_per_node": result.rate_per_node,
        "seed": result.seed,
        "rows": [
            {
                "policy": row.policy,
                "n_nodes": row.n_nodes,
                "n_jobs": row.n_jobs,
                "makespan_us": row.makespan_us,
                "throughput_jobs_per_s": row.throughput_jobs_per_s,
                "mean_utilization": row.mean_utilization,
                "imbalance": row.imbalance,
                "mean_latency_us": row.mean_latency_us,
                "p95_latency_us": row.p95_latency_us,
                "mean_slowdown": row.mean_slowdown,
                "max_slowdown": row.max_slowdown,
                "n_cross_transfers": row.n_cross_transfers,
                "inter_node_mb": row.inter_node_mb,
                "rounds": row.rounds,
                "converged": row.converged,
                "nodes": row.nodes,
                "jobs": row.jobs,
            }
            for row in result.rows
        ],
    }


def write_cluster_report(result: ClusterExperimentResult, path: str) -> None:
    """Serialize :func:`cluster_report` to ``path``."""
    with open(path, "w") as fh:
        json.dump(cluster_report(result), fh, indent=2)
        fh.write("\n")
