"""Fig. 5 reproduction: dense kernels (potrf/getrf/geqrf) vs Dmdas.

The paper sweeps matrix sizes on both platforms with tile sizes
{640, 1280, 2560} (Intel-V100) and {960, 1920, 3840} (AMD-A100), picks
the best tile per (kernel, scheduler, size), and reports MultiPrio's
gain/loss over Dmdas. Expected shape: Dmdas competitive-or-ahead
(its expert priorities beat NOD on these regular DAGs, most visibly on
AMD-A100 potrf/getrf), with modest MultiPrio wins appearing on getrf at
large sizes (Dmdas data-transfer pathologies) and roughly-even geqrf.

Paper scale: matrices up to 140k x 140k (tens of thousands of tasks per
run). Default scale here: a reduced size sweep with the same tile sets,
tractable in minutes; pass larger ``matrix_sizes`` for closer-to-paper
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.apps.dense import cholesky_program, lu_program, qr_program
from repro.experiments.reporting import format_table
from repro.platform.machines import MachineModel, amd_a100, intel_v100
from repro.runtime.stf import Program
from repro.sweep import CallSpec, SweepCell, SweepSpec, run_sweep

KERNELS: dict[str, Callable[..., Program]] = {
    "potrf": cholesky_program,
    "getrf": lu_program,
    "geqrf": qr_program,
}

#: Per-platform tile sizes, as in the paper.
TILE_SIZES: dict[str, tuple[int, ...]] = {
    "intel-v100": (640, 1280, 2560),
    "amd-a100": (960, 1920, 3840),
}

#: Mild execution variance for dense kernels (regular workloads).
DENSE_NOISE = 0.05


@dataclass
class Fig5Cell:
    """Best-tile makespans of both schedulers for one (kernel, size)."""

    machine: str
    kernel: str
    matrix_size: int
    multiprio_us: float
    dmdas_us: float
    best_tile_multiprio: int
    best_tile_dmdas: int

    @property
    def gain_over_dmdas(self) -> float:
        """Positive = MultiPrio faster (the paper's gain/loss metric)."""
        return self.dmdas_us / self.multiprio_us - 1.0


@dataclass
class Fig5Result:
    """All cells of the sweep."""

    cells: list[Fig5Cell] = field(default_factory=list)


def fig5_spec(
    *,
    kernels: Sequence[str] = ("potrf", "getrf", "geqrf"),
    machines: Sequence[MachineModel] | None = None,
    matrix_sizes: Sequence[int] = (11520, 23040, 34560),
    tile_sizes: dict[str, Sequence[int]] | None = None,
    schedulers: Sequence[str] = ("multiprio", "dmdas"),
    seed: int = 0,
) -> SweepSpec:
    """The dense sweep as a declarative cell list (tile size in
    ``extra``); cell order matches the historical serial loop so the
    best-tile tie-break (first strictly-smaller makespan wins) is
    unchanged."""
    machines = list(machines) if machines is not None else [intel_v100(1), amd_a100(1)]
    tiles = dict(TILE_SIZES)
    if tile_sizes:
        tiles.update(tile_sizes)
    cells: list[SweepCell] = []
    for machine in machines:
        for kernel in kernels:
            gen = KERNELS[kernel]
            for n in matrix_sizes:
                for tile in tiles[machine.name]:
                    n_tiles = max(2, round(n / tile))
                    for sched in schedulers:
                        cells.append(
                            SweepCell(
                                program=CallSpec(gen, (n_tiles, tile)),
                                machine=machine,
                                scheduler=sched,
                                seed=seed,
                                noise_sigma=DENSE_NOISE,
                                extra={
                                    "kernel": kernel,
                                    "matrix_size": n,
                                    "tile": tile,
                                },
                            )
                        )
    return SweepSpec(experiment="fig5", cells=cells)


def run_fig5(
    *,
    kernels: Sequence[str] = ("potrf", "getrf", "geqrf"),
    machines: Sequence[MachineModel] | None = None,
    matrix_sizes: Sequence[int] = (11520, 23040, 34560),
    tile_sizes: dict[str, Sequence[int]] | None = None,
    schedulers: Sequence[str] = ("multiprio", "dmdas"),
    seed: int = 0,
    jobs: int = 1,
    progress=None,
) -> Fig5Result:
    """Run the dense sweep (``jobs`` processes); per cell the best tile
    size is selected independently per scheduler, as the paper does."""
    spec = fig5_spec(
        kernels=kernels,
        machines=machines,
        matrix_sizes=matrix_sizes,
        tile_sizes=tile_sizes,
        schedulers=schedulers,
        seed=seed,
    )
    rows = run_sweep(spec, jobs=jobs, progress=progress)
    result = Fig5Result()
    best: dict[tuple[str, str, int], dict[str, tuple[float, int]]] = {}
    order: list[tuple[str, str, int]] = []
    for row in rows:
        key = (row.machine, row.extra["kernel"], row.extra["matrix_size"])
        if key not in best:
            best[key] = {}
            order.append(key)
        prev = best[key].get(row.scheduler)
        if prev is None or row.makespan_us < prev[0]:
            best[key][row.scheduler] = (row.makespan_us, row.extra["tile"])
    for machine_name, kernel, n in order:
        spans = best[(machine_name, kernel, n)]
        result.cells.append(
            Fig5Cell(
                machine=machine_name,
                kernel=kernel,
                matrix_size=n,
                multiprio_us=spans["multiprio"][0],
                dmdas_us=spans["dmdas"][0],
                best_tile_multiprio=spans["multiprio"][1],
                best_tile_dmdas=spans["dmdas"][1],
            )
        )
    return result


def format_fig5(result: Fig5Result) -> str:
    """Render the gain/loss table over Dmdas."""
    rows = [
        [
            cell.machine,
            cell.kernel,
            cell.matrix_size,
            f"{cell.multiprio_us / 1e3:.0f}",
            f"{cell.dmdas_us / 1e3:.0f}",
            f"{cell.gain_over_dmdas * +100:+.1f}%",
            cell.best_tile_multiprio,
            cell.best_tile_dmdas,
        ]
        for cell in result.cells
    ]
    return format_table(
        ["machine", "kernel", "N", "multiprio ms", "dmdas ms", "gain", "tile(mp)", "tile(dm)"],
        rows,
        title="Fig. 5: dense kernels, MultiPrio gain/loss over Dmdas (best tile each)",
    )
