"""Fault sweep: scheduler robustness under injected transient failures.

No paper counterpart — the paper evaluates on a healthy platform — but
the schedulers it compares live inside StarPU, where kernels do fail and
devices do drop off. This experiment asks the production question: *does
MultiPrio's advantage survive a misbehaving platform?* It sweeps the
per-attempt transient failure rate on the Fig. 4 Cholesky setup and
reports, per scheduler, the makespan degradation relative to its own
fault-free run, plus the fault counters from
:class:`~repro.runtime.faults.FaultStats`.

A scripted fail-stop variant is included to exercise the recovery path:
the platform runs the GPU with two streams and one stream is killed
mid-run, so its running + staged tasks are recovered and re-pushed while
the device memory survives through the sibling stream. (Killing the
*last* worker of a GPU node on a write-heavy dense kernel correctly ends
in :class:`~repro.utils.validation.DataLossError` — the sole replica of
a freshly-written tile dies with the device.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import SimConfig, SimSpec
from repro.apps.dense.cholesky import cholesky_program
from repro.experiments.reporting import format_table
from repro.platform.machines import small_hetero
from repro.runtime.faults import FaultModel, FaultStats
from repro.sweep import CallSpec, run_tasks

DEFAULT_RATES = (0.0, 0.02, 0.05, 0.1)
DEFAULT_SCHEDULERS = ("multiprio", "dmdas", "heteroprio")


@dataclass
class FaultSweepRow:
    """One (scheduler, failure-rate) cell of the sweep."""

    scheduler: str
    fault_rate: float
    makespan_us: float
    degradation: float  # relative to the scheduler's fault-free makespan
    stats: FaultStats


@dataclass
class FaultSweepResult:
    """The full sweep plus the fail-stop recovery column."""

    workload: str
    machine: str
    rows: list[FaultSweepRow]
    killed_rows: list[FaultSweepRow]

    def rows_of(self, scheduler: str) -> list[FaultSweepRow]:
        """The transient-failure rows of one scheduler, by rate."""
        return [r for r in self.rows if r.scheduler == scheduler]


def _faults_cell(
    scheduler: str,
    n_tiles: int,
    tile_size: int,
    seed: int,
    scenario: str,
    rate: float,
    max_retries: int,
    kill_spec: tuple[tuple[int, float], ...],
    window: int | None = None,
) -> tuple[float, FaultStats]:
    """One (scheduler, fault scenario) run, executable in any process.

    ``scenario`` is ``"healthy"`` (no fault model — the degradation
    baseline), ``"rate"`` (transient failures at ``rate``) or ``"kill"``
    (the scripted fail-stop). Returns (makespan_us, stats).
    """
    machine = small_hetero(n_cpus=6, n_gpus=1, gpu_streams=2)
    program = cholesky_program(n_tiles, tile_size, with_priorities=False)
    if scenario == "healthy":
        fault_model = None
    elif scenario == "kill":
        fault_model = FaultModel(worker_kills=dict(kill_spec), seed=seed)
    elif rate == 0.0:
        fault_model = FaultModel(task_failure_rate=0.0, seed=seed)
    else:
        fault_model = FaultModel(
            task_failure_rate=rate, max_retries=max_retries, seed=seed
        )
    res = SimSpec(
        machine, scheduler,
        config=SimConfig(seed=seed, faults=fault_model,
                         submission_window=window),
    ).run(program)
    return res.makespan, res.faults or FaultStats()


def run_faults_sweep(
    n_tiles: int = 10,
    tile_size: int = 960,
    rates: tuple[float, ...] = DEFAULT_RATES,
    schedulers: tuple[str, ...] = DEFAULT_SCHEDULERS,
    seed: int = 0,
    max_retries: int = 10,
    kill_spec: tuple[tuple[int, float], ...] = ((6, 10_000.0),),
    window: int | None = None,
    jobs: int = 1,
    progress=None,
) -> FaultSweepResult:
    """Sweep transient failure rates (plus one fail-stop scenario).

    The platform is the Fig. 4 shape (6 CPU workers + 1 GPU) but with
    two GPU streams; ``kill_spec`` defaults to killing stream 0 (worker
    6) at t = 10 ms — a recoverable failure, since the sibling stream
    keeps the device memory alive. ``window`` forwards a submission
    window to every run, exercising the fault × window-accounting
    interaction (a rolled-back task keeps its submission slot until it
    finally completes). ``jobs`` fans the scenario grid out over worker
    processes.
    """
    scenarios: list[tuple[str, str, float]] = []
    for name in schedulers:
        scenarios.append((name, "healthy", 0.0))
        for rate in rates:
            scenarios.append((name, "rate", rate))
        scenarios.append((name, "kill", 0.0))
    tasks = [
        CallSpec(
            _faults_cell,
            (name, n_tiles, tile_size, seed, scenario, rate, max_retries,
             kill_spec, window),
        )
        for name, scenario, rate in scenarios
    ]
    outcomes = run_tasks(tasks, jobs=jobs, progress=progress)

    rows: list[FaultSweepRow] = []
    killed: list[FaultSweepRow] = []
    baselines: dict[str, float] = {}
    for (name, scenario, rate), (makespan, stats) in zip(scenarios, outcomes):
        if scenario == "healthy":
            baselines[name] = makespan
            continue
        row = FaultSweepRow(
            scheduler=name,
            fault_rate=rate,
            makespan_us=makespan,
            degradation=makespan / baselines[name] - 1.0,
            stats=stats,
        )
        (killed if scenario == "kill" else rows).append(row)
    machine = small_hetero(n_cpus=6, n_gpus=1, gpu_streams=2)
    program = cholesky_program(n_tiles, tile_size, with_priorities=False)
    return FaultSweepResult(
        workload=program.name,
        machine=machine.name,
        rows=rows,
        killed_rows=killed,
    )


def format_faults_sweep(result: FaultSweepResult) -> str:
    """Render the sweep as reporting tables."""
    rows = [
        [
            r.scheduler,
            f"{r.fault_rate * 100:.0f}%",
            f"{r.makespan_us / 1e3:.1f}",
            f"{r.degradation * 100:+.1f}%",
            f"{r.stats.task_failures}",
            f"{r.stats.retries}",
            f"{r.stats.wasted_exec_us / 1e3:.1f}",
        ]
        for r in result.rows
    ]
    out = format_table(
        ["scheduler", "fail rate", "makespan ms", "degradation", "failures", "retries", "wasted ms"],
        rows,
        title=f"Transient-failure sweep: {result.workload} on {result.machine}",
    )
    krows = [
        [
            r.scheduler,
            f"{r.makespan_us / 1e3:.1f}",
            f"{r.degradation * 100:+.1f}%",
            f"{r.stats.worker_failures}",
            f"{r.stats.tasks_recovered}",
            f"{r.stats.lost_replica_bytes / 2**20:.1f}",
        ]
        for r in result.killed_rows
    ]
    out += "\n\n" + format_table(
        ["scheduler", "makespan ms", "degradation", "worker deaths", "recovered", "lost MiB"],
        krows,
        title="Fail-stop recovery: one GPU stream killed at t=10ms",
    )
    return out
