"""Table II reproduction: the gain heuristic worked example.

Three tasks, two architecture types, δ as printed in the paper:

    =========  ====  ====  ====
    δ (ms)     t_A   t_B   t_C
    =========  ====  ====  ====
    a1         1     5     20
    a2         20    10    10
    =========  ====  ====  ====

with hd(a1) = hd(a2) = 19, giving gains (1, 0.631, 0.236) on a1 and
(0, 0.368, 0.763) on a2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gain import gain_scores
from repro.experiments.reporting import format_table

#: The paper's example: task -> {arch: delta_ms}.
PAPER_DELTAS: dict[str, dict[str, float]] = {
    "t_A": {"a1": 1.0, "a2": 20.0},
    "t_B": {"a1": 5.0, "a2": 10.0},
    "t_C": {"a1": 20.0, "a2": 10.0},
}

#: hd(a) of the example (the largest |δ difference|, from task A).
PAPER_HD: dict[str, float] = {"a1": 19.0, "a2": 19.0}

#: The gains printed in Table II (3 decimals, truncated as in the paper).
PAPER_GAINS: dict[str, dict[str, float]] = {
    "t_A": {"a1": 1.0, "a2": 0.0},
    "t_B": {"a1": 0.631, "a2": 0.368},
    "t_C": {"a1": 0.236, "a2": 0.763},
}


@dataclass
class Table2Result:
    """Computed vs published gains for the worked example."""

    gains: dict[str, dict[str, float]]
    max_abs_error: float


def run_table2() -> Table2Result:
    """Compute the Table II gains with this repo's implementation."""
    gains = {task: gain_scores(deltas, PAPER_HD) for task, deltas in PAPER_DELTAS.items()}
    max_err = max(
        abs(gains[task][arch] - PAPER_GAINS[task][arch])
        for task in PAPER_DELTAS
        for arch in ("a1", "a2")
    )
    return Table2Result(gains=gains, max_abs_error=max_err)


def format_table2(result: Table2Result) -> str:
    """Render the reproduction next to the published values."""
    rows = []
    for arch in ("a1", "a2"):
        rows.append(
            [f"gain(t, {arch}) ours"]
            + [f"{result.gains[t][arch]:.3f}" for t in ("t_A", "t_B", "t_C")]
        )
        rows.append(
            [f"gain(t, {arch}) paper"]
            + [f"{PAPER_GAINS[t][arch]:.3f}" for t in ("t_A", "t_B", "t_C")]
        )
    return format_table(
        ["", "t_A", "t_B", "t_C"],
        rows,
        title="Table II: gain heuristic worked example (hd = 19)",
    )
