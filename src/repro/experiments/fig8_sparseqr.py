"""Fig. 8 reproduction: sparse QR performance ratios vs Dmdas.

The paper factors the Fig. 7 matrices with QR_MUMPS (METIS ordering,
four streams per GPU, no user priorities) and plots each scheduler's
performance *ratio* to Dmdas — higher is better. Expected shape:
MultiPrio above 1.0 for most matrices on Intel-V100 (paper: +31% on
average), more variable on AMD-A100 (+12% average, wins concentrated on
the large matrices); HeteroPrio below MultiPrio.

Sparse front kernels are strongly irregular (staircase structure, cache
effects), which we model with lognormal execution variance
(``NOISE = 0.35``); this is the regime where pop-time decisions beat
push-time EFT commitments, per the paper's Section VI-C/VII discussion.

Paper scale: full op counts up to 352 Tflop. Default here: ``scale``
shrinks each matrix's op count (tree shapes preserved) so the 10-matrix
x 2-platform grid runs in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.apps.sparseqr.matrices import MATRICES, MatrixSpec, matrix_tree
from repro.apps.sparseqr.taskgraph import sparse_qr_program
from repro.experiments.reporting import format_table
from repro.platform.machines import amd_a100, intel_v100
from repro.runtime.stf import Program
from repro.sweep import CallSpec, SweepCell, SweepSpec, run_sweep

#: Execution variance of the multifrontal kernels (irregular fronts).
NOISE = 0.35

#: The paper uses four streams per GPU for this application.
GPU_STREAMS = 4


@dataclass
class Fig8Cell:
    """Makespans for one (machine, matrix)."""

    machine: str
    matrix: str
    gflops_published: float
    makespans_us: dict[str, float] = field(default_factory=dict)

    def ratio(self, scheduler: str, reference: str = "dmdas") -> float:
        """Performance ratio vs the reference (higher = better)."""
        return self.makespans_us[reference] / self.makespans_us[scheduler]


@dataclass
class Fig8Result:
    """All cells plus aggregate gains."""

    cells: list[Fig8Cell] = field(default_factory=list)

    def mean_ratio(self, machine: str, scheduler: str) -> float:
        """Average ratio vs Dmdas over the matrix set of one machine."""
        mine = [c for c in self.cells if c.machine == machine]
        return sum(c.ratio(scheduler) for c in mine) / max(1, len(mine))


def _fig8_program(spec: MatrixSpec, eff_scale: float, seed: int) -> Program:
    """Build one matrix's sparse-QR program (module-level so sweep
    workers can rebuild it by reference)."""
    tree = matrix_tree(spec, scale=eff_scale, seed=seed)
    return sparse_qr_program(tree, name=spec.name)


def fig8_spec(
    *,
    matrices: Sequence[MatrixSpec] = MATRICES,
    schedulers: Sequence[str] = ("multiprio", "dmdas", "heteroprio"),
    machines: Sequence[str] = ("intel-v100", "amd-a100"),
    scale: float = 0.02,
    min_gflops: float = 120.0,
    seed: int = 0,
) -> SweepSpec:
    """The sparse QR grid as a declarative cell list (matrices sorted by
    published op count, as the paper plots them)."""
    factories = {"intel-v100": intel_v100, "amd-a100": amd_a100}
    cells: list[SweepCell] = []
    for machine_name in machines:
        machine = factories[machine_name](gpu_streams=GPU_STREAMS)
        for spec in sorted(matrices, key=lambda s: s.gflops):
            eff_scale = max(scale, min_gflops / spec.gflops)
            for sched in schedulers:
                cells.append(
                    SweepCell(
                        program=CallSpec(_fig8_program, (spec, eff_scale, seed)),
                        machine=machine,
                        scheduler=sched,
                        seed=seed,
                        noise_sigma=NOISE,
                        extra={
                            "matrix": spec.name,
                            "gflops_published": spec.gflops,
                        },
                    )
                )
    return SweepSpec(experiment="fig8", cells=cells)


def run_fig8(
    *,
    matrices: Sequence[MatrixSpec] = MATRICES,
    schedulers: Sequence[str] = ("multiprio", "dmdas", "heteroprio"),
    machines: Sequence[str] = ("intel-v100", "amd-a100"),
    scale: float = 0.02,
    min_gflops: float = 120.0,
    seed: int = 0,
    jobs: int = 1,
    progress=None,
) -> Fig8Result:
    """Run the sparse QR grid (``jobs`` processes) and collect
    per-matrix ratios.

    ``min_gflops`` floors each matrix's scaled op count: shrinking the
    small matrices to a few Gflop leaves runs so short that fixed
    overheads, not scheduling, decide the ranking — the paper's smallest
    matrix is already 236 Gflop.
    """
    spec_ = fig8_spec(
        matrices=matrices,
        schedulers=schedulers,
        machines=machines,
        scale=scale,
        min_gflops=min_gflops,
        seed=seed,
    )
    rows = run_sweep(spec_, jobs=jobs, progress=progress)
    result = Fig8Result()
    by_key: dict[tuple[str, str], Fig8Cell] = {}
    for row in rows:
        key = (row.machine, row.extra["matrix"])
        cell = by_key.get(key)
        if cell is None:
            cell = Fig8Cell(
                machine=row.machine,
                matrix=row.extra["matrix"],
                gflops_published=row.extra["gflops_published"],
            )
            by_key[key] = cell
            result.cells.append(cell)
        cell.makespans_us[row.scheduler] = row.makespan_us
    return result


def format_fig8(result: Fig8Result) -> str:
    """Render per-matrix ratios vs Dmdas, plus the averages."""
    schedulers = sorted(result.cells[0].makespans_us) if result.cells else []
    rows = []
    for cell in result.cells:
        rows.append(
            [cell.machine, cell.matrix, f"{cell.gflops_published:,.0f}"]
            + [f"{cell.ratio(s):.2f}" for s in schedulers]
        )
    table = format_table(
        ["machine", "matrix", "Gflop (paper)"] + [f"{s} / dmdas" for s in schedulers],
        rows,
        title="Fig. 8: sparse QR performance ratio vs Dmdas (higher is better)",
    )
    machines = sorted({c.machine for c in result.cells})
    summary = "; ".join(
        f"{m}: multiprio avg ratio {result.mean_ratio(m, 'multiprio'):.2f}"
        for m in machines
    )
    return f"{table}\n{summary} (paper: 1.31 on intel-v100, 1.12 on amd-a100)"
