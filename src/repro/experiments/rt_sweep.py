"""Real-time sweep: deadline miss rate under 1x-4x offered load.

No direct paper counterpart — the paper optimizes makespan — but the
same heterogeneous node serving latency-sensitive tenants is judged on
*deadlines*, not throughput. This sweep offers a deadline-tagged Poisson
stream at multiples of the node's sustainable service rate and compares
four policies on miss rate and lateness tails:

* ``multiprio`` — the paper's policy, deadline-oblivious;
* ``edf`` — earliest-deadline-first, the classic real-time baseline
  (deadline-aware but heterogeneity- and data-oblivious);
* ``multiprio-deadline`` — MultiPrio with the ``deadline_boost`` knob:
  tasks whose push-time slack drops under one relative-deadline window
  are promoted above all regular work;
* ``multiprio-relaxed`` — the relaxed-heap MultiPrio, probing whether
  sloppy priorities hurt deadline adherence.

Every cell sees the *same* stream with the *same* absolute deadlines
(``deadline_factor ×`` the job's isolated multiprio makespan, measured
once per configuration), so miss rates are directly comparable across
schedulers. Expected shape: at 1x load everyone mostly meets deadlines;
from 2x on, queueing makes the oblivious policies miss broadly while
``multiprio-deadline`` triages — it finishes the jobs that can still
meet their deadline at the price of a worse lateness tail for those
already past it. Cells are dispatched through :mod:`repro.sweep`, so
``jobs=N`` is bit-identical to a serial run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.api import SimConfig, SimSpec
from repro.apps.dense import cholesky_program
from repro.experiments.overload import (
    estimate_job_cost_us,
    sustainable_rate_jobs_per_s,
)
from repro.experiments.reporting import format_table
from repro.sweep import CallSpec, run_tasks
from repro.workload.stream import JobStream, poisson_stream

#: Offered load as multiples of the node's sustainable service rate.
DEFAULT_MULTIPLIERS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0)
QUICK_MULTIPLIERS: tuple[float, ...] = (1.0, 2.0)

DEFAULT_SCHEDULERS: tuple[str, ...] = (
    "multiprio", "edf", "multiprio-deadline", "multiprio-relaxed",
)

#: Relative deadline as a multiple of the job's isolated makespan.
DEFAULT_DEADLINE_FACTOR = 3.0


def isolated_makespan_us(
    machine: str, n_tiles: int = 4, tile_size: int = 256, seed: int = 0
) -> float:
    """One job's makespan with the machine to itself under multiprio.

    The deadline basis is deliberately scheduler-independent (always
    multiprio), so every cell of the sweep faces identical absolute
    deadlines and miss rates compare apples to apples.
    """
    return (
        SimSpec(machine, "multiprio", seed=seed)
        .run(cholesky_program(n_tiles, tile_size))
        .makespan
    )


def rt_workload(
    *,
    rate_jobs_per_s: float,
    n_tenants: int,
    n_jobs: int,
    deadline_us: float,
    n_tiles: int = 4,
    tile_size: int = 256,
    seed: int = 0,
) -> JobStream:
    """A deadline-tagged Poisson stream over ``n_tenants`` tenants."""
    tenants = tuple(f"t{i:02d}" for i in range(n_tenants))
    return poisson_stream(
        [("cholesky", lambda: cholesky_program(n_tiles, tile_size))],
        rate_jobs_per_s=rate_jobs_per_s,
        n_jobs=n_jobs,
        seed=seed,
        tenants=tenants,
        deadline=deadline_us,
        name=f"rt-{rate_jobs_per_s:g}",
    )


@dataclass
class RtRow:
    """One (scheduler, multiplier) cell of the sweep."""

    scheduler: str
    multiplier: float
    rate_jobs_per_s: float
    n_jobs: int
    deadline_us: float
    miss_rate: float
    p50_lateness_us: float
    p95_lateness_us: float
    p99_lateness_us: float
    mean_latency_us: float
    p99_latency_us: float
    makespan_us: float
    per_tenant: dict[str, dict[str, float]] = field(default_factory=dict)


@dataclass
class RtExperimentResult:
    """All rows of the rt sweep."""

    machine: str
    n_tenants: int
    n_jobs: int
    seed: int
    deadline_factor: float
    deadline_us: float
    sustainable_rate_jobs_per_s: float
    rows: list[RtRow] = field(default_factory=list)


def _rt_cell(
    scheduler: str,
    multiplier: float,
    *,
    machine: str,
    n_tenants: int,
    n_jobs: int,
    n_tiles: int,
    tile_size: int,
    deadline_us: float,
    seed: int,
    check_invariants: bool,
) -> RtRow:
    """One cell, executed in whichever process the sweep picked."""
    job_cost = estimate_job_cost_us(machine, n_tiles, tile_size)
    rate = multiplier * sustainable_rate_jobs_per_s(machine, job_cost)
    stream = rt_workload(
        rate_jobs_per_s=rate, n_tenants=n_tenants, n_jobs=n_jobs,
        deadline_us=deadline_us, n_tiles=n_tiles, tile_size=tile_size,
        seed=seed,
    )
    # The boosted variant's promotion window defaults to one relative
    # deadline: a job's tasks get urgent once less than a full isolated
    # window of slack remains.
    sched_params = (
        {"deadline_boost": deadline_us}
        if scheduler == "multiprio-deadline"
        else {}
    )
    res = SimSpec(
        machine, scheduler, isolated_baseline=False,
        config=SimConfig(
            check_invariants=check_invariants, sched_params=sched_params
        ),
    ).run_stream(stream)
    return RtRow(
        scheduler=scheduler,
        multiplier=multiplier,
        rate_jobs_per_s=rate,
        n_jobs=len(res.jobs),
        deadline_us=deadline_us,
        miss_rate=res.deadline_miss_rate,
        p50_lateness_us=res.p50_lateness_us,
        p95_lateness_us=res.p95_lateness_us,
        p99_lateness_us=res.p99_lateness_us,
        mean_latency_us=res.mean_latency_us,
        p99_latency_us=res.p99_latency_us,
        makespan_us=res.makespan_us,
        per_tenant=res.per_tenant(),
    )


def run_rt_experiment(
    *,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    machine: str = "small-hetero",
    n_tenants: int = 8,
    n_jobs: int = 48,
    n_tiles: int = 4,
    tile_size: int = 256,
    deadline_factor: float = DEFAULT_DEADLINE_FACTOR,
    seed: int = 0,
    check_invariants: bool = False,
    jobs: int = 1,
    progress: Callable[[int, int], None] | None = None,
) -> RtExperimentResult:
    """The (scheduler × multiplier) deadline sweep; ``jobs=N`` is
    bit-identical to serial execution."""
    deadline_us = deadline_factor * isolated_makespan_us(
        machine, n_tiles, tile_size, seed
    )
    cells = [
        CallSpec(
            _rt_cell,
            (scheduler, float(multiplier)),
            {
                "machine": machine,
                "n_tenants": n_tenants,
                "n_jobs": n_jobs,
                "n_tiles": n_tiles,
                "tile_size": tile_size,
                "deadline_us": deadline_us,
                "seed": seed,
                "check_invariants": check_invariants,
            },
        )
        for scheduler in schedulers
        for multiplier in multipliers
    ]
    rows = run_tasks(cells, jobs=jobs, progress=progress)
    job_cost = estimate_job_cost_us(machine, n_tiles, tile_size)
    return RtExperimentResult(
        machine=machine,
        n_tenants=n_tenants,
        n_jobs=n_jobs,
        seed=seed,
        deadline_factor=deadline_factor,
        deadline_us=deadline_us,
        sustainable_rate_jobs_per_s=sustainable_rate_jobs_per_s(
            machine, job_cost
        ),
        rows=list(rows),
    )


def format_rt_experiment(result: RtExperimentResult) -> str:
    """The sweep as an aligned text table."""
    rows = [
        [
            row.scheduler,
            f"{row.multiplier:g}x",
            f"{row.miss_rate:.2f}",
            f"{row.p50_lateness_us / 1e3:.2f}",
            f"{row.p95_lateness_us / 1e3:.2f}",
            f"{row.p99_lateness_us / 1e3:.2f}",
            f"{row.mean_latency_us / 1e3:.2f}",
            f"{row.makespan_us / 1e3:.2f}",
        ]
        for row in result.rows
    ]
    return format_table(
        [
            "scheduler", "load", "miss", "p50 late ms", "p95 late ms",
            "p99 late ms", "lat ms", "makespan ms",
        ],
        rows,
        title=(
            f"rt sweep on {result.machine} "
            f"({result.n_tenants} tenants, {result.n_jobs} jobs/cell, "
            f"deadline {result.deadline_us / 1e3:.2f} ms = "
            f"{result.deadline_factor:g}x isolated, seed {result.seed})"
        ),
    )


def rt_report(result: RtExperimentResult) -> dict[str, Any]:
    """JSON-ready report with per-tenant miss rates per cell."""
    return {
        "experiment": "rt",
        "machine": result.machine,
        "n_tenants": result.n_tenants,
        "n_jobs": result.n_jobs,
        "seed": result.seed,
        "deadline_factor": result.deadline_factor,
        "deadline_us": result.deadline_us,
        "sustainable_rate_jobs_per_s": result.sustainable_rate_jobs_per_s,
        "rows": [
            {
                "scheduler": row.scheduler,
                "multiplier": row.multiplier,
                "rate_jobs_per_s": row.rate_jobs_per_s,
                "n_jobs": row.n_jobs,
                "deadline_us": row.deadline_us,
                "miss_rate": row.miss_rate,
                "p50_lateness_us": row.p50_lateness_us,
                "p95_lateness_us": row.p95_lateness_us,
                "p99_lateness_us": row.p99_lateness_us,
                "mean_latency_us": row.mean_latency_us,
                "p99_latency_us": row.p99_latency_us,
                "makespan_us": row.makespan_us,
                "per_tenant": row.per_tenant,
            }
            for row in result.rows
        ],
    }


def write_rt_report(result: RtExperimentResult, path: str) -> None:
    """Serialize :func:`rt_report` to ``path``."""
    with open(path, "w") as fh:
        json.dump(rt_report(result), fh, indent=2)
        fh.write("\n")
