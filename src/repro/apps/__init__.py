"""Application task-graph generators used by the paper's evaluation.

* :mod:`repro.apps.dense` — CHAMELEON-like tiled Cholesky / LU / QR;
* :mod:`repro.apps.fmm` — TBFMM-like octree Fast Multipole Method;
* :mod:`repro.apps.sparseqr` — QR_MUMPS-like multifrontal sparse QR.

Each generator produces a :class:`repro.runtime.stf.Program` through the
STF front-end — tasks declare data accesses, dependencies are inferred —
so every application exercises the runtime exactly like a StarPU code.
"""
