"""Multifrontal sparse QR task-graph generation (the QR_MUMPS analog).

Front partitioning follows Agullo et al. [29], which the paper credits
for exposing both GPU-sized and CPU-sized tasks:

* **small fronts** use 1D block-column partitioning — per panel ``k``, a
  ``front_geqrt`` (tall-skinny panel QR) then one ``front_tsmqr`` update
  per trailing block-column;
* **large fronts** (pivotal width above ``tile2d_threshold`` panels) use
  2D tile QR — ``front_geqrt`` / ``front_ormqr`` / ``front_tsqrt`` /
  ``front_tsmqr`` over square tiles — unlocking intra-front parallelism
  so the root fronts do not serialize the whole factorization;
* every front starts with an ``assemble`` (gather the children's
  contribution blocks; memory-bound) and, unless it is a root, ends with
  a ``store_cb`` writing its contribution-block handle (submitted under
  the ``assemble`` kernel type).

Tree edges become task dependencies automatically: the parent's
``assemble`` reads the CB handles its children's ``store_cb`` wrote.

Granularity adapts to the front: the panel width grows with the front so
one front yields a bounded number of panels — leaf fronts produce a
single tiny task, root fronts produce hundreds of fat ones. No user
priorities are set (matching the paper: "the fine-grained priorities of
the tasks are not set by the user").
"""

from __future__ import annotations

import math

from repro.apps.sparseqr.fronts import EliminationTree, Front
from repro.runtime.data import DataHandle
from repro.runtime.stf import Program, TaskFlow
from repro.runtime.task import AccessMode
from repro.utils.validation import check_positive

_BOTH = ("cpu", "cuda")
_DTYPE_BYTES = 8


def _panel_width(front: Front, tile: int, max_panels: int) -> int:
    """Panel width: at most ``max_panels`` panels of at least ``tile``."""
    return max(tile, math.ceil(front.npiv / max_panels))


def panel_flops(m_k: int, width: int) -> float:
    """Householder QR of an m_k x width panel: 2w²(m − w/3)."""
    return max(0.0, 2.0 * width * width * (m_k - width / 3.0))


def update_flops(m_k: int, width: int, cols: int) -> float:
    """Apply ``width`` reflectors of length m_k to ``cols`` columns."""
    return 4.0 * m_k * width * cols


def assemble_flops(front: Front) -> float:
    """Scatter-add of the children contribution blocks (2 flops/entry)."""
    return 2.0 * sum(c.cb_rows * c.cb_cols for c in front.children)


def sparse_qr_program(
    tree: EliminationTree,
    *,
    tile: int = 256,
    max_panels: int = 24,
    tile2d_threshold: int = 4,
    max_row_blocks: int = 24,
    name: str = "sparseqr",
) -> Program:
    """Build the multifrontal QR task graph for an elimination tree.

    Fronts whose pivotal width spans more than ``tile2d_threshold``
    panels of width ``tile`` are partitioned in 2D (tile QR); smaller
    fronts use 1D block-columns.
    """
    check_positive("tile", tile)
    check_positive("max_panels", max_panels)
    check_positive("tile2d_threshold", tile2d_threshold)
    check_positive("max_row_blocks", max_row_blocks)
    flow = TaskFlow(name)
    cb_handles: dict[int, DataHandle] = {}

    for front in tree.postorder():
        if front.npiv > tile2d_threshold * tile:
            _build_front_2d(flow, front, cb_handles, tile, max_panels, max_row_blocks)
        else:
            _build_front_1d(flow, front, cb_handles, tile, max_panels)

    return flow.program()


_ASSEMBLE_CHUNK = 16


def _submit_assemble(
    flow: TaskFlow,
    front: Front,
    cb_handles: dict[int, DataHandle],
    written: list[DataHandle],
) -> None:
    """The front's assembly: children CBs scatter into its blocks.

    Chunked into one task per ``_ASSEMBLE_CHUNK`` written blocks (real
    multifrontal codes assemble block-parallel too); each chunk reads
    every child contribution block it may scatter from.
    """
    n_chunks = max(1, math.ceil(len(written) / _ASSEMBLE_CHUNK))
    per_chunk_flops = (
        max(front.nrows * len(written) * 0.5, assemble_flops(front)) / n_chunks
    )
    cb_reads = [(cb_handles[c.fid], AccessMode.R) for c in front.children]
    for chunk in range(n_chunks):
        blocks = written[chunk * _ASSEMBLE_CHUNK : (chunk + 1) * _ASSEMBLE_CHUNK]
        accesses = list(cb_reads)
        accesses.extend((h, AccessMode.W) for h in blocks)
        flow.submit(
            "assemble",
            accesses,
            flops=per_chunk_flops,
            implementations=_BOTH,
            tag=("assemble", front.fid, chunk),
        )


def _submit_store_cb(
    flow: TaskFlow,
    front: Front,
    cb_handles: dict[int, DataHandle],
    trailing: list[DataHandle],
) -> None:
    """Extract the contribution block read by the parent's assembly.

    Chunked like the assembly; chunks accumulate into the CB handle with
    COMMUTE accesses so they stay mutually independent.
    """
    cb = flow.data(
        _DTYPE_BYTES * front.cb_rows * front.cb_cols,
        label=f"CB{front.fid}",
        key=("cb", front.fid),
    )
    cb_handles[front.fid] = cb
    n_chunks = max(1, math.ceil(len(trailing) / _ASSEMBLE_CHUNK))
    per_chunk_flops = 2.0 * front.cb_rows * max(1, front.cb_cols) / n_chunks
    for chunk in range(n_chunks):
        blocks = trailing[chunk * _ASSEMBLE_CHUNK : (chunk + 1) * _ASSEMBLE_CHUNK]
        accesses: list[tuple[DataHandle, AccessMode]] = [
            (h, AccessMode.R) for h in blocks
        ]
        accesses.append((cb, AccessMode.COMMUTE))
        flow.submit(
            "assemble",
            accesses,
            flops=per_chunk_flops,
            implementations=_BOTH,
            tag=("store_cb", front.fid, chunk),
        )


def _build_front_1d(
    flow: TaskFlow,
    front: Front,
    cb_handles: dict[int, DataHandle],
    tile: int,
    max_panels: int,
) -> None:
    """1D block-column partitioning for small fronts."""
    width = _panel_width(front, tile, max_panels)
    n_panels = max(1, math.ceil(front.npiv / width))
    n_blockcols = max(n_panels, math.ceil(front.ncols / width))
    blockcols = [
        flow.data(
            _DTYPE_BYTES * front.nrows * min(width, front.ncols),
            label=f"F{front.fid}c{j}",
            key=(front.fid, j),
        )
        for j in range(n_blockcols)
    ]
    _submit_assemble(flow, front, cb_handles, blockcols)

    for k in range(n_panels):
        m_k = max(width, front.nrows - k * width)
        flow.submit(
            "front_geqrt",
            [(blockcols[k], AccessMode.RW)],
            flops=panel_flops(m_k, width),
            implementations=_BOTH,
            tag=("panel", front.fid, k),
        )
        for j in range(k + 1, n_blockcols):
            cols = min(width, front.ncols - j * width)
            if cols <= 0:
                continue
            flow.submit(
                "front_tsmqr",
                [(blockcols[k], AccessMode.R), (blockcols[j], AccessMode.RW)],
                flops=update_flops(m_k, width, cols),
                implementations=_BOTH,
                tag=("update", front.fid, k, j),
            )

    if front.parent is not None:
        trailing = blockcols[n_panels - 1 :] or [blockcols[-1]]
        _submit_store_cb(flow, front, cb_handles, trailing)


def _build_front_2d(
    flow: TaskFlow,
    front: Front,
    cb_handles: dict[int, DataHandle],
    tile: int,
    max_panels: int,
    max_row_blocks: int,
) -> None:
    """2D tile-QR partitioning for large fronts (Agullo et al. [29]).

    Tiles are ``h x w``: the width tracks the pivotal panels, the height
    grows for very tall fronts so the row-block count stays bounded.
    """
    w = max(tile, math.ceil(front.npiv / max_panels))
    h = max(w, math.ceil(front.nrows / max_row_blocks))
    p = max(1, math.ceil(front.npiv / w))  # pivotal panels
    q = max(p, math.ceil(front.ncols / w))  # block columns
    r = max(p, math.ceil(front.nrows / h))  # block rows
    tiles: dict[tuple[int, int], DataHandle] = {}

    def tile_handle(i: int, j: int) -> DataHandle:
        handle = tiles.get((i, j))
        if handle is None:
            handle = flow.data(
                _DTYPE_BYTES * h * w, label=f"F{front.fid}[{i},{j}]", key=(front.fid, i, j)
            )
            tiles[(i, j)] = handle
        return handle

    # Assembly writes the full tile grid.
    all_tiles = [tile_handle(i, j) for i in range(r) for j in range(q)]
    _submit_assemble(flow, front, cb_handles, all_tiles)

    geqrt_fl = panel_flops(h, w)
    ormqr_fl = update_flops(h, w, w)
    tsqrt_fl = 2.0 * w * w * h
    tsmqr_fl = 4.0 * w * w * h
    for k in range(p):
        flow.submit(
            "front_geqrt",
            [(tile_handle(k, k), AccessMode.RW)],
            flops=geqrt_fl,
            implementations=_BOTH,
            tag=("geqrt2d", front.fid, k),
        )
        for j in range(k + 1, q):
            flow.submit(
                "front_ormqr",
                [(tile_handle(k, k), AccessMode.R), (tile_handle(k, j), AccessMode.RW)],
                flops=ormqr_fl,
                implementations=_BOTH,
                tag=("ormqr2d", front.fid, k, j),
            )
        for i in range(k + 1, r):
            flow.submit(
                "front_tsqrt",
                [(tile_handle(k, k), AccessMode.RW), (tile_handle(i, k), AccessMode.RW)],
                flops=tsqrt_fl,
                implementations=_BOTH,
                tag=("tsqrt2d", front.fid, i, k),
            )
            for j in range(k + 1, q):
                flow.submit(
                    "front_tsmqr",
                    [
                        (tile_handle(i, k), AccessMode.R),
                        (tile_handle(k, j), AccessMode.RW),
                        (tile_handle(i, j), AccessMode.RW),
                    ],
                    flops=tsmqr_fl,
                    implementations=_BOTH,
                    tag=("tsmqr2d", front.fid, i, k, j),
                )

    if front.parent is not None:
        trailing = [tile_handle(i, j) for i in range(p, r) for j in range(p, q)]
        if not trailing:
            trailing = [tile_handle(r - 1, q - 1)]
        _submit_store_cb(flow, front, cb_handles, trailing)
