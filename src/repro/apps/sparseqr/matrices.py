"""The paper's Fig. 7 sparse matrix collection, as synthetic analogs.

Published statistics (rows, cols, nonzeros, factorization op count in
Gflop, METIS ordering) are reproduced verbatim; each matrix also carries
a :class:`~repro.apps.sparseqr.treegen.TreeProfile` chosen to mimic its
structural class:

* ``cat_ears_*`` / ``flower_*`` — mesh-like graphs: balanced, moderate;
* ``e18`` / ``TF17`` / ``TF18`` — combinatorial problems: deep trees;
* ``Rucci1`` — extremely tall-skinny: a huge flat forest of small fronts;
* ``neos2`` / ``GL7d24`` / ``mk13-b5`` — heavy op counts, large root fronts.

``scale`` in :func:`matrix_tree` shrinks the target op count for quick
tests (the benches default to a fraction of the published Gflops so a
full Fig. 8 grid stays laptop-sized; pass ``scale=1.0`` for paper-scale
op counts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.sparseqr.fronts import EliminationTree
from repro.apps.sparseqr.treegen import TreeProfile, synthetic_elimination_tree
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class MatrixSpec:
    """One row of the paper's Fig. 7 table plus its synthetic profile."""

    name: str
    rows: int
    cols: int
    nnz: int
    gflops: float
    profile: TreeProfile


MATRICES: tuple[MatrixSpec, ...] = (
    MatrixSpec("cat_ears_4_4", 19020, 44448, 132888, 236,
               TreeProfile(n_fronts=300, branching=3.2, root_cols=700, decay=0.60, aspect=1.3, pivot_frac=0.5)),
    MatrixSpec("flower_7_4", 27693, 67593, 202218, 889,
               TreeProfile(n_fronts=360, branching=3.0, root_cols=900, decay=0.60, aspect=1.3, pivot_frac=0.5)),
    MatrixSpec("e18", 24617, 38602, 156466, 1439,
               TreeProfile(n_fronts=320, branching=2.2, root_cols=1100, decay=0.68, aspect=1.5, pivot_frac=0.55)),
    MatrixSpec("flower_8_4", 55081, 125361, 375266, 3072,
               TreeProfile(n_fronts=420, branching=3.0, root_cols=1300, decay=0.62, aspect=1.3, pivot_frac=0.5)),
    MatrixSpec("Rucci1", 1977885, 109900, 7791168, 5527,
               TreeProfile(n_fronts=600, branching=4.5, root_cols=1200, decay=0.55, aspect=9.0, pivot_frac=0.6)),
    MatrixSpec("TF17", 38132, 48630, 586218, 15787,
               TreeProfile(n_fronts=380, branching=2.0, root_cols=2200, decay=0.70, aspect=1.6, pivot_frac=0.55)),
    MatrixSpec("neos2", 132568, 134128, 685087, 31018,
               TreeProfile(n_fronts=450, branching=2.6, root_cols=2800, decay=0.66, aspect=1.8, pivot_frac=0.55)),
    MatrixSpec("GL7d24", 21074, 105054, 593892, 26825,
               TreeProfile(n_fronts=350, branching=2.4, root_cols=2600, decay=0.68, aspect=1.4, pivot_frac=0.6)),
    MatrixSpec("TF18", 95368, 123867, 1597545, 229042,
               TreeProfile(n_fronts=500, branching=2.0, root_cols=5200, decay=0.72, aspect=1.6, pivot_frac=0.55)),
    MatrixSpec("mk13-b5", 135135, 270270, 810810, 352413,
               TreeProfile(n_fronts=520, branching=2.8, root_cols=6200, decay=0.68, aspect=1.5, pivot_frac=0.6)),
)


def matrix_by_name(name: str) -> MatrixSpec:
    """Look up one of the Fig. 7 matrices by name."""
    for spec in MATRICES:
        if spec.name == name:
            return spec
    raise ValidationError(
        f"unknown matrix {name!r}; known: {', '.join(m.name for m in MATRICES)}"
    )


def matrix_tree(spec: MatrixSpec, *, scale: float = 1.0, seed: int = 0) -> EliminationTree:
    """Synthesize the elimination tree of ``spec``.

    ``scale`` multiplies the published op count (use < 1 for fast runs);
    the per-matrix RNG stream is derived from the matrix name so every
    run of the suite sees identical trees.
    """
    if scale <= 0:
        raise ValidationError(f"scale must be > 0, got {scale}")
    name_seed = sum(ord(c) * (31**i) for i, c in enumerate(spec.name)) % (2**31)
    return synthetic_elimination_tree(
        spec.profile,
        target_flops=spec.gflops * 1e9 * scale,
        seed=name_seed ^ seed,
    )
