"""Multifrontal sparse QR generators (the QR_MUMPS analog)."""

from repro.apps.sparseqr.fronts import Front, EliminationTree
from repro.apps.sparseqr.treegen import TreeProfile, synthetic_elimination_tree
from repro.apps.sparseqr.matrices import (
    MatrixSpec,
    MATRICES,
    matrix_by_name,
    matrix_tree,
)
from repro.apps.sparseqr.taskgraph import (
    sparse_qr_program,
    panel_flops,
    update_flops,
    assemble_flops,
)

__all__ = [
    "Front",
    "EliminationTree",
    "TreeProfile",
    "synthetic_elimination_tree",
    "MatrixSpec",
    "MATRICES",
    "matrix_by_name",
    "matrix_tree",
    "sparse_qr_program",
    "panel_flops",
    "update_flops",
    "assemble_flops",
]
