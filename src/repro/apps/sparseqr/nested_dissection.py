"""Nested-dissection elimination trees over regular grid graphs.

The paper orders its matrices with METIS; for *mesh-like* matrices
(cat_ears, flower_*) the resulting elimination trees are the classic
nested-dissection shape: a recursive bisection where each level's
*separator* becomes a front whose pivotal block is the separator and
whose border couples it to the enclosing separators.

This module builds that tree exactly, from a ``nx x ny`` grid with
``dofs`` unknowns per grid point: region fronts carry
``npiv = |separator| * dofs`` pivots and a border of the region's
boundary points. It complements the statistical generator in
:mod:`repro.apps.sparseqr.treegen` — use this one when the front-size
*structure* (geometric growth ~sqrt(n) toward the root, perfectly
balanced halves) matters, e.g. for studying scheduler behaviour on mesh
problems specifically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.sparseqr.fronts import EliminationTree, Front
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class _Region:
    """A grid sub-rectangle [x0, x1) x [y0, y1)."""

    x0: int
    x1: int
    y0: int
    y1: int

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def n_points(self) -> int:
        return self.width * self.height

    @property
    def perimeter(self) -> int:
        return 2 * (self.width + self.height)


def nested_dissection_tree(
    nx: int,
    ny: int,
    *,
    dofs: int = 1,
    leaf_points: int = 16,
    aspect: float = 1.5,
) -> EliminationTree:
    """Build the nested-dissection elimination tree of an nx x ny grid.

    ``dofs`` scales every front dimension (unknowns per grid point);
    ``leaf_points`` stops the recursion; ``aspect`` sets front rows per
    column (QR fronts are taller than square).
    """
    check_positive("nx", nx)
    check_positive("ny", ny)
    check_positive("dofs", dofs)
    check_positive("leaf_points", leaf_points)
    check_positive("aspect", aspect)

    fronts: list[Front] = []

    def build(region: _Region, depth: int, border_points: int) -> Front:
        if region.n_points <= leaf_points or min(region.width, region.height) < 3:
            npiv = max(1, region.n_points * dofs)
            ncols = npiv + max(1, border_points * dofs)
            nrows = max(int(ncols * aspect), npiv)
            front = Front(len(fronts), nrows, ncols, npiv, depth=depth)
            fronts.append(front)
            return front

        # Split perpendicular to the longer dimension.
        if region.width >= region.height:
            mid = (region.x0 + region.x1) // 2
            sep_points = region.height
            left = _Region(region.x0, mid, region.y0, region.y1)
            right = _Region(mid + 1, region.x1, region.y0, region.y1)
        else:
            mid = (region.y0 + region.y1) // 2
            sep_points = region.width
            left = _Region(region.x0, region.x1, region.y0, mid)
            right = _Region(region.x0, region.x1, mid + 1, region.y1)

        npiv = max(1, sep_points * dofs)
        ncols = npiv + max(1, border_points * dofs)
        nrows = max(int(ncols * aspect), npiv)
        front = Front(len(fronts), nrows, ncols, npiv, depth=depth)
        fronts.append(front)

        # Children see the separator as part of their border.
        child_border = border_points // 2 + sep_points
        for child_region in (left, right):
            if child_region.n_points > 0:
                child = build(child_region, depth + 1, child_border)
                child.parent = front
                front.children.append(child)
        return front

    build(_Region(0, nx, 0, ny), depth=0, border_points=0)
    return EliminationTree(fronts)
