"""Frontal matrices and elimination trees for multifrontal sparse QR.

A multifrontal factorization processes a tree of dense *fronts*: each
front assembles its children's contribution blocks, factors its pivotal
columns, and passes the remaining rows up as its own contribution block.
Front shapes vary enormously across the tree — thousands of tiny leaf
fronts, a handful of huge root fronts — which is what makes the workload
irregular (the paper's Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import ValidationError, check_positive


@dataclass
class Front:
    """One frontal matrix in the elimination tree.

    ``nrows x ncols`` dense front eliminating ``npiv`` pivotal columns;
    the trailing ``(nrows - npiv) x (ncols - npiv)`` block (clamped at 0)
    is the contribution block passed to the parent.
    """

    fid: int
    nrows: int
    ncols: int
    npiv: int
    depth: int = 0
    children: list["Front"] = field(default_factory=list)
    parent: "Front | None" = None

    def __post_init__(self) -> None:
        check_positive("nrows", self.nrows)
        check_positive("ncols", self.ncols)
        if not (0 < self.npiv <= self.ncols):
            raise ValidationError(
                f"front {self.fid}: npiv={self.npiv} outside (0, ncols={self.ncols}]"
            )
        if self.nrows < self.npiv:
            raise ValidationError(
                f"front {self.fid}: nrows={self.nrows} < npiv={self.npiv}"
            )

    @property
    def cb_rows(self) -> int:
        """Rows of the contribution block.

        After eliminating ``npiv`` columns by QR, the rows passed to the
        parent are the transformed rows of the R part — bounded by both
        the remaining rows and the remaining columns (a QR contribution
        block is at most ``(min(m, n) - k) x (n - k)``)."""
        return max(0, min(self.nrows, self.ncols) - self.npiv)

    @property
    def cb_cols(self) -> int:
        """Columns of the contribution block."""
        return max(0, self.ncols - self.npiv)

    @property
    def is_leaf(self) -> bool:
        """Whether the front has no children."""
        return not self.children

    def factor_flops(self) -> float:
        """QR flops to eliminate ``npiv`` columns of an m x n front:
        the Householder QR count 2·k·(m·n − k·(m+n)/2 + k²/3)."""
        m, n, k = float(self.nrows), float(self.ncols), float(self.npiv)
        return max(0.0, 2.0 * k * (m * n - 0.5 * k * (m + n) + k * k / 3.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Front {self.fid} {self.nrows}x{self.ncols} piv={self.npiv} d={self.depth}>"


class EliminationTree:
    """A forest of fronts, stored root-last in postorder."""

    def __init__(self, fronts: list[Front]) -> None:
        if not fronts:
            raise ValidationError("elimination tree needs at least one front")
        self.fronts = fronts
        ids = {f.fid for f in fronts}
        if len(ids) != len(fronts):
            raise ValidationError("duplicate front ids")
        for front in fronts:
            for child in front.children:
                if child.parent is not front:
                    raise ValidationError(
                        f"front {child.fid} has inconsistent parent link"
                    )

    def roots(self) -> list[Front]:
        """Fronts without a parent."""
        return [f for f in self.fronts if f.parent is None]

    def leaves(self) -> list[Front]:
        """Fronts without children."""
        return [f for f in self.fronts if f.is_leaf]

    def postorder(self) -> list[Front]:
        """Children-before-parent order (the factorization order)."""
        out: list[Front] = []
        visited: set[int] = set()

        def visit(front: Front) -> None:
            if front.fid in visited:
                raise ValidationError(f"cycle through front {front.fid}")
            visited.add(front.fid)
            for child in front.children:
                visit(child)
            out.append(front)

        for root in self.roots():
            visit(root)
        if len(out) != len(self.fronts):
            raise ValidationError("unreachable fronts in elimination tree")
        return out

    def total_factor_flops(self) -> float:
        """Sum of per-front factorization flops."""
        return sum(f.factor_flops() for f in self.fronts)

    def depth(self) -> int:
        """Maximum depth over fronts."""
        return max(f.depth for f in self.fronts)

    def __len__(self) -> int:
        return len(self.fronts)
