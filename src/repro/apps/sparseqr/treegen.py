"""Synthetic elimination-tree generation.

We do not ship SuiteSparse matrices nor METIS; instead each matrix of
the paper's Fig. 7 collection is mapped to a *synthetic elimination
tree* whose aggregate statistics match the published ones (total factor
flops, rows/cols aspect, tree shape class). What the scheduler
experiences — thousands of small CPU-sized fronts at the bottom, a few
GPU-sized fronts near the root, tree-shaped dependencies — is preserved;
the numerical content of the matrix is irrelevant to scheduling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.sparseqr.fronts import EliminationTree, Front
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TreeProfile:
    """Shape parameters of a synthetic elimination tree.

    ``n_fronts`` — approximate number of fronts;
    ``branching`` — mean children per internal front;
    ``root_cols`` — pivotal width of the root front before scaling;
    ``decay`` — multiplicative column shrink per tree level;
    ``aspect`` — mean rows/cols ratio of the original rows assigned to a
    front (tall-skinny matrices like Rucci1 use a large aspect);
    ``pivot_frac`` — fraction of front columns eliminated in the front.
    """

    n_fronts: int = 400
    branching: float = 3.0
    root_cols: int = 2000
    decay: float = 0.62
    aspect: float = 1.6
    pivot_frac: float = 0.55

    def __post_init__(self) -> None:
        check_positive("n_fronts", self.n_fronts)
        check_positive("branching", self.branching)
        check_positive("root_cols", self.root_cols)
        check_positive("decay", self.decay)
        check_positive("aspect", self.aspect)
        check_positive("pivot_frac", self.pivot_frac)


def synthetic_elimination_tree(
    profile: TreeProfile,
    *,
    target_flops: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> EliminationTree:
    """Generate an elimination tree following ``profile``.

    If ``target_flops`` is given, front dimensions are rescaled (cubic
    flop growth) so the total factorization cost matches it within a few
    percent.
    """
    rng = make_rng(seed)
    fronts = _grow_shape(profile, rng)
    _assign_dims(fronts, profile, rng)
    tree = EliminationTree(fronts)
    if target_flops is not None:
        check_positive("target_flops", target_flops)
        # Two fixed-point passes: flops are cubic in linear dimensions,
        # but int rounding and the CB row propagation break exactness.
        for _ in range(3):
            current = tree.total_factor_flops()
            if current <= 0:
                break
            ratio = (target_flops / current) ** (1.0 / 3.0)
            if abs(ratio - 1.0) < 0.02:
                break
            _rescale_dims(fronts, ratio)
        tree = EliminationTree(fronts)
    return tree


def _grow_shape(profile: TreeProfile, rng: np.random.Generator) -> list[Front]:
    """Top-down random tree shape with ~n_fronts nodes."""
    fronts: list[Front] = []
    root = Front(0, 1, 1, 1)  # dims assigned later
    root.depth = 0
    fronts.append(root)
    frontier = [root]
    while frontier and len(fronts) < profile.n_fronts:
        parent = frontier.pop(0)
        n_children = 1 + rng.poisson(max(0.0, profile.branching - 1.0))
        for _ in range(n_children):
            if len(fronts) >= profile.n_fronts:
                break
            child = Front(len(fronts), 1, 1, 1)
            child.depth = parent.depth + 1
            child.parent = parent
            parent.children.append(child)
            fronts.append(child)
            frontier.append(child)
    return fronts


def _assign_dims(
    fronts: list[Front], profile: TreeProfile, rng: np.random.Generator
) -> None:
    """Columns decay with depth; rows follow the aspect ratio plus the
    children's contribution-block rows (assembled into the front)."""
    for front in fronts:
        base = profile.root_cols * profile.decay**front.depth
        ncols = max(8, int(base * math.exp(rng.normal(0.0, 0.35))))
        front.ncols = ncols
        front.npiv = max(4, int(ncols * profile.pivot_frac))
    # Rows bottom-up (children processed before parents <=> deeper first).
    for front in sorted(fronts, key=lambda f: -f.depth):
        own_rows = int(front.ncols * profile.aspect * math.exp(rng.normal(0.0, 0.25)))
        cb_rows = sum(c.cb_rows for c in front.children)
        front.nrows = max(front.npiv, own_rows + cb_rows)


def _rescale_dims(fronts: list[Front], ratio: float) -> None:
    for front in fronts:
        front.ncols = max(8, int(front.ncols * ratio))
        front.npiv = max(4, min(front.ncols, int(front.npiv * ratio)))
        front.nrows = max(front.npiv, int(front.nrows * ratio))
