"""Expert task priorities for the dense kernels.

CHAMELEON ships offline-tuned priorities for its routines; the tuning
target is distance to the end of the factorization along the critical
path. We reproduce that oracle exactly: the priority of a task is its
flop-weighted *bottom level* in the generated DAG, quantized to an
integer. Dmdas consumes these; MultiPrio and HeteroPrio ignore them
(they are automatic schedulers).
"""

from __future__ import annotations

from repro.runtime.dag import bottom_levels
from repro.runtime.stf import Program

#: Quantization steps for the integer priorities.
PRIORITY_LEVELS = 1_000_000


def assign_bottom_level_priorities(program: Program) -> None:
    """Set ``task.priority`` to the quantized flop-weighted bottom level."""
    if not program.tasks:
        return
    levels = bottom_levels(program.tasks, lambda t: t.flops)
    top = max(levels.values())
    if top <= 0:
        return
    for task in program.tasks:
        task.priority = int(levels[task.tid] / top * PRIORITY_LEVELS)


def clear_priorities(program: Program) -> None:
    """Reset every task to priority 0 (the "no user knowledge" setting)."""
    for task in program.tasks:
        task.priority = 0
