"""Tiled QR factorization (geqrf) — CHAMELEON analog.

Flat-tree tile QR with the classic four kernels and the auxiliary T
factors (stored as extra handles, so the STF front-end sees the true
data flow)::

    for k in 0..nt-1:
        GEQRT A[k][k] -> T[k][k]
        for j in k+1..nt-1:        ORMQR  A[k][k],T[k][k] -> A[k][j]
        for i in k+1..nt-1:
            TSQRT A[k][k],A[i][k] -> T[i][k]
            for j in k+1..nt-1:    TSMQR  A[i][k],T[i][k] -> A[k][j],A[i][j]

The serial TSQRT chain down each panel makes the QR DAG deeper and less
forgiving than Cholesky's — the reason scheduler differences narrow on
geqrf in the paper's Fig. 5.
"""

from __future__ import annotations

from repro.apps.dense import kernels
from repro.apps.dense.priorities import assign_bottom_level_priorities
from repro.apps.dense.tiled_matrix import TiledMatrix
from repro.runtime.stf import Program, TaskFlow
from repro.runtime.task import AccessMode

_BOTH = ("cpu", "cuda")


def qr_program(
    n_tiles: int,
    tile_size: int,
    *,
    with_priorities: bool = True,
    dtype_bytes: int = 8,
    inner_blocking: int = 32,
) -> Program:
    """Build the flat-tree tile QR task graph.

    ``inner_blocking`` only sizes the T-factor handles (ib x b), as in
    PLASMA/CHAMELEON.
    """
    flow = TaskFlow(f"geqrf-{n_tiles}x{tile_size}")
    A = TiledMatrix(flow, n_tiles, tile_size, dtype_bytes=dtype_bytes)
    T = TiledMatrix(
        flow,
        n_tiles,
        tile_size,
        name="T",
        dtype_bytes=max(1, dtype_bytes * inner_blocking // tile_size),
    )
    b = tile_size
    R, W, RW = AccessMode.R, AccessMode.W, AccessMode.RW

    for k in range(n_tiles):
        flow.submit(
            "geqrt",
            [(A.tile(k, k), RW), (T.tile(k, k), W)],
            flops=kernels.geqrt_flops(b),
            implementations=_BOTH,
            tag=("geqrt", k),
        )
        for j in range(k + 1, n_tiles):
            flow.submit(
                "ormqr",
                [(A.tile(k, k), R), (T.tile(k, k), R), (A.tile(k, j), RW)],
                flops=kernels.ormqr_flops(b),
                implementations=_BOTH,
                tag=("ormqr", k, j),
            )
        for i in range(k + 1, n_tiles):
            flow.submit(
                "tsqrt",
                [(A.tile(k, k), RW), (A.tile(i, k), RW), (T.tile(i, k), W)],
                flops=kernels.tsqrt_flops(b),
                implementations=_BOTH,
                tag=("tsqrt", i, k),
            )
            for j in range(k + 1, n_tiles):
                flow.submit(
                    "tsmqr",
                    [
                        (A.tile(i, k), R),
                        (T.tile(i, k), R),
                        (A.tile(k, j), RW),
                        (A.tile(i, j), RW),
                    ],
                    flops=kernels.tsmqr_flops(b),
                    implementations=_BOTH,
                    tag=("tsmqr", i, j, k),
                )

    program = flow.program()
    if with_priorities:
        assign_bottom_level_priorities(program)
    return program


def qr_task_count(n_tiles: int) -> int:
    """Closed-form task count of the flat-tree QR DAG."""
    nt = n_tiles
    total = 0
    for k in range(nt):
        rest = nt - k - 1
        total += 1 + rest + rest + rest * rest
    return total
