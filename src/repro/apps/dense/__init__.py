"""Dense tiled linear algebra generators (the CHAMELEON analog)."""

from repro.apps.dense.cholesky import cholesky_program, cholesky_task_count
from repro.apps.dense.lu import lu_program, lu_task_count
from repro.apps.dense.qr import qr_program, qr_task_count
from repro.apps.dense.tiled_matrix import TiledMatrix
from repro.apps.dense.priorities import (
    assign_bottom_level_priorities,
    clear_priorities,
)
from repro.apps.dense import kernels

__all__ = [
    "cholesky_program",
    "cholesky_task_count",
    "lu_program",
    "lu_task_count",
    "qr_program",
    "qr_task_count",
    "TiledMatrix",
    "assign_bottom_level_priorities",
    "clear_priorities",
    "kernels",
]
