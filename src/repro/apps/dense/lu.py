"""Tiled LU factorization without pivoting (getrf) — CHAMELEON analog.

Same diamond-shaped DAG family as Cholesky but non-symmetric: both the
row and the column panels are updated each step, roughly doubling the
workload and the data traffic (the behaviour Section VI-A discusses)::

    for k in 0..nt-1:
        GETRF A[k][k]
        for j in k+1..nt-1:   TRSM(row)  A[k][k] -> A[k][j]
        for i in k+1..nt-1:   TRSM(col)  A[k][k] -> A[i][k]
        for i,j in k+1..nt-1: GEMM       A[i][k], A[k][j] -> A[i][j]
"""

from __future__ import annotations

from repro.apps.dense import kernels
from repro.apps.dense.priorities import assign_bottom_level_priorities
from repro.apps.dense.tiled_matrix import TiledMatrix
from repro.runtime.stf import Program, TaskFlow
from repro.runtime.task import AccessMode

_BOTH = ("cpu", "cuda")


def lu_program(
    n_tiles: int,
    tile_size: int,
    *,
    with_priorities: bool = True,
    dtype_bytes: int = 8,
) -> Program:
    """Build the tiled no-pivoting LU task graph."""
    flow = TaskFlow(f"getrf-{n_tiles}x{tile_size}")
    A = TiledMatrix(flow, n_tiles, tile_size, dtype_bytes=dtype_bytes)
    b = tile_size
    R, RW = AccessMode.R, AccessMode.RW

    for k in range(n_tiles):
        flow.submit(
            "getrf",
            [(A.tile(k, k), RW)],
            flops=kernels.getrf_flops(b),
            implementations=_BOTH,
            tag=("getrf", k),
        )
        for j in range(k + 1, n_tiles):
            flow.submit(
                "trsm",
                [(A.tile(k, k), R), (A.tile(k, j), RW)],
                flops=kernels.trsm_flops(b),
                implementations=_BOTH,
                tag=("trsm_row", k, j),
            )
        for i in range(k + 1, n_tiles):
            flow.submit(
                "trsm",
                [(A.tile(k, k), R), (A.tile(i, k), RW)],
                flops=kernels.trsm_flops(b),
                implementations=_BOTH,
                tag=("trsm_col", i, k),
            )
        for i in range(k + 1, n_tiles):
            for j in range(k + 1, n_tiles):
                flow.submit(
                    "gemm",
                    [(A.tile(i, k), R), (A.tile(k, j), R), (A.tile(i, j), RW)],
                    flops=kernels.gemm_flops(b),
                    implementations=_BOTH,
                    tag=("gemm", i, j, k),
                )

    program = flow.program()
    if with_priorities:
        assign_bottom_level_priorities(program)
    return program


def lu_task_count(n_tiles: int) -> int:
    """Closed-form task count of the no-pivoting LU DAG."""
    nt = n_tiles
    total = 0
    for k in range(nt):
        rest = nt - k - 1
        total += 1 + 2 * rest + rest * rest
    return total
