"""Flop counts of the dense tile kernels.

Standard operation counts for square tiles of size ``b`` (LAPACK working
notes / PLASMA conventions). Only the leading terms matter for
scheduling studies — the relative weights steer the affinity and
criticality heuristics.
"""

from __future__ import annotations

from repro.utils.validation import check_positive


def potrf_flops(b: int) -> float:
    """Cholesky factorization of a b x b tile: b³/3."""
    check_positive("tile size", b)
    return b**3 / 3.0


def trsm_flops(b: int) -> float:
    """Triangular solve with a b x b tile: b³."""
    check_positive("tile size", b)
    return float(b**3)


def syrk_flops(b: int) -> float:
    """Symmetric rank-b update: b³."""
    check_positive("tile size", b)
    return float(b**3)


def gemm_flops(b: int) -> float:
    """General tile product: 2·b³."""
    check_positive("tile size", b)
    return 2.0 * b**3


def getrf_flops(b: int) -> float:
    """LU factorization (no pivoting) of a b x b tile: 2·b³/3."""
    check_positive("tile size", b)
    return 2.0 * b**3 / 3.0


def geqrt_flops(b: int) -> float:
    """QR factorization of a b x b tile: 4·b³/3."""
    check_positive("tile size", b)
    return 4.0 * b**3 / 3.0


def ormqr_flops(b: int) -> float:
    """Apply a tile's reflectors to one tile: 2·b³."""
    check_positive("tile size", b)
    return 2.0 * b**3


def tsqrt_flops(b: int) -> float:
    """Triangular-on-square QR of a stacked tile pair: 2·b³."""
    check_positive("tile size", b)
    return 2.0 * b**3


def tsmqr_flops(b: int) -> float:
    """Apply TSQRT reflectors to a tile pair: 4·b³."""
    check_positive("tile size", b)
    return 4.0 * b**3


def cholesky_total_flops(n: int) -> float:
    """n³/3 for an n x n Cholesky (leading term)."""
    return n**3 / 3.0


def lu_total_flops(n: int) -> float:
    """2·n³/3 for an n x n LU (leading term)."""
    return 2.0 * n**3 / 3.0


def qr_total_flops(n: int) -> float:
    """4·n³/3 for an n x n QR (leading term)."""
    return 4.0 * n**3 / 3.0
