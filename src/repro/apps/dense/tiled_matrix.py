"""Tiled-matrix data-handle management for the dense generators."""

from __future__ import annotations

from repro.runtime.data import DataHandle
from repro.runtime.stf import TaskFlow
from repro.utils.validation import check_positive


class TiledMatrix:
    """An ``nt x nt`` grid of square tiles registered as data handles.

    ``lower_only=True`` registers only the lower triangle (Cholesky
    touches nothing above the diagonal). Handles are created lazily so a
    symmetric algorithm never registers tiles it will not reference.
    """

    def __init__(
        self,
        flow: TaskFlow,
        n_tiles: int,
        tile_size: int,
        *,
        name: str = "A",
        dtype_bytes: int = 8,
        lower_only: bool = False,
    ) -> None:
        check_positive("n_tiles", n_tiles)
        check_positive("tile_size", tile_size)
        self.flow = flow
        self.nt = int(n_tiles)
        self.b = int(tile_size)
        self.name = name
        self.tile_bytes = int(dtype_bytes) * self.b * self.b
        self.lower_only = lower_only
        self._tiles: dict[tuple[int, int], DataHandle] = {}

    @property
    def n(self) -> int:
        """Global matrix order."""
        return self.nt * self.b

    def tile(self, i: int, j: int) -> DataHandle:
        """Handle of tile (i, j); created on first reference."""
        if not (0 <= i < self.nt and 0 <= j < self.nt):
            raise IndexError(f"tile ({i},{j}) outside {self.nt}x{self.nt} grid")
        if self.lower_only and j > i:
            raise IndexError(f"tile ({i},{j}) is above the diagonal of {self.name}")
        handle = self._tiles.get((i, j))
        if handle is None:
            handle = self.flow.data(
                self.tile_bytes, label=f"{self.name}[{i},{j}]", key=(self.name, i, j)
            )
            self._tiles[(i, j)] = handle
        return handle

    def n_registered(self) -> int:
        """How many tiles have been materialized."""
        return len(self._tiles)
