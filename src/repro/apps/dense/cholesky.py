"""Tiled Cholesky factorization (potrf) — the CHAMELEON analog.

Right-looking tile algorithm on the lower triangle::

    for k in 0..nt-1:
        POTRF A[k][k]
        for i in k+1..nt-1:      TRSM  A[k][k] -> A[i][k]
        for i in k+1..nt-1:      SYRK  A[i][k] -> A[i][i]
            for j in k+1..i-1:   GEMM  A[i][k], A[j][k] -> A[i][j]

Dependencies are inferred by the STF front-end from the tile accesses;
the diamond-shaped DAG the paper discusses emerges automatically. Task
counts: nt POTRFs, nt(nt-1)/2 TRSMs and SYRKs, nt(nt-1)(nt-2)/6 GEMMs.
"""

from __future__ import annotations

from repro.apps.dense import kernels
from repro.apps.dense.priorities import assign_bottom_level_priorities
from repro.apps.dense.tiled_matrix import TiledMatrix
from repro.runtime.stf import Program, TaskFlow
from repro.runtime.task import AccessMode

_BOTH = ("cpu", "cuda")


def cholesky_program(
    n_tiles: int,
    tile_size: int,
    *,
    with_priorities: bool = True,
    dtype_bytes: int = 8,
) -> Program:
    """Build the tiled Cholesky task graph.

    ``with_priorities=True`` attaches the expert (bottom-level) task
    priorities CHAMELEON would provide; pass ``False`` to model an
    application without user knowledge.
    """
    flow = TaskFlow(f"potrf-{n_tiles}x{tile_size}")
    A = TiledMatrix(flow, n_tiles, tile_size, lower_only=True, dtype_bytes=dtype_bytes)
    b = tile_size
    R, RW = AccessMode.R, AccessMode.RW

    for k in range(n_tiles):
        flow.submit(
            "potrf",
            [(A.tile(k, k), RW)],
            flops=kernels.potrf_flops(b),
            implementations=_BOTH,
            tag=("potrf", k),
        )
        for i in range(k + 1, n_tiles):
            flow.submit(
                "trsm",
                [(A.tile(k, k), R), (A.tile(i, k), RW)],
                flops=kernels.trsm_flops(b),
                implementations=_BOTH,
                tag=("trsm", i, k),
            )
        for i in range(k + 1, n_tiles):
            flow.submit(
                "syrk",
                [(A.tile(i, k), R), (A.tile(i, i), RW)],
                flops=kernels.syrk_flops(b),
                implementations=_BOTH,
                tag=("syrk", i, k),
            )
            for j in range(k + 1, i):
                flow.submit(
                    "gemm",
                    [(A.tile(i, k), R), (A.tile(j, k), R), (A.tile(i, j), RW)],
                    flops=kernels.gemm_flops(b),
                    implementations=_BOTH,
                    tag=("gemm", i, j, k),
                )

    program = flow.program()
    if with_priorities:
        assign_bottom_level_priorities(program)
    return program


def cholesky_task_count(n_tiles: int) -> int:
    """Closed-form task count: nt + nt(nt-1) + nt(nt-1)(nt-2)/6."""
    nt = n_tiles
    return nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) // 6
