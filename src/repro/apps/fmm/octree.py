"""Adaptive octree: cells, neighbor lists and M2L interaction lists.

Standard FMM geometry: a cell's *neighbors* are the adjacent cells at
its level; its *interaction list* is the set of children of the parent's
neighbors that are not its own neighbors (at most 189 cells in 3D).
Only cells with particles below them exist (adaptive octree), so
non-uniform distributions give irregular lists — and irregular task
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import ValidationError, check_positive

Coord = tuple[int, int, int]


@dataclass
class Cell:
    """One octree cell at ``level`` with integer grid coordinates."""

    level: int
    coord: Coord
    n_particles: int = 0
    children: list["Cell"] = field(default_factory=list)
    parent: "Cell | None" = None

    @property
    def key(self) -> tuple[int, Coord]:
        """Unique (level, coord) identifier."""
        return (self.level, self.coord)

    @property
    def is_leaf(self) -> bool:
        """Whether the cell has no children (bottom of the tree)."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cell L{self.level} {self.coord} n={self.n_particles}>"


class Octree:
    """Adaptive octree built from leaf occupancy counts.

    Parameters
    ----------
    height:
        Number of levels; leaves live at level ``height - 1``. The paper
        uses height 6 with 10⁶ particles; the reproduction defaults to
        smaller trees (see the Fig. 6 bench).
    occupancy:
        Mapping leaf coordinate -> particle count; only non-empty leaves
        are instantiated, and internal cells exist only above them.
    """

    def __init__(self, height: int, occupancy: dict[Coord, int]) -> None:
        check_positive("height", height)
        if not occupancy:
            raise ValidationError("octree needs at least one occupied leaf")
        self.height = height
        side = 2 ** (height - 1)
        for coord in occupancy:
            if not all(0 <= c < side for c in coord):
                raise ValidationError(f"leaf {coord} outside the level-{height - 1} grid")
        self.levels: list[dict[Coord, Cell]] = [dict() for _ in range(height)]

        leaf_level = height - 1
        for coord, count in sorted(occupancy.items()):
            self.levels[leaf_level][coord] = Cell(leaf_level, coord, n_particles=count)
        # Build ancestors bottom-up.
        for level in range(leaf_level, 0, -1):
            for coord, cell in sorted(self.levels[level].items()):
                pcoord = (coord[0] // 2, coord[1] // 2, coord[2] // 2)
                parent = self.levels[level - 1].get(pcoord)
                if parent is None:
                    parent = Cell(level - 1, pcoord)
                    self.levels[level - 1][pcoord] = parent
                parent.children.append(cell)
                parent.n_particles += cell.n_particles
                cell.parent = parent

    # -- traversal -------------------------------------------------------

    @property
    def leaf_level(self) -> int:
        """Index of the deepest level."""
        return self.height - 1

    def cells_at(self, level: int) -> list[Cell]:
        """Cells of one level, in deterministic coordinate order."""
        return [self.levels[level][c] for c in sorted(self.levels[level])]

    def leaves(self) -> list[Cell]:
        """All leaf cells."""
        return self.cells_at(self.leaf_level)

    def n_cells(self) -> int:
        """Total number of cells across levels."""
        return sum(len(lvl) for lvl in self.levels)

    # -- FMM geometry -------------------------------------------------------

    def neighbors(self, cell: Cell) -> list[Cell]:
        """Existing adjacent cells at the cell's level (excluding itself)."""
        level_cells = self.levels[cell.level]
        out: list[Cell] = []
        x, y, z = cell.coord
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    other = level_cells.get((x + dx, y + dy, z + dz))
                    if other is not None:
                        out.append(other)
        return out

    def interaction_list(self, cell: Cell) -> list[Cell]:
        """M2L sources: children of the parent's neighbors (and the
        parent's other children's... no — strictly: cells at the same
        level whose parents neighbor this cell's parent) that are not
        adjacent to this cell. At most 189 cells in 3D."""
        if cell.parent is None:
            return []
        near = {c.key for c in self.neighbors(cell)}
        near.add(cell.key)
        out: list[Cell] = []
        for uncle in [cell.parent] + self.neighbors(cell.parent):
            for cousin in uncle.children:
                if cousin.key not in near:
                    out.append(cousin)
        out.sort(key=lambda c: c.coord)
        return out
