"""Flop-count models of the FMM operators.

``n_terms`` is the number of expansion coefficients (order p spherical
harmonics expansion has (p+1)² terms). The constants are rough per-term
operation counts; only the relative weights matter for scheduling.
"""

from __future__ import annotations

from repro.utils.validation import check_positive


def expansion_terms(order: int) -> int:
    """Number of expansion coefficients for order ``order``."""
    check_positive("order", order)
    return (order + 1) ** 2


def p2m_flops(n_particles: int, n_terms: int) -> float:
    """Particle-to-multipole: every particle contributes to every term."""
    return 12.0 * n_particles * n_terms


def m2m_flops(n_children: int, n_terms: int) -> float:
    """Multipole-to-multipole translation from each child."""
    return 6.0 * n_children * n_terms**2


def m2l_flops(n_sources: int, n_terms: int) -> float:
    """Multipole-to-local for the whole interaction list of one target."""
    return 8.0 * n_sources * n_terms**2


def l2l_flops(n_terms: int) -> float:
    """Local-to-local translation from the parent."""
    return 6.0 * n_terms**2


def l2p_flops(n_particles: int, n_terms: int) -> float:
    """Local-to-particle evaluation."""
    return 12.0 * n_particles * n_terms


def p2p_flops(n_targets: int, n_sources_total: int) -> float:
    """Direct particle-particle interactions (targets x all sources)."""
    return 22.0 * n_targets * (n_targets + n_sources_total)
