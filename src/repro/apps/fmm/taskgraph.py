"""The task-based FMM program generator (TBFMM analog).

One FMM pass over an adaptive octree:

1. **P2M** per leaf — particles to multipole;
2. **M2M** per internal cell, bottom-up — child multipoles to parent;
3. **M2L** per cell (levels >= 2) — one task per target cell reading its
   whole interaction list (TBFMM groups M2L by target the same way);
4. **L2L** per cell, top-down — parent local to child local;
5. **L2P** per leaf — local expansion to particle forces;
6. **P2P** per leaf — direct interactions with the adjacent leaves.

L2P and P2P accumulate forces into the same per-leaf force handle using
``COMMUTE`` accesses (mutually reorderable, as in TBFMM/StarPU), which
makes the DAG wide and disconnected — the paper's Section VI-B notes the
critical path is very short, so scheduling quality is all about workload
balance and affinity.

Tiny tree kernels (M2M/L2L) are CPU-favored; P2P and M2L have good GPU
implementations — per-task granularity varies with leaf occupancy, the
heterogeneity that per-task scores exploit better than per-type buckets.
"""

from __future__ import annotations

import numpy as np

from repro.apps.fmm import kernels
from repro.apps.fmm.octree import Cell, Octree
from repro.apps.fmm.particles import generate_particles, leaf_occupancy
from repro.runtime.data import DataHandle
from repro.runtime.stf import Program, TaskFlow
from repro.runtime.task import AccessMode

_BOTH = ("cpu", "cuda")
_BYTES_PER_PARTICLE = 32  # x, y, z, q doubles
_BYTES_PER_TERM = 16  # complex double coefficients


def fmm_program(
    n_particles: int = 10_000,
    height: int = 4,
    *,
    order: int = 5,
    distribution: str = "uniform",
    seed: int | np.random.Generator | None = None,
) -> Program:
    """Build one FMM pass as a :class:`Program`.

    The paper's Fig. 6 runs 10⁶ particles with a height-6 tree on real
    hardware; defaults here are simulation-sized (the DAG shape — wide,
    disconnected, mixed granularity — is preserved at any size).
    """
    points = generate_particles(n_particles, distribution, seed)
    occupancy = leaf_occupancy(points, height)
    tree = Octree(height, occupancy)
    return fmm_program_from_tree(tree, order=order)


def fmm_program_from_tree(tree: Octree, *, order: int = 5) -> Program:
    """Build the FMM task graph over an existing octree."""
    n_terms = kernels.expansion_terms(order)
    flow = TaskFlow(f"fmm-h{tree.height}-p{order}")
    R, W, RW, C = AccessMode.R, AccessMode.W, AccessMode.RW, AccessMode.COMMUTE

    expansion_bytes = n_terms * _BYTES_PER_TERM
    multipole: dict[tuple[int, tuple[int, int, int]], DataHandle] = {}
    local: dict[tuple[int, tuple[int, int, int]], DataHandle] = {}
    positions: dict[tuple[int, tuple[int, int, int]], DataHandle] = {}
    forces: dict[tuple[int, tuple[int, int, int]], DataHandle] = {}

    def mult(cell: Cell) -> DataHandle:
        handle = multipole.get(cell.key)
        if handle is None:
            handle = flow.data(expansion_bytes, label=f"M{cell.level}{cell.coord}")
            multipole[cell.key] = handle
        return handle

    def loc(cell: Cell) -> DataHandle:
        handle = local.get(cell.key)
        if handle is None:
            handle = flow.data(expansion_bytes, label=f"L{cell.level}{cell.coord}")
            local[cell.key] = handle
        return handle

    for leaf in tree.leaves():
        positions[leaf.key] = flow.data(
            leaf.n_particles * _BYTES_PER_PARTICLE, label=f"X{leaf.coord}"
        )
        forces[leaf.key] = flow.data(
            leaf.n_particles * _BYTES_PER_PARTICLE, label=f"F{leaf.coord}"
        )

    # 1. P2M
    for leaf in tree.leaves():
        flow.submit(
            "p2m",
            [(positions[leaf.key], R), (mult(leaf), W)],
            flops=kernels.p2m_flops(leaf.n_particles, n_terms),
            implementations=_BOTH,
            tag=("p2m", leaf.key),
        )

    # 2. M2M bottom-up
    for level in range(tree.leaf_level - 1, -1, -1):
        for cell in tree.cells_at(level):
            if cell.is_leaf:
                continue
            accesses = [(mult(child), R) for child in cell.children]
            accesses.append((mult(cell), W))
            flow.submit(
                "m2m",
                accesses,
                flops=kernels.m2m_flops(len(cell.children), n_terms),
                implementations=_BOTH,
                tag=("m2m", cell.key),
            )

    # 3. M2L (levels >= 2: closer levels have no well-separated cells)
    for level in range(2, tree.height):
        for cell in tree.cells_at(level):
            sources = tree.interaction_list(cell)
            if not sources:
                continue
            accesses = [(mult(src), R) for src in sources]
            accesses.append((loc(cell), W))
            flow.submit(
                "m2l",
                accesses,
                flops=kernels.m2l_flops(len(sources), n_terms),
                implementations=_BOTH,
                tag=("m2l", cell.key),
            )

    # 4. L2L top-down
    for level in range(3, tree.height):
        for cell in tree.cells_at(level):
            parent = cell.parent
            if parent is None or parent.key not in local:
                continue
            flow.submit(
                "l2l",
                [(loc(parent), R), (loc(cell), RW)],
                flops=kernels.l2l_flops(n_terms),
                implementations=_BOTH,
                tag=("l2l", cell.key),
            )

    # 5. L2P
    for leaf in tree.leaves():
        if leaf.key not in local:
            continue
        flow.submit(
            "l2p",
            [(loc(leaf), R), (positions[leaf.key], R), (forces[leaf.key], C)],
            flops=kernels.l2p_flops(leaf.n_particles, n_terms),
            implementations=_BOTH,
            tag=("l2p", leaf.key),
        )

    # 6. P2P (direct near-field)
    for leaf in tree.leaves():
        neighbor_leaves = tree.neighbors(leaf)
        accesses = [(positions[leaf.key], R)]
        n_sources = 0
        for other in neighbor_leaves:
            accesses.append((positions[other.key], R))
            n_sources += other.n_particles
        accesses.append((forces[leaf.key], C))
        flow.submit(
            "p2p",
            accesses,
            flops=kernels.p2p_flops(leaf.n_particles, n_sources),
            implementations=_BOTH,
            tag=("p2p", leaf.key),
        )

    return flow.program()
