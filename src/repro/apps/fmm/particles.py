"""Particle distributions for the FMM workload.

TBFMM's evaluation handles diverse particle distributions; the scheduler
stress comes from *non-uniform* leaf occupancy (task granularity varies
per leaf). Three classic distributions are provided:

* ``uniform`` — homogeneous cube, near-equal leaf occupancy;
* ``ellipsoid`` — particles on an ellipsoid surface: most leaves empty,
  occupied leaves vary wildly (the irregular case);
* ``plummer`` — a centrally-clustered astrophysical distribution.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError, check_positive

DISTRIBUTIONS = ("uniform", "ellipsoid", "plummer")


def generate_particles(
    n: int,
    distribution: str = "uniform",
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Generate ``n`` particle positions in the unit cube, shape (n, 3)."""
    check_positive("n", n)
    rng = make_rng(seed)
    if distribution == "uniform":
        pts = rng.random((n, 3))
    elif distribution == "ellipsoid":
        # Points on an axis-aligned ellipsoid surface, jittered slightly.
        theta = rng.random(n) * 2.0 * np.pi
        phi = np.arccos(2.0 * rng.random(n) - 1.0)
        radii = np.array([0.45, 0.25, 0.12])
        pts = np.empty((n, 3))
        pts[:, 0] = radii[0] * np.sin(phi) * np.cos(theta)
        pts[:, 1] = radii[1] * np.sin(phi) * np.sin(theta)
        pts[:, 2] = radii[2] * np.cos(phi)
        pts += rng.normal(0.0, 0.005, (n, 3))
        pts += 0.5  # center in the unit cube
        np.clip(pts, 0.0, np.nextafter(1.0, 0.0), out=pts)
    elif distribution == "plummer":
        # Plummer sphere radii, truncated to fit the cube.
        u = rng.random(n)
        r = 0.2 / np.sqrt(np.maximum(u ** (-2.0 / 3.0) - 1.0, 1e-9))
        r = np.minimum(r, 0.49)
        theta = rng.random(n) * 2.0 * np.pi
        phi = np.arccos(2.0 * rng.random(n) - 1.0)
        pts = np.empty((n, 3))
        pts[:, 0] = r * np.sin(phi) * np.cos(theta)
        pts[:, 1] = r * np.sin(phi) * np.sin(theta)
        pts[:, 2] = r * np.cos(phi)
        pts += 0.5
        np.clip(pts, 0.0, np.nextafter(1.0, 0.0), out=pts)
    else:
        raise ValidationError(
            f"unknown distribution {distribution!r}; pick one of {DISTRIBUTIONS}"
        )
    return pts


def leaf_occupancy(points: np.ndarray, height: int) -> dict[tuple[int, int, int], int]:
    """Count particles per leaf cell of an octree of ``height`` levels.

    Leaves live at level ``height - 1`` with ``2**(height-1)`` cells per
    dimension. Returns only non-empty leaves (the octree is adaptive).
    """
    check_positive("height", height)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValidationError(f"points must have shape (n, 3), got {points.shape}")
    side = 2 ** (height - 1)
    coords = np.minimum((points * side).astype(np.int64), side - 1)
    occupancy: dict[tuple[int, int, int], int] = {}
    keys, counts = np.unique(coords, axis=0, return_counts=True)
    for key, count in zip(keys, counts):
        occupancy[(int(key[0]), int(key[1]), int(key[2]))] = int(count)
    return occupancy
