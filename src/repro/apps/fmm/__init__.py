"""Task-based Fast Multipole Method generators (the TBFMM analog)."""

from repro.apps.fmm.particles import (
    generate_particles,
    leaf_occupancy,
    DISTRIBUTIONS,
)
from repro.apps.fmm.octree import Octree, Cell
from repro.apps.fmm.taskgraph import fmm_program, fmm_program_from_tree
from repro.apps.fmm import kernels

__all__ = [
    "generate_particles",
    "leaf_occupancy",
    "DISTRIBUTIONS",
    "Octree",
    "Cell",
    "fmm_program",
    "fmm_program_from_tree",
    "kernels",
]
