"""The structured event bus and the per-run observability façade.

:class:`EventBus` is a synchronous publish/subscribe dispatcher keyed by
event kind. :class:`Observability` bundles one bus, one
:class:`~repro.obs.metrics.MetricsRegistry` and an in-memory event sink;
the engine holds ``None`` instead of an instance when observability is
off, so the disabled path costs a single identity check per emit point
and the simulation stays bit-identical to a build without the subsystem.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.obs.events import Event, RecordLevel
from repro.obs.metrics import MetricsCollector, MetricsRegistry, MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.platform_config import Platform

Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous pub/sub: subscribers run inline, in subscription order."""

    def __init__(self) -> None:
        self._global: list[Subscriber] = []
        self._by_kind: dict[str, list[Subscriber]] = {}

    def subscribe(self, fn: Subscriber, kinds: Iterable[str] | None = None) -> None:
        """Register ``fn`` for every event, or only for ``kinds``."""
        if kinds is None:
            self._global.append(fn)
            return
        for kind in kinds:
            self._by_kind.setdefault(kind, []).append(fn)

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove every registration of ``fn`` (no-op when absent)."""
        if fn in self._global:
            self._global.remove(fn)
        for subs in self._by_kind.values():
            if fn in subs:
                subs.remove(fn)

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to kind-specific then global subscribers."""
        for fn in self._by_kind.get(event.kind, ()):
            fn(event)
        for fn in self._global:
            fn(event)


class Observability:
    """One run's worth of observability: bus + metrics + event sink.

    Parameters
    ----------
    level:
        A :class:`~repro.obs.events.RecordLevel` (or its name). ``OFF``
        is legal but pointless — the engine simply keeps ``None``.
    keep_events:
        Retain every emitted event in :attr:`events` (needed by the
        exporters; turn off for metrics-only monitoring of huge runs).
    """

    def __init__(
        self,
        level: RecordLevel | str | int = RecordLevel.TASKS,
        *,
        keep_events: bool = True,
    ) -> None:
        self.level = RecordLevel.parse(level)
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        self.events: list[Event] = []
        self.keep_events = keep_events
        self._collector = MetricsCollector(self.metrics)
        self.bus.subscribe(self._collector.on_event)
        if keep_events:
            self.bus.subscribe(self.events.append)

    # -- level predicates ----------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether anything at all is recorded."""
        return self.level >= RecordLevel.TASKS

    @property
    def decisions(self) -> bool:
        """Whether scheduler decision provenance is recorded."""
        return self.level >= RecordLevel.DECISIONS

    # -- lifecycle -----------------------------------------------------------

    def begin_run(self, platform: "Platform") -> None:
        """Reset per-run state and bind the platform topology."""
        self.events.clear()
        self.metrics.reset()
        self._collector.bind_platform(platform)

    def emit(self, event: Event) -> None:
        """Publish one event on the bus."""
        self.bus.emit(event)

    def snapshot(self, makespan: float) -> MetricsSnapshot:
        """Freeze the metrics, deriving idle fractions from the stream."""
        derived = {"makespan_us": makespan}
        for arch, frac in sorted(self._collector.idle_fractions(makespan).items()):
            derived[f"idle_frac.{arch}"] = frac
        return self.metrics.snapshot(t_end=makespan, derived=derived)
