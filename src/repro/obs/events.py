"""Structured event taxonomy of the observability subsystem.

Every noteworthy runtime occurrence — task lifecycle transitions, data
transfers with their real source node, fault handling, and the
*decision-provenance* records behind scheduler pops and evictions — is a
small frozen dataclass with a stable ``kind`` string. Events serialize
to flat dicts (:meth:`Event.to_dict`) and back
(:func:`event_from_dict`), which is what the JSONL exporter/importer in
:mod:`repro.obs.export` round-trips.

The :class:`RecordLevel` flag gates what the engine publishes:

* ``off`` — observability entirely disabled (the default; the simulation
  is bit-identical to a build without the subsystem);
* ``tasks`` — task lifecycle (submit/ready/pop/stage/start/end),
  per-link transfers, and fault/retry events;
* ``decisions`` — ``tasks`` plus one :class:`DecisionEvent` per
  scheduler pop, skip, eviction or forced pop;
* ``all`` — everything (currently a synonym for ``decisions``, reserved
  for debug-grade firehoses).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Any, ClassVar

from repro.utils.validation import ValidationError


class RecordLevel(enum.IntEnum):
    """How much the engine records; ordered so ``>=`` comparisons work."""

    OFF = 0
    TASKS = 1
    DECISIONS = 2
    ALL = 3

    @classmethod
    def parse(cls, value: "RecordLevel | str | int") -> "RecordLevel":
        """Coerce a CLI/API value (name, int or member) into a level."""
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            return cls(value)
        if isinstance(value, str):
            try:
                return cls[value.strip().upper()]
            except KeyError:
                raise ValidationError(
                    f"unknown record level {value!r}; expected one of "
                    f"{[lv.name.lower() for lv in cls]}"
                ) from None
        raise ValidationError(f"cannot parse record level from {value!r}")


@dataclass(frozen=True, slots=True)
class Event:
    """Base event: everything carries the virtual emission time ``t`` (µs)."""

    kind: ClassVar[str] = "event"

    t: float

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-ready mapping, ``kind`` included."""
        out: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out


@dataclass(frozen=True, slots=True)
class TaskSubmit(Event):
    """The STF main thread submitted a task (it entered the engine's view)."""

    kind: ClassVar[str] = "task_submit"

    tid: int
    type_name: str


@dataclass(frozen=True, slots=True)
class JobSubmit(Event):
    """A merged stream's job started submitting (its first task was
    revealed). ``t`` is the reveal time — equal to ``arrival`` unless the
    submission window throttled the STF thread past the job's arrival."""

    kind: ClassVar[str] = "job_submit"

    jid: int
    tenant: str
    name: str
    n_tasks: int
    arrival: float


@dataclass(frozen=True, slots=True)
class JobDone(Event):
    """The last task of a merged stream's job completed.

    ``latency`` is ``t - arrival``: the job's end-to-end response time
    including any queueing behind other tenants' work.
    """

    kind: ClassVar[str] = "job_done"

    jid: int
    tenant: str
    name: str
    n_tasks: int
    arrival: float
    latency: float


@dataclass(frozen=True, slots=True)
class JobAdmitted(Event):
    """The control plane accepted a job: its estimated work was charged
    to the tenant's token bucket and the global in-flight budget."""

    kind: ClassVar[str] = "job_admitted"

    jid: int
    tenant: str
    qos: str
    cost_us: float
    n_delays: int = 0


@dataclass(frozen=True, slots=True)
class JobDelayed(Event):
    """The control plane pushed a job back: its release times were bumped
    to ``retry_at`` (bounded exponential backoff, attempt ``attempt``)."""

    kind: ClassVar[str] = "job_delayed"

    jid: int
    tenant: str
    qos: str
    retry_at: float
    attempt: int
    reason: str = ""


@dataclass(frozen=True, slots=True)
class JobRejected(Event):
    """The control plane shed a job: every task was cancelled before any
    ran. ``reason`` names the exhausted resource (quota / budget)."""

    kind: ClassVar[str] = "job_rejected"

    jid: int
    tenant: str
    qos: str
    reason: str = ""


@dataclass(frozen=True, slots=True)
class JobEvicted(Event):
    """An admitted job was preempted under overload: its unstarted tasks
    (``n_cancelled``) were cancelled; already-running work drains."""

    kind: ClassVar[str] = "job_evicted"

    jid: int
    tenant: str
    qos: str
    n_cancelled: int


@dataclass(frozen=True, slots=True)
class TaskReady(Event):
    """A task's last dependency completed; it was pushed to the scheduler."""

    kind: ClassVar[str] = "task_ready"

    tid: int
    type_name: str


@dataclass(frozen=True, slots=True)
class BatchScheduled(Event):
    """Batch-mode scheduling handed a coalesced batch to the scheduler.

    ``n`` is the batch size (ready tasks pushed in one scheduler
    invocation); ``trigger`` records what fired the flush: ``"step"``
    (the ``batch_step`` boundary), ``"drain"`` (the adaptive
    drain-on-idle trigger: a worker went hungry), or ``"rescue"`` (the
    liveness rescue flushed before force-popping).
    """

    kind: ClassVar[str] = "batch_scheduled"

    n: int
    trigger: str = "step"


@dataclass(frozen=True, slots=True)
class PriorityInversion(Event):
    """A task waited on a resource held by a lower-priority task.

    Emitted by the engine's resource protocol
    (:mod:`repro.runtime.resources`) when task ``tid`` (priority
    ``blocked_prio``) had its start delayed by ``wait_us`` behind
    ``holder_tid`` (priority ``holder_prio`` < ``blocked_prio``) holding
    ``resource``. Under ``mode="ceiling"`` the wait may come from the
    ceiling's avoidance blocking rather than direct contention.
    """

    kind: ClassVar[str] = "priority_inversion"

    tid: int
    resource: str
    holder_tid: int
    blocked_prio: int
    holder_prio: int
    wait_us: float


@dataclass(frozen=True, slots=True)
class PowerCapThrottled(Event):
    """A node power cap intervened in an execution start.

    Emitted by the engine's power subsystem (:mod:`repro.runtime.power`)
    when task ``tid`` on worker ``wid`` could not execute in the
    preferred (fastest) power state under node ``node``'s busy-draw cap
    of ``cap_watts``: it ran in ``state`` instead (a leaner DVFS point)
    and/or its start was pushed back by ``delay_us`` until enough
    reserved draw was released.
    """

    kind: ClassVar[str] = "power_cap_throttled"

    tid: int
    wid: int
    node: int
    state: str
    cap_watts: float
    delay_us: float


@dataclass(frozen=True, slots=True)
class TaskPop(Event):
    """The scheduler handed a task to a worker (``staged`` = lookahead pop)."""

    kind: ClassVar[str] = "task_pop"

    tid: int
    wid: int
    staged: bool = False
    forced: bool = False


@dataclass(frozen=True, slots=True)
class TaskStage(Event):
    """A popped task's input transfers started ahead of execution."""

    kind: ClassVar[str] = "task_stage"

    tid: int
    wid: int
    arrival: float = 0.0


@dataclass(frozen=True, slots=True)
class TaskStart(Event):
    """A worker began executing a task (``start`` >= ``t`` when data stalls)."""

    kind: ClassVar[str] = "task_start"

    tid: int
    type_name: str
    wid: int
    node: int
    start: float


@dataclass(frozen=True, slots=True)
class TaskEnd(Event):
    """A task completed; carries the full execution record."""

    kind: ClassVar[str] = "task_end"

    tid: int
    type_name: str
    wid: int
    node: int
    pop_time: float
    start: float
    end: float


@dataclass(frozen=True, slots=True)
class TaskFault(Event):
    """An injected transient failure aborted a running attempt."""

    kind: ClassVar[str] = "task_fault"

    tid: int
    wid: int
    wasted_us: float
    attempt: int


@dataclass(frozen=True, slots=True)
class TaskRetryScheduled(Event):
    """A failed task's backoff expired and it re-entered the scheduler."""

    kind: ClassVar[str] = "task_retry"

    tid: int
    attempt: int


@dataclass(frozen=True, slots=True)
class WorkerDeath(Event):
    """An injected fail-stop failure removed a worker for good."""

    kind: ClassVar[str] = "worker_death"

    wid: int
    name: str
    n_recovered: int = 0


@dataclass(frozen=True, slots=True)
class TransferEvent(Event):
    """One committed link reservation with its *real* endpoints.

    Relayed GPU-to-GPU copies produce one event per traversed link, so
    ``src``/``dst`` always name the physical link the bytes crossed —
    the provenance the old ``src=-1`` trace records lacked.
    """

    kind: ClassVar[str] = "transfer"

    hid: int
    src: int
    dst: int
    nbytes: int
    start: float
    end: float
    prefetch: bool = False


@dataclass(frozen=True, slots=True)
class DecisionEvent(Event):
    """Scheduler decision provenance: *why* a task was popped or evicted.

    ``action`` is one of ``pop`` (task handed to the worker), ``skip``
    (pop condition failed, entry left in the heap), ``evict`` (pop
    condition failed, entry removed — Alg. 2's literal eviction) or
    ``force-pop`` (liveness escape hatch). Score fields are ``None``
    when the policy does not compute them; ``candidates`` is the ε/top-n
    window the locality refinement considered.
    """

    kind: ClassVar[str] = "decision"

    scheduler: str
    action: str
    tid: int
    type_name: str = ""
    wid: int = -1
    node: int = -1
    gain: float | None = None
    nod: float | None = None
    ls_sdh2: float | None = None
    locality_bytes: float | None = None
    pop_condition: bool | None = None
    brw: float | None = None
    delta: float | None = None
    candidates: tuple[int, ...] = ()
    reason: str = ""


@dataclass(frozen=True, slots=True)
class InvariantViolation(Event):
    """The opt-in invariant checker caught a contract violation.

    Emitted just before :class:`~repro.utils.validation.InvariantError`
    is raised, so a recorded stream ends with the exact violation(s) —
    ``check`` names the invariant family (``msi``, ``link``,
    ``task_state``, ``conservation``, ``clock``, ``scheduler``) and
    ``detail`` the specific inconsistency.
    """

    kind: ClassVar[str] = "invariant_violation"

    check: str
    detail: str


@dataclass(frozen=True, slots=True)
class JobPlaced(Event):
    """The cluster's global scheduler placed a job onto a node.

    Placement provenance: ``policy`` names the placement policy,
    ``reason`` a human-readable account of why this node won, and
    ``scores`` the policy's per-node cost vector (aligned with the
    cluster's node order; empty for policies that do not score).
    """

    kind: ClassVar[str] = "job_placed"

    jid: int
    tenant: str
    node: str
    policy: str
    est_work_us: float = 0.0
    reason: str = ""
    scores: tuple[float, ...] = ()


@dataclass(frozen=True, slots=True)
class NodeLoad(Event):
    """Snapshot of one cluster node's projected load at a placement
    decision: jobs placed so far, estimated backlog (µs of queued work
    per worker) and the placement-time estimate of when the node's
    queue drains."""

    kind: ClassVar[str] = "node_load"

    node: str
    n_jobs: int
    backlog_us: float
    avail_until: float


#: Registry used by the JSONL importer; every concrete event kind.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        TaskSubmit,
        JobSubmit,
        JobDone,
        JobAdmitted,
        JobDelayed,
        JobRejected,
        JobEvicted,
        JobPlaced,
        NodeLoad,
        TaskReady,
        BatchScheduled,
        PriorityInversion,
        PowerCapThrottled,
        TaskPop,
        TaskStage,
        TaskStart,
        TaskEnd,
        TaskFault,
        TaskRetryScheduled,
        WorkerDeath,
        TransferEvent,
        DecisionEvent,
        InvariantViolation,
    )
}


def event_from_dict(data: dict[str, Any]) -> Event:
    """Rebuild an event from its :meth:`Event.to_dict` mapping."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValidationError(f"unknown event kind {kind!r}")
    known = {f.name for f in fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ValidationError(
            f"event kind {kind!r} does not accept fields {sorted(unknown)}"
        )
    coerced = {
        name: tuple(value) if isinstance(value, list) else value
        for name, value in payload.items()
    }
    return cls(**coerced)
