"""repro.obs — the observability subsystem.

A structured, zero-cost-when-disabled instrumentation layer over the
runtime engine and every scheduler:

* :mod:`repro.obs.events` — the event taxonomy (task lifecycle,
  transfers with real source nodes, faults, scheduler decision
  provenance) and the :class:`~repro.obs.events.RecordLevel` flag;
* :mod:`repro.obs.bus` — the publish/subscribe
  :class:`~repro.obs.bus.EventBus` and the per-run
  :class:`~repro.obs.bus.Observability` façade the engine binds;
* :mod:`repro.obs.metrics` — counters, virtual-time-weighted gauges and
  the snapshot exposed on :class:`~repro.runtime.engine.SimResult`;
* :mod:`repro.obs.export` — JSONL and Chrome-trace/Perfetto exporters
  plus event-stream analyses (rebuilt traces, idle fractions, decision
  counts, critical-path summary reports).

Quick tour::

    from repro.runtime.engine import Simulator
    from repro.obs import events_to_chrome

    sim = Simulator(platform, scheduler, perfmodel,
                    record_level="decisions")
    res = sim.run(program)
    open("trace.json", "w").write(
        events_to_chrome(res.events, workers=platform.workers,
                         metrics=sim.obs.metrics))
"""

from repro.obs.bus import EventBus, Observability
from repro.obs.events import (
    DecisionEvent,
    Event,
    RecordLevel,
    TaskEnd,
    TaskFault,
    TaskPop,
    TaskReady,
    TaskRetryScheduled,
    TaskStage,
    TaskStart,
    TaskSubmit,
    TransferEvent,
    WorkerDeath,
    event_from_dict,
)
from repro.obs.export import (
    decision_counts,
    events_from_jsonl,
    events_to_chrome,
    events_to_jsonl,
    idle_fractions_from_events,
    summary_report,
    trace_from_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsCollector,
    MetricsRegistry,
    MetricsSnapshot,
)

__all__ = [
    "Event",
    "RecordLevel",
    "TaskSubmit",
    "TaskReady",
    "TaskPop",
    "TaskStage",
    "TaskStart",
    "TaskEnd",
    "TaskFault",
    "TaskRetryScheduled",
    "WorkerDeath",
    "TransferEvent",
    "DecisionEvent",
    "event_from_dict",
    "EventBus",
    "Observability",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "MetricsCollector",
    "MetricsSnapshot",
    "events_to_jsonl",
    "events_from_jsonl",
    "events_to_chrome",
    "trace_from_events",
    "idle_fractions_from_events",
    "decision_counts",
    "summary_report",
]
