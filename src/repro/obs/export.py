"""Exporters: JSONL, Chrome-trace/Perfetto JSON, and summary reports.

The JSONL format is the subsystem's interchange format — one event dict
per line, round-trippable through :func:`events_from_jsonl`. The Chrome
trace format loads directly into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: one track per worker, one per interconnect link,
counter tracks for every retained gauge, and instant markers for
scheduler decisions and worker deaths.

Everything here consumes the *event stream only* (plus optional
worker/task metadata for labels and DAG-aware critical paths), so any
analysis can be regenerated offline from a dumped ``events.jsonl``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.obs.events import (
    DecisionEvent,
    Event,
    TaskEnd,
    TransferEvent,
    WorkerDeath,
    event_from_dict,
)
from repro.runtime.trace import TaskRecord, Trace
from repro.runtime.worker import Worker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime.task import Task


# -- JSONL -------------------------------------------------------------------


def events_to_jsonl(events: Iterable[Event]) -> str:
    """Serialize events to newline-delimited JSON (one dict per line)."""
    lines = [json.dumps(ev.to_dict(), sort_keys=True) for ev in events]
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> list[Event]:
    """Parse a JSONL dump back into event objects (inverse of export)."""
    events: list[Event] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events


# -- Chrome trace / Perfetto --------------------------------------------------

_PID_WORKERS = 0
_PID_LINKS = 1
_PID_COUNTERS = 2


def events_to_chrome(
    events: Sequence[Event],
    *,
    workers: Sequence[Worker] | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> str:
    """Serialize an event stream to Chrome-trace JSON.

    Tracks: one per worker (task executions and residual data waits,
    decision/death instants), one per physical link (transfers, prefetch
    traffic flagged in ``args``), and one counter track per gauge of the
    optional ``metrics`` registry (heap depths and friends).
    """
    out: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID_WORKERS,
            "tid": 0,
            "args": {"name": "workers"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID_LINKS,
            "tid": 0,
            "args": {"name": "links"},
        },
    ]
    worker_names = {w.wid: f"{w.name} ({w.arch})" for w in workers or ()}
    seen_wids = {
        ev.wid  # type: ignore[attr-defined]
        for ev in events
        if isinstance(ev, (TaskEnd, DecisionEvent, WorkerDeath)) and ev.wid >= 0  # type: ignore[attr-defined]
    }
    for wid in sorted(set(worker_names) | seen_wids):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID_WORKERS,
                "tid": wid,
                "args": {"name": worker_names.get(wid, f"worker{wid}")},
            }
        )
    link_tids: dict[tuple[int, int], int] = {}
    for ev in events:
        if isinstance(ev, TransferEvent):
            link_tids.setdefault((ev.src, ev.dst), len(link_tids))
    for (src, dst), tid in sorted(link_tids.items(), key=lambda kv: kv[1]):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID_LINKS,
                "tid": tid,
                "args": {"name": f"link {src}->{dst}"},
            }
        )

    for ev in events:
        if isinstance(ev, TaskEnd):
            if ev.start - ev.pop_time > 0:
                out.append(
                    {
                        "name": "data wait",
                        "cat": "transfer",
                        "ph": "X",
                        "pid": _PID_WORKERS,
                        "tid": ev.wid,
                        "ts": ev.pop_time,
                        "dur": ev.start - ev.pop_time,
                        "args": {"task": ev.tid},
                    }
                )
            out.append(
                {
                    "name": ev.type_name,
                    "cat": "task",
                    "ph": "X",
                    "pid": _PID_WORKERS,
                    "tid": ev.wid,
                    "ts": ev.start,
                    "dur": ev.end - ev.start,
                    "args": {"task": ev.tid, "node": ev.node},
                }
            )
        elif isinstance(ev, TransferEvent):
            out.append(
                {
                    "name": f"h{ev.hid}",
                    "cat": "transfer",
                    "ph": "X",
                    "pid": _PID_LINKS,
                    "tid": link_tids[(ev.src, ev.dst)],
                    "ts": ev.start,
                    "dur": max(ev.end - ev.start, 0.001),
                    "args": {"bytes": ev.nbytes, "prefetch": ev.prefetch},
                }
            )
        elif isinstance(ev, DecisionEvent):
            args = {
                k: v
                for k, v in ev.to_dict().items()
                if k not in ("kind", "t", "wid") and v not in (None, (), [], "")
            }
            out.append(
                {
                    "name": f"{ev.scheduler}:{ev.action}",
                    "cat": "decision",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID_WORKERS,
                    "tid": max(ev.wid, 0),
                    "ts": ev.t,
                    "args": args,
                }
            )
        elif isinstance(ev, WorkerDeath):
            out.append(
                {
                    "name": f"death:{ev.name}",
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID_WORKERS,
                    "tid": ev.wid,
                    "ts": ev.t,
                    "args": {"recovered": ev.n_recovered},
                }
            )
    if metrics is not None:
        for name, gauge in sorted(metrics.gauges().items()):
            for t, value in gauge.samples:
                out.append(
                    {
                        "name": name,
                        "ph": "C",
                        "pid": _PID_COUNTERS,
                        "ts": t,
                        "args": {"value": value},
                    }
                )
    return json.dumps({"traceEvents": out, "displayTimeUnit": "ms"})


# -- event-stream analysis ----------------------------------------------------


def trace_from_events(events: Sequence[Event], workers: Sequence[Worker]) -> Trace:
    """Rebuild a :class:`~repro.runtime.trace.Trace` from an event stream.

    Only ``task_end`` and ``transfer`` events are needed, so a JSONL dump
    is enough to regenerate every Trace analysis (Gantt, idle fractions,
    practical critical path) without re-running the simulation.
    """
    trace = Trace(list(workers))
    for ev in events:
        if isinstance(ev, TaskEnd):
            rec = TaskRecord(
                ev.tid, ev.type_name, ev.wid, ev.node, ev.pop_time, ev.start, ev.end
            )
            trace.task_records.append(rec)
            trace._by_tid[ev.tid] = rec
        elif isinstance(ev, TransferEvent):
            trace.record_transfer(ev.hid, ev.src, ev.dst, ev.nbytes, ev.start, ev.end)
    return trace


def idle_fractions_from_events(
    events: Sequence[Event], workers: Sequence[Worker]
) -> dict[str, float]:
    """Per-architecture idle fractions, the engine's formula, from events."""
    busy: dict[int, float] = {w.wid: 0.0 for w in workers}
    makespan = 0.0
    for ev in events:
        if isinstance(ev, TaskEnd):
            busy[ev.wid] = busy.get(ev.wid, 0.0) + ev.end - ev.pop_time
            makespan = max(makespan, ev.end)
    fracs: dict[str, float] = {}
    for arch in sorted({w.arch for w in workers}):
        wids = [w.wid for w in workers if w.arch == arch]
        if not wids or makespan <= 0:
            fracs[arch] = 0.0
            continue
        per = [max(0.0, 1.0 - busy[wid] / makespan) for wid in wids]
        fracs[arch] = sum(per) / len(per)
    return fracs


def decision_counts(events: Sequence[Event]) -> dict[str, int]:
    """Decision events tallied by action (``pop``/``skip``/``evict``/...)."""
    counts: dict[str, int] = {}
    for ev in events:
        if isinstance(ev, DecisionEvent):
            counts[ev.action] = counts.get(ev.action, 0) + 1
    return counts


def summary_report(
    events: Sequence[Event],
    *,
    workers: Sequence[Worker],
    tasks: "Sequence[Task] | None" = None,
    top_types: int = 6,
) -> str:
    """Human-readable run summary with the critical path highlighted.

    Sections: headline (makespan, tasks, transferred bytes), per-worker
    busy/wait/idle table, the heaviest task types, decision counts, and
    — when the task DAG is supplied — the practical critical path with
    each link's share of the makespan.
    """
    trace = trace_from_events(events, workers)
    span = trace.makespan()
    n_tasks = len(trace.task_records)
    moved = sum(r.nbytes for r in trace.transfer_records)
    lines = [
        f"makespan {span:.1f} us   tasks {n_tasks}   "
        f"transferred {moved / 2**20:.1f} MiB over {len(trace.transfer_records)} transfers"
    ]
    lines.append("")
    lines.append(f"{'worker':>10} {'arch':>6} {'tasks':>6} {'busy%':>7} {'wait%':>7} {'idle%':>7}")
    for row in trace.per_worker_summary():
        busy_pct = 100.0 * float(row["busy_us"]) / span if span > 0 else 0.0
        wait_pct = 100.0 * float(row["wait_us"]) / span if span > 0 else 0.0
        lines.append(
            f"{row['worker']:>10} {row['arch']:>6} {row['n_tasks']:>6} "
            f"{busy_pct:>6.1f}% {wait_pct:>6.1f}% {float(row['idle_frac']) * 100:>6.1f}%"
        )
    exec_by_type: dict[str, float] = {}
    for rec in trace.task_records:
        exec_by_type[rec.type_name] = exec_by_type.get(rec.type_name, 0.0) + rec.exec_time
    if exec_by_type:
        lines.append("")
        lines.append("heaviest task types (total exec time):")
        ranked = sorted(exec_by_type.items(), key=lambda kv: -kv[1])[:top_types]
        for type_name, total in ranked:
            lines.append(f"  {type_name:>12} {total:>12.1f} us")
    counts = decision_counts(events)
    if counts:
        lines.append("")
        lines.append(
            "scheduler decisions: "
            + ", ".join(f"{action}={n}" for action, n in sorted(counts.items()))
        )
    if tasks is not None and trace.task_records:
        chain = trace.practical_critical_path(list(tasks))
        on_chain = sum(r.exec_time for r in chain)
        lines.append("")
        lines.append(
            f"practical critical path: {len(chain)} tasks, "
            f"{100.0 * on_chain / span if span > 0 else 0.0:.1f}% of the makespan executing"
        )
        for rec in chain:
            lines.append(
                f"  * {rec.type_name}#{rec.tid:<5} worker {rec.worker:<3} "
                f"[{rec.start:>10.1f} -> {rec.end:>10.1f}]"
            )
    return "\n".join(lines)
