"""Metrics registry: counters, gauges and virtual-time-weighted stats.

A :class:`Counter` accumulates monotonically (retries, bytes per link);
a :class:`Gauge` tracks a piecewise-constant quantity over *virtual*
time (a heap's depth, a worker's busy flag) and integrates it, so its
mean, extrema and histogram are weighted by how long each value held —
not by how often it was sampled. The :class:`MetricsRegistry` owns both
and freezes into an immutable :class:`MetricsSnapshot` exposed on
:class:`~repro.runtime.engine.SimResult`.

The :class:`MetricsCollector` derives the standard engine metrics purely
from the event stream — the same events the exporters consume — so any
analysis done on a live run can be regenerated offline from a JSONL
dump.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.events import Event
    from repro.runtime.platform_config import Platform


class Counter:
    """A monotonically accumulating metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValidationError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A piecewise-constant quantity integrated over virtual time.

    ``set(value, t)`` states that the gauge held its previous value from
    the previous sample time up to ``t``, then switched to ``value``.
    Samples are retained, so exporters can render counter tracks and
    histograms can weight each value by the time it was held.
    """

    __slots__ = ("name", "samples", "_integral", "_t0", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[tuple[float, float]] = []
        self._integral = 0.0
        self._t0: float | None = None
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def last(self) -> float:
        """Most recent value (0.0 before the first sample)."""
        return self.samples[-1][1] if self.samples else 0.0

    def set(self, value: float, t: float) -> None:
        """Record that the gauge switched to ``value`` at time ``t``."""
        if self.samples:
            last_t, last_v = self.samples[-1]
            if t < last_t:
                raise ValidationError(
                    f"gauge {self.name}: time went backwards ({t} < {last_t})"
                )
            self._integral += last_v * (t - last_t)
        else:
            self._t0 = t
        self.samples.append((t, value))
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def time_weighted_mean(self, t_end: float | None = None) -> float:
        """Mean value over [first sample, ``t_end``], weighted by duration."""
        if not self.samples:
            return 0.0
        last_t, last_v = self.samples[-1]
        if t_end is None or t_end < last_t:
            t_end = last_t
        span = t_end - self.samples[0][0]
        if span <= 0:
            return last_v
        return (self._integral + last_v * (t_end - last_t)) / span

    def weighted_histogram(
        self, edges: Sequence[float], t_end: float | None = None
    ) -> list[float]:
        """Time spent in each ``[edges[i], edges[i+1])`` bucket.

        Returns ``len(edges) - 1`` durations; values outside the edges
        are clamped into the first/last bucket so the durations always
        sum to the observed span.
        """
        if len(edges) < 2:
            raise ValidationError("weighted_histogram needs at least two edges")
        buckets = [0.0] * (len(edges) - 1)
        if not self.samples:
            return buckets
        last_t, last_v = self.samples[-1]
        if t_end is None or t_end < last_t:
            t_end = last_t
        series = self.samples + [(t_end, last_v)]
        for (t0, value), (t1, _) in zip(series, series[1:]):
            dt = t1 - t0
            if dt <= 0:
                continue
            idx = 0
            for i in range(len(buckets)):
                if value >= edges[i]:
                    idx = i
            buckets[idx] += dt
        return buckets

    def stats(self, t_end: float | None = None) -> dict[str, float]:
        """Summary row: last/mean/min/max/sample count."""
        if not self.samples:
            return {"last": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0, "n": 0.0}
        return {
            "last": self.last,
            "mean": self.time_weighted_mean(t_end),
            "min": self._min,
            "max": self._max,
            "n": float(len(self.samples)),
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable end-of-run view of every counter and gauge.

    ``derived`` holds quantities computed from the event stream at
    snapshot time (per-architecture idle fractions, makespan).
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, dict[str, float]] = field(default_factory=dict)
    derived: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        """One flat mapping for reporting tables (gauges expose means)."""
        flat = dict(self.counters)
        for name, stats in self.gauges.items():
            flat[f"{name}.mean"] = stats["mean"]
            flat[f"{name}.max"] = stats["max"]
        flat.update(self.derived)
        return flat


class MetricsRegistry:
    """Create-or-get store of named counters and gauges."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def gauges(self) -> dict[str, Gauge]:
        """Live gauge objects (exporters read their sample series)."""
        return dict(self._gauges)

    def reset(self) -> None:
        """Drop every metric (start of a new run)."""
        self._counters.clear()
        self._gauges.clear()

    def snapshot(
        self, t_end: float | None = None, derived: dict[str, float] | None = None
    ) -> MetricsSnapshot:
        """Freeze the registry into a :class:`MetricsSnapshot`."""
        return MetricsSnapshot(
            counters={name: c.value for name, c in sorted(self._counters.items())},
            gauges={name: g.stats(t_end) for name, g in sorted(self._gauges.items())},
            derived=dict(derived or {}),
        )


class MetricsCollector:
    """Event-stream subscriber deriving the standard engine metrics.

    Counts completions, retries, faults and decisions; accumulates
    per-link transfer bytes; tracks per-worker busy/wait time so
    :meth:`idle_fractions` reproduces the engine's per-architecture idle
    accounting purely from events.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._busy: dict[int, float] = {}
        self._wait: dict[int, float] = {}
        self._arch_of: dict[int, str] = {}

    def bind_platform(self, platform: "Platform") -> None:
        """Learn the worker -> architecture map for idle accounting."""
        self._arch_of = {w.wid: w.arch for w in platform.workers}
        self._busy = {w.wid: 0.0 for w in platform.workers}
        self._wait = {w.wid: 0.0 for w in platform.workers}

    def reset(self) -> None:
        """Per-run reset (keeps the platform binding)."""
        self._busy = {wid: 0.0 for wid in self._arch_of}
        self._wait = {wid: 0.0 for wid in self._arch_of}

    def on_event(self, event: "Event") -> None:
        """Bus subscription entry point."""
        kind = event.kind
        reg = self.registry
        if kind == "task_end":
            reg.counter("tasks_completed").inc()
            reg.counter(f"exec_us.{event.type_name}").inc(event.end - event.start)  # type: ignore[attr-defined]
            self._busy[event.wid] = (  # type: ignore[attr-defined]
                self._busy.get(event.wid, 0.0) + event.end - event.start  # type: ignore[attr-defined]
            )
            self._wait[event.wid] = (  # type: ignore[attr-defined]
                self._wait.get(event.wid, 0.0) + event.start - event.pop_time  # type: ignore[attr-defined]
            )
        elif kind == "transfer":
            reg.counter(f"link_bytes.{event.src}->{event.dst}").inc(event.nbytes)  # type: ignore[attr-defined]
            reg.counter("transfers").inc()
        elif kind == "task_retry":
            reg.counter("retries").inc()
        elif kind == "task_fault":
            reg.counter("task_faults").inc()
            reg.counter("wasted_exec_us").inc(event.wasted_us)  # type: ignore[attr-defined]
        elif kind == "worker_death":
            reg.counter("worker_deaths").inc()
        elif kind == "decision":
            reg.counter(f"decisions.{event.action}").inc()  # type: ignore[attr-defined]

    def idle_fractions(self, makespan: float) -> dict[str, float]:
        """Per-architecture mean idle fraction, the engine's formula."""
        by_arch: dict[str, list[float]] = {}
        if makespan <= 0:
            return {arch: 0.0 for arch in set(self._arch_of.values())}
        for wid, arch in self._arch_of.items():
            occupied = self._busy.get(wid, 0.0) + self._wait.get(wid, 0.0)
            by_arch.setdefault(arch, []).append(max(0.0, 1.0 - occupied / makespan))
        return {arch: sum(fr) / len(fr) for arch, fr in by_arch.items()}
