"""Top-level facade: one call from (program, machine, scheduler) to a result.

:func:`simulate` hides the wiring between the machine models, the
scheduler registry, the performance models and the discrete-event
engine behind a single entry point::

    from repro import simulate
    from repro.apps.dense import cholesky_program

    res = simulate(cholesky_program(10, 960), "intel-v100", "multiprio")
    print(res.makespan, res.gflops)

Every knob the engine exposes is available as a keyword, or bundled in
a reusable :class:`SimConfig`::

    cfg = SimConfig(seed=3, noise_sigma=0.05, record_level="decisions")
    res = simulate(program, machine, "multiprio", config=cfg)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.events import RecordLevel
from repro.platform.machines import MACHINES, MachineModel
from repro.runtime.engine import SimResult, Simulator
from repro.runtime.faults import FaultModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import Program
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import make_scheduler
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.perfmodel import PerfModel


@dataclass
class SimConfig:
    """Bundled simulation options for :func:`simulate`.

    Attributes mirror :class:`~repro.runtime.engine.Simulator` keywords;
    ``sched_params`` are forwarded to the scheduler factory when the
    scheduler is given by registry name, and ``perfmodel`` (when set)
    replaces the default :class:`AnalyticalPerfModel` built from the
    machine's calibration with ``noise_sigma``.
    """

    seed: int = 0
    noise_sigma: float = 0.0
    perfmodel: "PerfModel | None" = None
    faults: FaultModel | None = None
    record_trace: bool = False
    record_level: RecordLevel | str | int = RecordLevel.OFF
    pipeline: bool = True
    submission_window: int | None = None
    check_invariants: bool | None = None
    sched_params: dict = field(default_factory=dict)


def _resolve_machine(machine: MachineModel | str) -> MachineModel:
    """A :class:`MachineModel` from an instance or a registry name."""
    if isinstance(machine, str):
        factory = MACHINES.get(machine)
        if factory is None:
            raise ValidationError(
                f"unknown machine {machine!r}; known: {', '.join(sorted(MACHINES))}"
            )
        return factory()
    return machine


def simulate(
    program: Program,
    machine: MachineModel | str,
    scheduler: Scheduler | str = "multiprio",
    *,
    config: SimConfig | None = None,
    seed: int = 0,
    noise_sigma: float = 0.0,
    perfmodel: "PerfModel | None" = None,
    faults: FaultModel | None = None,
    record_trace: bool = False,
    record_level: RecordLevel | str | int = RecordLevel.OFF,
    pipeline: bool = True,
    submission_window: int | None = None,
    check_invariants: bool | None = None,
    sched_params: dict | None = None,
) -> SimResult:
    """Simulate ``program`` on ``machine`` under ``scheduler``.

    Parameters
    ----------
    program:
        The task graph (from :class:`~repro.runtime.stf.TaskFlow` or an
        application generator).
    machine:
        A :class:`~repro.platform.machines.MachineModel` or its registry
        name (``"intel-v100"``, ``"amd-a100"``, ...).
    scheduler:
        A :class:`~repro.schedulers.base.Scheduler` instance or a
        registry name; names are instantiated with ``sched_params``.
    config:
        A :class:`SimConfig` bundling all remaining options. When given
        it takes precedence over the individual keywords.
    perfmodel:
        Explicit performance model (e.g.
        :class:`~repro.runtime.perfmodel.HistoryPerfModel`); ``None``
        builds an :class:`AnalyticalPerfModel` from the machine's
        calibration with ``noise_sigma`` execution noise.
    faults:
        Optional :class:`~repro.runtime.faults.FaultModel`.
    check_invariants:
        Attach the :mod:`repro.check` runtime validator (``None`` defers
        to the ``REPRO_CHECK_INVARIANTS`` environment variable).
    record_trace / record_level / pipeline / submission_window / seed:
        Forwarded to :class:`~repro.runtime.engine.Simulator`.

    Returns the engine's :class:`~repro.runtime.engine.SimResult`.
    """
    cfg = config if config is not None else SimConfig(
        seed=seed,
        noise_sigma=noise_sigma,
        perfmodel=perfmodel,
        faults=faults,
        record_trace=record_trace,
        record_level=record_level,
        pipeline=pipeline,
        submission_window=submission_window,
        check_invariants=check_invariants,
        sched_params=dict(sched_params) if sched_params else {},
    )
    mach = _resolve_machine(machine)
    if isinstance(scheduler, str):
        sched = make_scheduler(scheduler, **cfg.sched_params)
    else:
        if cfg.sched_params:
            raise ValidationError(
                "sched_params only apply when the scheduler is given by name; "
                f"got an instance plus params {cfg.sched_params!r}"
            )
        sched = scheduler
    pm = cfg.perfmodel
    if pm is None:
        pm = AnalyticalPerfModel(mach.calibration(), noise_sigma=cfg.noise_sigma)
    sim = Simulator(
        mach.platform(),
        sched,
        pm,
        seed=cfg.seed,
        record_trace=cfg.record_trace,
        pipeline=cfg.pipeline,
        submission_window=cfg.submission_window,
        fault_model=cfg.faults,
        record_level=cfg.record_level,
        check_invariants=cfg.check_invariants,
    )
    return sim.run(program)
