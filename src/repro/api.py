"""Top-level facade: one spec from (machine, scheduler, knobs) to results.

:class:`SimSpec` is the single entry point: it bundles the machine, the
scheduler and every engine knob once, then runs any workload shape —
a task graph, an online job stream, or a multi-node cluster::

    from repro import SimSpec
    from repro.apps.dense import cholesky_program

    spec = SimSpec("intel-v100", "multiprio")
    res = spec.run(cholesky_program(10, 960))
    print(res.makespan, res.gflops)

The same spec drives the online path (and the cluster tier via
:meth:`SimSpec.run_cluster`)::

    from repro.workload import poisson_stream

    spec = SimSpec("small-hetero", "multiprio", batch_step=50.0)
    sres = spec.run_stream(poisson_stream([lambda: cholesky_program(6, 512)],
                                          rate_jobs_per_s=20.0, n_jobs=8))
    print(sres.mean_latency_us, sres.fairness)

The historical entry points — :func:`simulate`, :func:`simulate_stream`
and :func:`repro.cluster.simulate_cluster` — remain as thin wrappers
over ``SimSpec`` and produce bit-identical results; passing engine
options to them as loose keywords is deprecated (build a ``SimSpec``
instead). :class:`SimConfig` is the per-run knob bundle ``SimSpec``
embeds; it stays fully supported.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.events import RecordLevel
from repro.platform.machines import MACHINES, MachineModel
from repro.runtime.engine import SimResult, Simulator
from repro.runtime.faults import FaultModel
from repro.runtime.overhead import SchedOverheadModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.power import ArchPower, PowerModel, PowerStateModel
from repro.runtime.resources import ResourceProtocol
from repro.runtime.stf import Program
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import make_scheduler
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.result import ClusterResult
    from repro.cluster.spec import ClusterSpec
    from repro.cluster.topology import Cluster
    from repro.control.plane import ControlConfig, ControlPlane
    from repro.runtime.perfmodel import PerfModel
    from repro.workload.results import StreamResult
    from repro.workload.stream import JobStream

#: Sentinel distinguishing "keyword not passed" from an explicit default
#: in the deprecated loose-keyword wrappers.
_UNSET: Any = object()

#: Coarse draw charged to architectures the power model does not cover
#: when attributing per-job energy (an explicit opt-in — the model
#: itself raises ``KeyError`` on unknown architectures).
_GENERIC_DRAW = ArchPower(busy_watts=50.0, idle_watts=10.0)


@dataclass
class SimConfig:
    """Bundled per-run engine options (embedded by :class:`SimSpec`).

    Attributes mirror :class:`~repro.runtime.engine.Simulator` keywords;
    ``sched_params`` are forwarded to the scheduler factory when the
    scheduler is given by registry name, and ``perfmodel`` (when set)
    replaces the default :class:`AnalyticalPerfModel` built from the
    machine's calibration with ``noise_sigma``. ``batch_step`` /
    ``batch_drain_on_idle`` select the engine's batched hot path (see
    :class:`~repro.runtime.engine.Simulator`).
    """

    seed: int = 0
    noise_sigma: float = 0.0
    perfmodel: "PerfModel | None" = None
    faults: FaultModel | None = None
    record_trace: bool = False
    record_level: RecordLevel | str | int = RecordLevel.OFF
    pipeline: bool = True
    submission_window: int | None = None
    check_invariants: bool | None = None
    batch_step: float | None = None
    batch_drain_on_idle: bool = True
    overhead: SchedOverheadModel | None = None
    resources: ResourceProtocol | None = None
    power: PowerStateModel | None = None
    sched_params: dict = field(default_factory=dict)


def _resolve_machine(machine: MachineModel | str) -> MachineModel:
    """A :class:`MachineModel` from an instance or a registry name."""
    if isinstance(machine, str):
        factory = MACHINES.get(machine)
        if factory is None:
            raise ValidationError(
                f"unknown machine {machine!r}; known: {', '.join(sorted(MACHINES))}"
            )
        return factory()
    return machine


def _build_simulator(
    cfg: SimConfig,
    mach: MachineModel,
    scheduler: Scheduler | str,
    control_plane: "ControlPlane | None" = None,
) -> Simulator:
    """One fully-wired :class:`Simulator` from a config bundle."""
    if isinstance(scheduler, str):
        sched = make_scheduler(scheduler, **cfg.sched_params)
    else:
        if cfg.sched_params:
            raise ValidationError(
                "sched_params only apply when the scheduler is given by name; "
                f"got an instance plus params {cfg.sched_params!r}"
            )
        sched = scheduler
    pm = cfg.perfmodel
    if pm is None:
        pm = AnalyticalPerfModel(mach.calibration(), noise_sigma=cfg.noise_sigma)
    return Simulator(
        mach.platform(),
        sched,
        pm,
        seed=cfg.seed,
        record_trace=cfg.record_trace,
        pipeline=cfg.pipeline,
        submission_window=cfg.submission_window,
        fault_model=cfg.faults,
        record_level=cfg.record_level,
        check_invariants=cfg.check_invariants,
        control_plane=control_plane,
        batch_step=cfg.batch_step,
        batch_drain_on_idle=cfg.batch_drain_on_idle,
        overhead=cfg.overhead,
        resources=cfg.resources,
        power=cfg.power,
    )


@dataclass
class SimSpec:
    """One declarative simulation spec: where, how, and with which knobs.

    Build it once, run any workload shape against it:

    * :meth:`run` — one task graph → :class:`SimResult`;
    * :meth:`run_stream` — an online job stream →
      :class:`~repro.workload.results.StreamResult`;
    * :meth:`run_cluster` — a stream on a multi-node cluster →
      :class:`~repro.cluster.result.ClusterResult`.

    Parameters
    ----------
    machine:
        A :class:`~repro.platform.machines.MachineModel` or its registry
        name (``"intel-v100"``, ``"small-hetero"``, ...). Ignored by
        :meth:`run_cluster`, which takes its topology from the cluster.
    scheduler:
        A :class:`~repro.schedulers.base.Scheduler` instance or a
        registry name; names are instantiated with ``sched_params``.
    config:
        The embedded :class:`SimConfig`. The remaining keywords are
        conveniences that override single fields of it: ``SimSpec(m, s,
        seed=3)`` equals ``SimSpec(m, s, config=SimConfig(seed=3))``.
    control:
        Optional :class:`~repro.control.ControlConfig` admission control
        plane, applied by the stream and cluster paths.
    isolated_baseline:
        Whether stream/cluster runs also simulate each job alone to
        report per-job slowdowns.
    """

    machine: MachineModel | str = "intel-v100"
    scheduler: Scheduler | str = "multiprio"
    config: SimConfig = field(default_factory=SimConfig)
    control: "ControlConfig | None" = None
    isolated_baseline: bool = True
    # Single-field conveniences folded into `config` after init.
    seed: "int | None" = None
    noise_sigma: "float | None" = None
    perfmodel: "PerfModel | None" = None
    faults: FaultModel | None = None
    record_trace: "bool | None" = None
    record_level: "RecordLevel | str | int | None" = None
    pipeline: "bool | None" = None
    submission_window: "int | None" = None
    check_invariants: "bool | None" = None
    batch_step: "float | None" = None
    batch_drain_on_idle: "bool | None" = None
    overhead: "SchedOverheadModel | None" = None
    resources: "ResourceProtocol | None" = None
    power: "PowerStateModel | None" = None
    sched_params: "dict | None" = None

    def __post_init__(self) -> None:
        overrides = {
            name: value
            for name in (
                "seed", "noise_sigma", "perfmodel", "faults", "record_trace",
                "record_level", "pipeline", "submission_window",
                "check_invariants", "batch_step", "batch_drain_on_idle",
                "overhead", "resources", "power",
            )
            if (value := getattr(self, name)) is not None
        }
        if self.sched_params is not None:
            overrides["sched_params"] = dict(self.sched_params)
        if overrides:
            from dataclasses import replace

            self.config = replace(self.config, **overrides)
        # The conveniences have been folded in; mirror the config back so
        # `spec.seed` etc. always read the effective values.
        for f in (
            "seed", "noise_sigma", "perfmodel", "faults", "record_trace",
            "record_level", "pipeline", "submission_window",
            "check_invariants", "batch_step", "batch_drain_on_idle",
            "overhead", "resources", "power", "sched_params",
        ):
            setattr(self, f, getattr(self.config, f))

    # -- internals -------------------------------------------------------

    def _machine(self) -> MachineModel:
        return _resolve_machine(self.machine)

    def simulator(
        self, control_plane: "ControlPlane | None" = None
    ) -> Simulator:
        """A fully-wired engine for this spec (fresh every call)."""
        return _build_simulator(
            self.config, self._machine(), self.scheduler, control_plane
        )

    @property
    def scheduler_name(self) -> str:
        return (
            self.scheduler
            if isinstance(self.scheduler, str)
            else self.scheduler.name
        )

    # -- entry points ----------------------------------------------------

    def run(self, program: Program) -> SimResult:
        """Simulate one task graph; returns the engine's result."""
        if self.control is not None:
            raise ValidationError(
                "control planes act on job streams; use run_stream() (or "
                "run_cluster()), or clear SimSpec.control for a plain run"
            )
        return self.simulator().run(program)

    def run_stream(self, stream: "JobStream") -> "StreamResult":
        """Simulate an online job stream.

        The stream is compiled with
        :func:`~repro.workload.merge.merge_stream` into one composite
        program whose tasks are released at their job's arrival time,
        then run through the normal engine — a stream with a single job
        arriving at t=0 is bit-identical to :meth:`run` on that job's
        program. With :attr:`control` set, the stream passes through the
        admission control plane (accept / delay / shed / evict); the
        result's ``jobs`` then holds completed jobs only and
        ``result.control`` carries the admission outcome.
        """
        from repro.workload.merge import merge_stream
        from repro.workload.results import JobResult, StreamResult

        cfg = self.config
        mach = self._machine()
        merged = merge_stream(stream)
        plane = None
        if self.control is not None:
            from repro.control.plane import ControlPlane

            plane = ControlPlane(self.control)
        res = _build_simulator(cfg, mach, self.scheduler, plane).run(merged)

        # Under a control plane only completed jobs have execution
        # records; shed/evicted jobs are reported through ControlResult.
        completed: set[int] | None = None
        if plane is not None:
            completed = {r.jid for r in plane.records() if r.status == "done"}

        isolated: dict[int, float] = {}
        if self.isolated_baseline:
            for job in stream.jobs:
                if completed is not None and job.jid not in completed:
                    continue
                key = id(job.program)
                if key not in isolated:
                    isolated[key] = _build_simulator(
                        cfg, mach, self.scheduler
                    ).run(job.program).makespan

        # Per-job busy-energy attribution: with the power subsystem on
        # (``config.power``) the engine stamped state-aware joules per
        # task; otherwise joules derive from each task's execution span
        # at its worker's busy watts. Architectures outside the power
        # model fall back to an explicit generic 50 W draw so exotic
        # platforms still report comparable (if coarse) numbers.
        arch_power = cfg.power.power if cfg.power is not None else PowerModel()
        watts_of = {
            w.wid: arch_power.arch_power(
                w.arch, default=_GENERIC_DRAW
            ).busy_watts
            for w in mach.platform().workers
        }

        jobs: list[JobResult] = []
        for span in merged.jobs:
            if completed is not None and span.jid not in completed:
                continue
            records = []
            joules = 0.0
            for tid in range(span.first_tid, span.first_tid + span.n_tasks):
                sched = merged.tasks[tid].sched
                rec = sched["_record"]
                records.append(rec)
                ej = sched.get("_energy_j")
                if ej is None:
                    ej = (rec[3] - rec[2]) * watts_of[rec[0]] * 1e-6
                joules += ej
            job = next(j for j in stream.jobs if j.jid == span.jid)
            jobs.append(JobResult(
                jid=span.jid,
                name=span.name,
                tenant=span.tenant,
                arrival_us=span.arrival_us,
                start_us=min(r[2] for r in records),
                end_us=max(r[3] for r in records),
                n_tasks=span.n_tasks,
                isolated_us=isolated.get(id(job.program)),
                deadline_us=(
                    span.deadline_us
                    if span.deadline_us != float("inf")
                    else None
                ),
                energy_j=joules,
            ))
        control_result = None
        if plane is not None:
            from repro.control.result import ControlResult

            control_result = ControlResult.from_plane(plane, jobs)
        return StreamResult(
            stream_name=stream.name,
            machine=mach.name,
            scheduler=self.scheduler_name,
            jobs=jobs,
            sim=res,
            control=control_result,
        )

    def run_cluster(
        self,
        stream: "JobStream",
        cluster: "Cluster | ClusterSpec",
        **cluster_options,
    ) -> "ClusterResult":
        """Simulate a job stream on a multi-node cluster.

        ``cluster_options`` are the cluster-tier knobs of
        :func:`repro.cluster.simulate_cluster` (``placement``,
        ``placement_params``, ``jobs``, ``max_rounds``, ``progress``);
        everything else — scheduler, control plane, per-node engine
        options — comes from this spec. The per-node scheduler must be a
        registry name (each node instantiates its own).
        """
        from repro.cluster.sim import simulate_cluster

        return simulate_cluster(
            stream,
            cluster,
            self.scheduler,  # name-check happens in simulate_cluster
            config=self.config,
            control=self.control,
            isolated_baseline=self.isolated_baseline,
            **cluster_options,
        )


def _legacy_config(
    where: str, config: SimConfig | None, passed: dict
) -> SimConfig:
    """Fold deprecated loose keywords into a :class:`SimConfig`."""
    explicit = {k: v for k, v in passed.items() if v is not _UNSET}
    if explicit:
        warnings.warn(
            f"passing engine options to {where} as loose keywords "
            f"({', '.join(sorted(explicit))}) is deprecated; build a "
            "SimSpec (or a SimConfig) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    if config is not None:
        return config  # the config bundle takes precedence, as documented
    if "sched_params" in explicit:
        explicit["sched_params"] = dict(explicit["sched_params"] or {})
    return SimConfig(**explicit)


def simulate(
    program: Program,
    machine: MachineModel | str,
    scheduler: Scheduler | str = "multiprio",
    *,
    config: SimConfig | None = None,
    seed: int = _UNSET,
    noise_sigma: float = _UNSET,
    perfmodel: "PerfModel | None" = _UNSET,
    faults: FaultModel | None = _UNSET,
    record_trace: bool = _UNSET,
    record_level: RecordLevel | str | int = _UNSET,
    pipeline: bool = _UNSET,
    submission_window: int | None = _UNSET,
    check_invariants: bool | None = _UNSET,
    batch_step: float | None = _UNSET,
    batch_drain_on_idle: bool = _UNSET,
    sched_params: dict | None = _UNSET,
) -> SimResult:
    """Simulate ``program`` on ``machine`` under ``scheduler``.

    A thin wrapper over ``SimSpec(machine, scheduler, config).run(program)``
    — bit-identical to it. Passing the engine options as loose keywords
    is **deprecated**; bundle them in a :class:`SimSpec` or
    :class:`SimConfig` instead. ``simulate(program, machine, scheduler)``
    and the ``config=`` form stay warning-free.

    Returns the engine's :class:`~repro.runtime.engine.SimResult`.
    """
    cfg = _legacy_config("simulate()", config, dict(
        seed=seed, noise_sigma=noise_sigma, perfmodel=perfmodel,
        faults=faults, record_trace=record_trace, record_level=record_level,
        pipeline=pipeline, submission_window=submission_window,
        check_invariants=check_invariants, batch_step=batch_step,
        batch_drain_on_idle=batch_drain_on_idle, sched_params=sched_params,
    ))
    return SimSpec(machine, scheduler, config=cfg).run(program)


def simulate_stream(
    stream: "JobStream",
    machine: MachineModel | str,
    scheduler: Scheduler | str = "multiprio",
    *,
    config: SimConfig | None = None,
    isolated_baseline: bool = True,
    control: "ControlConfig | None" = None,
    seed: int = _UNSET,
    noise_sigma: float = _UNSET,
    perfmodel: "PerfModel | None" = _UNSET,
    faults: FaultModel | None = _UNSET,
    record_trace: bool = _UNSET,
    record_level: RecordLevel | str | int = _UNSET,
    pipeline: bool = _UNSET,
    submission_window: int | None = _UNSET,
    check_invariants: bool | None = _UNSET,
    batch_step: float | None = _UNSET,
    batch_drain_on_idle: bool = _UNSET,
    sched_params: dict | None = _UNSET,
) -> "StreamResult":
    """Simulate an online job stream on ``machine`` under ``scheduler``.

    A thin wrapper over :meth:`SimSpec.run_stream` — bit-identical to
    it. Passing engine options as loose keywords is **deprecated**
    (build a :class:`SimSpec`); ``config=``, ``isolated_baseline=`` and
    ``control=`` stay warning-free.

    Returns a :class:`~repro.workload.results.StreamResult`.
    """
    cfg = _legacy_config("simulate_stream()", config, dict(
        seed=seed, noise_sigma=noise_sigma, perfmodel=perfmodel,
        faults=faults, record_trace=record_trace, record_level=record_level,
        pipeline=pipeline, submission_window=submission_window,
        check_invariants=check_invariants, batch_step=batch_step,
        batch_drain_on_idle=batch_drain_on_idle, sched_params=sched_params,
    ))
    return SimSpec(
        machine,
        scheduler,
        config=cfg,
        control=control,
        isolated_baseline=isolated_baseline,
    ).run_stream(stream)
