"""Top-level facade: one call from (program, machine, scheduler) to a result.

:func:`simulate` hides the wiring between the machine models, the
scheduler registry, the performance models and the discrete-event
engine behind a single entry point::

    from repro import simulate
    from repro.apps.dense import cholesky_program

    res = simulate(cholesky_program(10, 960), "intel-v100", "multiprio")
    print(res.makespan, res.gflops)

Every knob the engine exposes is available as a keyword, or bundled in
a reusable :class:`SimConfig`::

    cfg = SimConfig(seed=3, noise_sigma=0.05, record_level="decisions")
    res = simulate(program, machine, "multiprio", config=cfg)

:func:`simulate_stream` is the online counterpart: it merges a
:class:`~repro.workload.stream.JobStream` (programs arriving over
virtual time) into one composite run and reports per-job latency,
queueing delay, slowdown-vs-isolated and fairness::

    from repro import simulate_stream
    from repro.workload import poisson_stream

    stream = poisson_stream([lambda: cholesky_program(6, 512)],
                            rate_jobs_per_s=20.0, n_jobs=8)
    sres = simulate_stream(stream, "small-hetero", "multiprio")
    print(sres.mean_latency_us, sres.fairness)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.events import RecordLevel
from repro.platform.machines import MACHINES, MachineModel
from repro.runtime.engine import SimResult, Simulator
from repro.runtime.faults import FaultModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import Program
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import make_scheduler
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.plane import ControlConfig, ControlPlane
    from repro.runtime.perfmodel import PerfModel
    from repro.workload.results import StreamResult
    from repro.workload.stream import JobStream


@dataclass
class SimConfig:
    """Bundled simulation options for :func:`simulate`.

    Attributes mirror :class:`~repro.runtime.engine.Simulator` keywords;
    ``sched_params`` are forwarded to the scheduler factory when the
    scheduler is given by registry name, and ``perfmodel`` (when set)
    replaces the default :class:`AnalyticalPerfModel` built from the
    machine's calibration with ``noise_sigma``.
    """

    seed: int = 0
    noise_sigma: float = 0.0
    perfmodel: "PerfModel | None" = None
    faults: FaultModel | None = None
    record_trace: bool = False
    record_level: RecordLevel | str | int = RecordLevel.OFF
    pipeline: bool = True
    submission_window: int | None = None
    check_invariants: bool | None = None
    sched_params: dict = field(default_factory=dict)


def _resolve_machine(machine: MachineModel | str) -> MachineModel:
    """A :class:`MachineModel` from an instance or a registry name."""
    if isinstance(machine, str):
        factory = MACHINES.get(machine)
        if factory is None:
            raise ValidationError(
                f"unknown machine {machine!r}; known: {', '.join(sorted(MACHINES))}"
            )
        return factory()
    return machine


def simulate(
    program: Program,
    machine: MachineModel | str,
    scheduler: Scheduler | str = "multiprio",
    *,
    config: SimConfig | None = None,
    seed: int = 0,
    noise_sigma: float = 0.0,
    perfmodel: "PerfModel | None" = None,
    faults: FaultModel | None = None,
    record_trace: bool = False,
    record_level: RecordLevel | str | int = RecordLevel.OFF,
    pipeline: bool = True,
    submission_window: int | None = None,
    check_invariants: bool | None = None,
    sched_params: dict | None = None,
) -> SimResult:
    """Simulate ``program`` on ``machine`` under ``scheduler``.

    Parameters
    ----------
    program:
        The task graph (from :class:`~repro.runtime.stf.TaskFlow` or an
        application generator).
    machine:
        A :class:`~repro.platform.machines.MachineModel` or its registry
        name (``"intel-v100"``, ``"amd-a100"``, ...).
    scheduler:
        A :class:`~repro.schedulers.base.Scheduler` instance or a
        registry name; names are instantiated with ``sched_params``.
    config:
        A :class:`SimConfig` bundling all remaining options. When given
        it takes precedence over the individual keywords.
    perfmodel:
        Explicit performance model (e.g.
        :class:`~repro.runtime.perfmodel.HistoryPerfModel`); ``None``
        builds an :class:`AnalyticalPerfModel` from the machine's
        calibration with ``noise_sigma`` execution noise.
    faults:
        Optional :class:`~repro.runtime.faults.FaultModel`.
    check_invariants:
        Attach the :mod:`repro.check` runtime validator (``None`` defers
        to the ``REPRO_CHECK_INVARIANTS`` environment variable).
    record_trace / record_level / pipeline / submission_window / seed:
        Forwarded to :class:`~repro.runtime.engine.Simulator`.

    Returns the engine's :class:`~repro.runtime.engine.SimResult`.
    """
    cfg = config if config is not None else SimConfig(
        seed=seed,
        noise_sigma=noise_sigma,
        perfmodel=perfmodel,
        faults=faults,
        record_trace=record_trace,
        record_level=record_level,
        pipeline=pipeline,
        submission_window=submission_window,
        check_invariants=check_invariants,
        sched_params=dict(sched_params) if sched_params else {},
    )
    mach = _resolve_machine(machine)
    return _build_simulator(cfg, mach, scheduler).run(program)


def _build_simulator(
    cfg: SimConfig,
    mach: MachineModel,
    scheduler: Scheduler | str,
    control_plane: "ControlPlane | None" = None,
) -> Simulator:
    """One fully-wired :class:`Simulator` from a config bundle."""
    if isinstance(scheduler, str):
        sched = make_scheduler(scheduler, **cfg.sched_params)
    else:
        if cfg.sched_params:
            raise ValidationError(
                "sched_params only apply when the scheduler is given by name; "
                f"got an instance plus params {cfg.sched_params!r}"
            )
        sched = scheduler
    pm = cfg.perfmodel
    if pm is None:
        pm = AnalyticalPerfModel(mach.calibration(), noise_sigma=cfg.noise_sigma)
    return Simulator(
        mach.platform(),
        sched,
        pm,
        seed=cfg.seed,
        record_trace=cfg.record_trace,
        pipeline=cfg.pipeline,
        submission_window=cfg.submission_window,
        fault_model=cfg.faults,
        record_level=cfg.record_level,
        check_invariants=cfg.check_invariants,
        control_plane=control_plane,
    )


def simulate_stream(
    stream: "JobStream",
    machine: MachineModel | str,
    scheduler: Scheduler | str = "multiprio",
    *,
    config: SimConfig | None = None,
    isolated_baseline: bool = True,
    seed: int = 0,
    noise_sigma: float = 0.0,
    perfmodel: "PerfModel | None" = None,
    faults: FaultModel | None = None,
    record_trace: bool = False,
    record_level: RecordLevel | str | int = RecordLevel.OFF,
    pipeline: bool = True,
    submission_window: int | None = None,
    check_invariants: bool | None = None,
    sched_params: dict | None = None,
    control: "ControlConfig | None" = None,
) -> "StreamResult":
    """Simulate an online job stream on ``machine`` under ``scheduler``.

    The stream is compiled with
    :func:`~repro.workload.merge.merge_stream` into one composite
    program whose tasks are released at their job's arrival time, then
    run through the normal engine — a stream with a single job arriving
    at t=0 is bit-identical to :func:`simulate` on that job's program.

    Parameters beyond :func:`simulate`'s:

    stream:
        A :class:`~repro.workload.stream.JobStream` (from
        :func:`~repro.workload.stream.poisson_stream`,
        :func:`~repro.workload.stream.closed_loop_stream`,
        :func:`~repro.workload.stream.trace_stream`, or hand-built).
    isolated_baseline:
        Also simulate each job alone (same machine, scheduler and
        config) to report per-job slowdowns. Baselines are cached per
        distinct program object; pass ``False`` to skip the extra runs.
    control:
        Optional :class:`~repro.control.ControlConfig`: run the stream
        through the admission control plane (accept / delay / shed /
        evict). The result's ``jobs`` then holds completed jobs only and
        ``result.control`` carries the per-tenant/per-class admission
        outcome. ``ControlConfig.unlimited()`` is bit-identical to
        ``control=None``.

    Returns a :class:`~repro.workload.results.StreamResult`.
    """
    from repro.workload.merge import merge_stream
    from repro.workload.results import JobResult, StreamResult

    cfg = config if config is not None else SimConfig(
        seed=seed,
        noise_sigma=noise_sigma,
        perfmodel=perfmodel,
        faults=faults,
        record_trace=record_trace,
        record_level=record_level,
        pipeline=pipeline,
        submission_window=submission_window,
        check_invariants=check_invariants,
        sched_params=dict(sched_params) if sched_params else {},
    )
    mach = _resolve_machine(machine)
    merged = merge_stream(stream)
    plane = None
    if control is not None:
        from repro.control.plane import ControlPlane

        plane = ControlPlane(control)
    res = _build_simulator(cfg, mach, scheduler, control_plane=plane).run(merged)

    # Under a control plane only completed jobs have execution records;
    # shed/evicted jobs are reported through ControlResult instead.
    completed: set[int] | None = None
    if plane is not None:
        completed = {r.jid for r in plane.records() if r.status == "done"}

    isolated: dict[int, float] = {}
    if isolated_baseline:
        for job in stream.jobs:
            if completed is not None and job.jid not in completed:
                continue
            key = id(job.program)
            if key not in isolated:
                isolated[key] = _build_simulator(cfg, mach, scheduler).run(
                    job.program
                ).makespan

    jobs: list[JobResult] = []
    for span in merged.jobs:
        if completed is not None and span.jid not in completed:
            continue
        records = [
            merged.tasks[tid].sched["_record"]
            for tid in range(span.first_tid, span.first_tid + span.n_tasks)
        ]
        job = next(j for j in stream.jobs if j.jid == span.jid)
        jobs.append(JobResult(
            jid=span.jid,
            name=span.name,
            tenant=span.tenant,
            arrival_us=span.arrival_us,
            start_us=min(r[2] for r in records),
            end_us=max(r[3] for r in records),
            n_tasks=span.n_tasks,
            isolated_us=isolated.get(id(job.program)),
        ))
    sched_name = scheduler if isinstance(scheduler, str) else scheduler.name
    control_result = None
    if plane is not None:
        from repro.control.result import ControlResult

        control_result = ControlResult.from_plane(plane, jobs)
    return StreamResult(
        stream_name=stream.name,
        machine=mach.name,
        scheduler=sched_name,
        jobs=jobs,
        sim=res,
        control=control_result,
    )
