"""Engine-attached runtime invariant validator.

The engine binds one :class:`InvariantChecker` per run (only when
``check_invariants=True``) and calls :meth:`InvariantChecker.validate`
at the top of the event loop — i.e. after every fully-processed event,
with the queue intact — plus once more after the loop drains. Each call
sweeps six invariant families over the *entire* runtime state:

``clock``
    Event times never move backward.
``link``
    Per-link FIFO clocks and counters are monotone, the demand clock
    never exceeds the combined clock, and recorded prefetch wire spans
    are ordered and consistent with the clocks.
``msi``
    Replica-set coherence: in-flight transfers and pins target valid
    replicas, pin counts equal exactly what the running/staged tasks
    pinned, and the capacity accounting (``_resident``/``_usage``) of
    bounded nodes matches the handles' sizes.
``task_state``
    Only legal lifecycle transitions occurred since the previous check
    (fault rollbacks are legal only under a fault model); ``DONE`` is
    terminal.
``conservation``
    Every task is in exactly one bucket — unrevealed, waiting on
    predecessors, scheduler-held (READY), running/staged, retry-pending
    (with a matching TASK_RETRY event in the queue), or done — and the
    dependency counters agree with the predecessors' states.
``window``
    Submission accounting: the in-flight count ``revealed - n_done``
    never exceeds the submission window, and whenever submission is
    stalled with tasks left, either the window is genuinely full or the
    next task's release time is genuinely in the future — otherwise the
    STF reveal loop leaked (e.g. a rollback path failed to re-advance).
``scheduler``
    Whatever the policy's own :meth:`~repro.schedulers.base.Scheduler.check`
    reports (heap order, counter exactness, ...).
``batch``
    Batch-mode scheduling only: every buffered task is READY (or
    cancelled awaiting its flush skip), revealed, release-gated and
    dependency-free — i.e. the batch never outran the submission window
    or a release time — and a ``BATCH_FLUSH`` event is queued whenever
    the buffer is non-empty (no batch can be forgotten).
``control``
    When a control plane is attached: credit conservation (every decided
    job is admitted, shed, or pending another delay), the in-flight
    gauge matches admitted jobs' remaining work, no guaranteed-class job
    was ever shed, and no token bucket exceeds its burst
    (:meth:`repro.control.ControlPlane.audit`).
``rt``
    Real-time extensions only. Slack bookkeeping: every merged task's
    absolute deadline lies inside its job's ``(arrival, deadline]``
    window (checked once at run start). Overhead conservation: the
    ledger's ``charged_us`` equals the counter-weighted sum of the
    model's per-decision costs and the virtual scheduler-core clock
    never retreats. Resource exclusion: per resource, the granted
    intervals in the ledger never overlap — no two simultaneous
    holders.
``energy``
    Power-subsystem runs only (``SimConfig(power=...)``). Cap safety:
    the busy draw flowing on every capped node — the sum over booked
    reservations whose span covers the current clock — never exceeds
    the node's cap. Time conservation: each worker's accrued busy
    microseconds (all states summed) never exceed the elapsed virtual
    clock, and the ledger's busy total equals the per-worker/per-state
    sum exactly (joules are per-worker products of these, so additivity
    across workers follows). Counters: admissions, throttles, throttle
    delay and busy time are all monotone, and throttles never outnumber
    admissions.

Violations are emitted as
:class:`~repro.obs.events.InvariantViolation` events (when observability
is on) and raised as one
:class:`~repro.utils.validation.InvariantError`. The checker only reads
engine state — a checked run's schedule is bit-identical to an
unchecked one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.events import InvariantViolation
from repro.runtime.events import BATCH_FLUSH, TASK_RETRY
from repro.runtime.task import AccessMode, Task, TaskState
from repro.utils.validation import InvariantError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.bus import Observability
    from repro.runtime.platform_config import Platform
    from repro.runtime.stf import Program

_S = TaskState.SUBMITTED
_READY = TaskState.READY
_RUNNING = TaskState.RUNNING
_DONE = TaskState.DONE
_CXL = TaskState.CANCELLED

#: Transitions observable between two consecutive checks (one event may
#: compose several steps, e.g. push + rescue-pop gives SUBMITTED→RUNNING).
_LEGAL = {
    (_S, _S), (_S, _READY), (_S, _RUNNING),
    (_READY, _READY), (_READY, _RUNNING),
    (_RUNNING, _RUNNING), (_RUNNING, _DONE),
    (_DONE, _DONE),
}
#: Rollback transitions, legal only when a fault model is active.
_FAULT_ONLY = {(_RUNNING, _S), (_READY, _S), (_RUNNING, _READY)}
#: Cancellations, legal only when a control plane is attached (shed jobs
#: cancel from SUBMITTED, evicted-and-retracted tasks from READY).
_CONTROL_ONLY = {(_S, _CXL), (_READY, _CXL)}


class InvariantChecker:
    """Validates engine + scheduler state after every simulation event.

    The engine calls :meth:`begin_run` once (binding live references to
    its loop-local structures — the dicts and the event heap are mutated
    in place, so the references stay current) and then :meth:`validate`
    once per event. ``n_checks`` counts validations for reporting.
    """

    def __init__(self, obs: "Observability | None" = None) -> None:
        self.obs = obs
        self.n_checks = 0
        self.control = None

    def begin_run(
        self,
        *,
        program: "Program",
        platform: "Platform",
        ctx,
        scheduler,
        current: "list[Task | None]",
        staged: "list[tuple[Task, float, float] | None]",
        events: list,
        fault_active: bool,
        window: int | None = None,
        releases: "list[float] | tuple[float, ...] | None" = None,
        control=None,
        batch_pending: list[Task] | None = None,
        batch_drain: bool = True,
        overhead_ledger=None,
        resource_ledger=None,
        power_ledger=None,
    ) -> None:
        """Bind one run's live state and snapshot the starting point.

        ``releases`` must be the engine's own (possibly mutable) list so
        control-plane delay decisions stay visible to the window check;
        ``control`` is the bound :class:`~repro.control.ControlPlane`, or
        ``None`` for uncontrolled runs.
        """
        self.program = program
        self.platform = platform
        self.ctx = ctx
        self.scheduler = scheduler
        self.current = current
        self.staged = staged
        self.events = events
        self.fault_active = fault_active
        self.window = window
        self.releases = releases
        self.control = control
        self.batch_pending = batch_pending
        self.batch_drain = batch_drain
        self.overhead_ledger = overhead_ledger
        self.resource_ledger = resource_ledger
        self.power_ledger = power_ledger
        # rt family incremental state: consumed grant-ledger prefix,
        # per-resource latest granted end, sched-core clock floor.
        self._rt_grant_idx = 0
        self._rt_res_end: dict[str, float] = {}
        self._rt_sched_floor = 0.0
        # energy family monotone floors: (admissions, throttles,
        # throttle delay, busy total).
        self._energy_floor = (0, 0, 0.0, 0.0)
        self.n_checks = 0
        self._node_of_wid = {w.wid: w.memory_node for w in platform.workers}
        self._handle_by_hid = {h.hid: h for h in program.handles}
        self._node_ids = {n.mid for n in platform.nodes}
        self._last_now = 0.0
        self._prev_state = [t.state for t in program.tasks]
        # Per-link monotonicity floor: (busy, demand, bytes, transfers).
        self._link_floor = {
            id(link): (link.busy_until, link.demand_busy_until,
                       link.bytes_moved, link.n_transfers)
            for link in platform.transfers.links()
        }
        # Slack bookkeeping (rt family), once per run: every merged
        # task's absolute deadline must lie inside its job's
        # (arrival, deadline] window — the merge's min(job, own) rule.
        violations: list[tuple[str, str]] = []
        spans = getattr(program, "jobs", None)
        if spans:
            tasks = program.tasks
            for span in spans:
                lo, hi = span.arrival_us, span.deadline_us
                for tid in range(span.first_tid, span.first_tid + span.n_tasks):
                    dl = tasks[tid].deadline_us
                    if dl > hi or dl <= lo:
                        violations.append((
                            "rt",
                            f"task {tid} deadline {dl}us outside job "
                            f"{span.jid}'s ({lo}us, {hi}us] window",
                        ))
        if violations:
            self._report(violations)

    # -- entry point -------------------------------------------------------

    def validate(self, next_now: float, revealed: int, n_done: int) -> None:
        """Run every invariant family; raise on any violation.

        ``next_now`` is the timestamp of the event about to be processed
        (or the final clock after the queue drained); ``revealed`` and
        ``n_done`` mirror the engine's submission-window counters.
        """
        self.n_checks += 1
        violations: list[tuple[str, str]] = []
        # The submission state under test was left behind by the
        # *previous* event; judge release gating against its clock, not
        # against the event about to be processed (a pending JOB_ARRIVAL
        # at ``next_now`` legitimately has un-revealed tasks before it).
        prev_now = self._last_now
        self._check_clock(next_now, violations)
        self._check_links(violations)
        self._check_window(revealed, n_done, prev_now, violations)
        running = self._check_conservation(revealed, n_done, violations)
        self._check_task_states(violations)
        self._check_msi(running, violations)
        if self.batch_pending is not None:
            self._check_batch(revealed, prev_now, violations)
        if self.overhead_ledger is not None or self.resource_ledger is not None:
            self._check_rt(violations)
        if self.power_ledger is not None:
            self._check_energy(violations)
        for detail in self.scheduler.check():
            violations.append(("scheduler", str(detail)))
        if self.control is not None:
            for detail in self.control.audit():
                violations.append(("control", str(detail)))
        if violations:
            self._report(violations)

    def _report(self, violations: list[tuple[str, str]]) -> None:
        now = self.ctx.now
        if self.obs is not None:
            for family, detail in violations:
                self.obs.emit(InvariantViolation(now, family, detail))
        shown = "\n".join(f"  [{f}] {d}" for f, d in violations[:20])
        extra = len(violations) - 20
        if extra > 0:
            shown += f"\n  ... and {extra} more"
        raise InvariantError(
            f"{len(violations)} invariant violation(s) at t={now:.3f}us "
            f"(check #{self.n_checks}, scheduler {self.scheduler.name!r}):\n"
            f"{shown}"
        )

    # -- families ----------------------------------------------------------

    def _check_clock(self, next_now: float, out: list) -> None:
        if next_now < self._last_now:
            out.append((
                "clock",
                f"event clock moved backward: next event at t={next_now} "
                f"after t={self._last_now}",
            ))
        else:
            self._last_now = next_now

    def _check_links(self, out: list) -> None:
        floors = self._link_floor
        for link in self.platform.transfers.links():
            name = f"link {link.src}->{link.dst}"
            busy, demand, moved, count = floors[id(link)]
            if link.busy_until < busy or link.demand_busy_until < demand:
                out.append((
                    "link",
                    f"{name} clock moved backward: busy "
                    f"{busy}->{link.busy_until}, demand "
                    f"{demand}->{link.demand_busy_until}",
                ))
            if link.bytes_moved < moved or link.n_transfers < count:
                out.append((
                    "link",
                    f"{name} counters decreased: bytes {moved}->"
                    f"{link.bytes_moved}, transfers {count}->{link.n_transfers}",
                ))
            floors[id(link)] = (link.busy_until, link.demand_busy_until,
                                link.bytes_moved, link.n_transfers)
            if link.demand_busy_until > link.busy_until:
                out.append((
                    "link",
                    f"{name} demand clock {link.demand_busy_until} ahead of "
                    f"combined clock {link.busy_until}: the two traffic "
                    f"classes overlap on the wire",
                ))
            prev_start = None
            for span_start, span_end in link._prefetch_spans:
                if span_end < span_start:
                    out.append(("link", f"{name} prefetch span ends before "
                                        f"it starts: ({span_start}, {span_end})"))
                if prev_start is not None and span_start < prev_start:
                    out.append(("link", f"{name} prefetch spans out of order"))
                prev_start = span_start
                if span_end > link.busy_until:
                    out.append((
                        "link",
                        f"{name} prefetch span ({span_start}, {span_end}) "
                        f"extends past the link clock {link.busy_until}",
                    ))

    def _check_window(
        self, revealed: int, n_done: int, prev_now: float, out: list
    ) -> None:
        """Submission-window accounting and reveal liveness.

        The in-flight bound counts rolled-back (retry-pending) tasks as
        submitted-but-unfinished — exactly StarPU's semantics, where a
        failed attempt does not return its submission slot. The leak
        check is the converse: a stalled reveal must always be
        explainable by a full window or a future release time.
        """
        window = self.window
        tasks = self.program.tasks
        n_total = len(tasks)
        # Cancelled tasks the reveal pointer passed never consume a
        # submission slot (mirrors the engine's n_cxl_rev counter);
        # cancellation only exists under a control plane.
        n_cxl_rev = (
            sum(1 for t in tasks[:revealed] if t.state is _CXL)
            if self.control is not None
            else 0
        )
        in_flight = revealed - n_done - n_cxl_rev
        if window is not None and in_flight > window:
            out.append((
                "window",
                f"{in_flight} tasks in flight (revealed={revealed}, "
                f"done={n_done}, cancelled={n_cxl_rev}) exceed the "
                f"submission window {window}",
            ))
        if revealed < n_total:
            window_full = window is not None and in_flight >= window
            releases = self.releases
            gated = releases is not None and releases[revealed] > prev_now
            if not window_full and not gated:
                out.append((
                    "window",
                    f"submission stalled at task {revealed}/{n_total} with "
                    f"{in_flight} in flight although neither the window "
                    f"({window}) nor a release time blocks it: the reveal "
                    f"loop leaked",
                ))

    def _check_batch(self, revealed: int, prev_now: float, out: list) -> None:
        """Batch-mode buffer discipline.

        Buffered tasks went through the full reveal pipeline — release
        gate, submission window, control admission — before entering the
        buffer, so each must be a revealed, dependency-free READY task
        whose release time has passed (or a cancelled task waiting for
        its flush skip). A non-empty buffer must always have a
        ``BATCH_FLUSH`` event queued, else the batch would be forgotten.
        """
        pending = self.batch_pending
        if not pending:
            return
        releases = self.releases
        seen: set[int] = set()
        for task in pending:
            if task.tid in seen:
                out.append(("batch", f"{task.name} buffered twice"))
            seen.add(task.tid)
            state = task.state
            if state is _CXL:
                if "_batched" in task.sched:
                    out.append((
                        "batch",
                        f"{task.name} cancelled while buffered but still "
                        f"carries the _batched marker",
                    ))
                continue
            if state is not _READY:
                out.append((
                    "batch",
                    f"{task.name} buffered in state {state.name} (only READY "
                    f"tasks may wait in a batch)",
                ))
                continue
            if "_batched" not in task.sched:
                out.append((
                    "batch",
                    f"{task.name} buffered without the _batched marker",
                ))
            if task.tid >= revealed:
                out.append((
                    "batch",
                    f"{task.name} buffered but never revealed "
                    f"(revealed={revealed}): the batch outran the "
                    f"submission window",
                ))
            if releases is not None and releases[task.tid] > prev_now:
                out.append((
                    "batch",
                    f"{task.name} buffered at t={prev_now} before its "
                    f"release {releases[task.tid]}: the batch outran the "
                    f"release gate",
                ))
            if task.n_unfinished_preds != 0:
                out.append((
                    "batch",
                    f"{task.name} buffered with {task.n_unfinished_preds} "
                    f"unfinished predecessors",
                ))
        if not any(kind == BATCH_FLUSH for _, _, kind, _ in self.events):
            out.append((
                "batch",
                f"{len(pending)} task(s) buffered but no BATCH_FLUSH event "
                f"is queued: the batch leaked",
            ))

    def _check_rt(self, out: list) -> None:
        """Real-time bookkeeping: overhead conservation and resource
        mutual exclusion.

        The overhead ledger's total charge must always equal the
        counter-weighted sum of the model's per-decision costs, and the
        virtual scheduler core's clock may never retreat. The resource
        ledger's grant log is audited incrementally: per resource,
        granted intervals must never overlap — two holders of one
        resource at once would break the protocol's core promise.
        """
        ov = self.overhead_ledger
        if ov is not None:
            m = ov.model
            expected = (
                m.push_us * ov.n_push
                + m.pop_us * ov.n_pop
                + m.flush_us * ov.n_flush
                + m.batch_task_us * ov.n_flush_tasks
            )
            if abs(expected - ov.charged_us) > 1e-6 + 1e-9 * abs(expected):
                out.append((
                    "rt",
                    f"overhead charge leaked: ledger says {ov.charged_us}us "
                    f"but counters ({ov.n_push} push, {ov.n_pop} pop, "
                    f"{ov.n_flush} flush over {ov.n_flush_tasks} tasks) "
                    f"account for {expected}us",
                ))
            if ov.sched_free < self._rt_sched_floor:
                out.append((
                    "rt",
                    f"scheduler-core clock moved backward: "
                    f"{self._rt_sched_floor} -> {ov.sched_free}",
                ))
            else:
                self._rt_sched_floor = ov.sched_free
        res = self.resource_ledger
        if res is not None:
            grants = res.grants
            ends = self._rt_res_end
            for resource, tid, start, end in grants[self._rt_grant_idx:]:
                if end < start:
                    out.append((
                        "rt",
                        f"resource {resource!r} grant to task {tid} ends "
                        f"before it starts: ({start}, {end})",
                    ))
                prev_end = ends.get(resource, 0.0)
                if start < prev_end:
                    out.append((
                        "rt",
                        f"resource {resource!r} double-held: task {tid}'s "
                        f"grant starts at {start}us before the previous "
                        f"grant ends at {prev_end}us",
                    ))
                if end > prev_end:
                    ends[resource] = end
            self._rt_grant_idx = len(grants)

    def _check_energy(self, out: list) -> None:
        """Power-subsystem bookkeeping: cap safety, busy-time
        conservation, and counter monotonicity.

        The reserved busy draw flowing on a capped node at the current
        clock may never exceed the cap — that is the subsystem's core
        promise. Each worker's accrued busy time can never outrun the
        virtual clock (workers execute one task at a time), and the
        ledger's busy total must equal the per-worker/per-state sum —
        the joule report is a per-worker product of these, so exact
        additivity across workers follows from this audit.
        """
        pw = self.power_ledger
        now = self._last_now
        model = pw.model
        for node in self.platform.nodes:
            cap = model.cap_of(node.mid)
            if cap == float("inf"):
                continue
            draw = pw.node_draw(node.mid, now)
            if draw > cap + 1e-6:
                out.append((
                    "energy",
                    f"node {node.name!r} draws {draw} W at t={now}us, over "
                    f"its {cap} W cap",
                ))
        clock_slack = now + 1e-6
        per_worker_sum = 0.0
        for wid, per_state in pw.busy_us_by_state.items():
            busy = sum(per_state.values())
            per_worker_sum += busy
            if busy > clock_slack:
                out.append((
                    "energy",
                    f"worker {wid} accrued {busy}us busy but only {now}us "
                    f"elapsed",
                ))
        if abs(per_worker_sum - pw.busy_us_total) > 1e-6 + 1e-9 * per_worker_sum:
            out.append((
                "energy",
                f"busy time leaked: per-worker states sum to "
                f"{per_worker_sum}us but the ledger total is "
                f"{pw.busy_us_total}us",
            ))
        counters = (
            pw.n_admissions, pw.n_throttled,
            pw.throttle_delay_us, pw.busy_us_total,
        )
        floor = self._energy_floor
        if any(c < f for c, f in zip(counters, floor)):
            out.append((
                "energy",
                f"power counters moved backward: {floor} -> {counters}",
            ))
        else:
            self._energy_floor = counters
        if pw.n_throttled > pw.n_admissions:
            out.append((
                "energy",
                f"{pw.n_throttled} throttles recorded over only "
                f"{pw.n_admissions} admissions",
            ))

    def _check_task_states(self, out: list) -> None:
        prev = self._prev_state
        fault = self.fault_active
        controlled = self.control is not None
        for task in self.program.tasks:
            before, after = prev[task.tid], task.state
            if before is after:
                continue
            move = (before, after)
            if (move in _LEGAL or (fault and move in _FAULT_ONLY)
                    or (controlled and move in _CONTROL_ONLY)):
                prev[task.tid] = after
                continue
            if move in _CONTROL_ONLY:
                why = "control-only cancellation without a control plane"
            elif move in _FAULT_ONLY:
                why = "fault-only rollback without a fault model"
            else:
                why = "illegal lifecycle transition"
            out.append((
                "task_state",
                f"{task.name}: {before.name} -> {after.name} ({why})",
            ))
            prev[task.tid] = after

    def _check_conservation(
        self, revealed: int, n_done: int, out: list
    ) -> dict[int, list[tuple[Task, int]]]:
        """Partition every task into exactly one bucket.

        Returns running/staged tasks as ``tid -> [(task, node)]`` so the
        MSI sweep can derive the expected pin counts without re-walking
        the worker dicts.
        """
        node_of = self._node_of_wid
        holders: dict[int, list[int]] = {}
        running: dict[int, list[tuple[Task, int]]] = {}
        for wid, task in enumerate(self.current):
            if task is not None:
                holders.setdefault(task.tid, []).append(wid)
                running.setdefault(task.tid, []).append((task, node_of[wid]))
        for wid, entry in enumerate(self.staged):
            if entry is not None:
                task = entry[0]
                holders.setdefault(task.tid, []).append(wid)
                running.setdefault(task.tid, []).append((task, node_of[wid]))

        retry_pending: set[int] | None = None
        done_count = 0
        for task in self.program.tasks:
            state = task.state
            if state is _DONE:
                done_count += 1
            if state is _CXL:
                # A cancelled task's own counter froze at cancellation
                # (successor release happens through its preds' sweeps),
                # but it must never be worker-held.
                if task.tid in holders:
                    out.append((
                        "conservation",
                        f"{task.name} is CANCELLED but held by worker(s) "
                        f"{holders[task.tid]}",
                    ))
                continue
            want = sum(
                1 for p in task.preds
                if p.state is not _DONE and p.state is not _CXL
            )
            if task.n_unfinished_preds != want:
                out.append((
                    "conservation",
                    f"{task.name} counts {task.n_unfinished_preds} unfinished "
                    f"predecessors but {want} of {len(task.preds)} are not DONE",
                ))
            wids = holders.get(task.tid)
            if wids is not None:
                if state is not _RUNNING:
                    out.append((
                        "conservation",
                        f"{task.name} held by worker(s) {wids} but in state "
                        f"{state.name}, not RUNNING",
                    ))
                if len(wids) > 1:
                    out.append((
                        "conservation",
                        f"{task.name} held by {len(wids)} workers at once: {wids}",
                    ))
                continue
            if state is _RUNNING:
                out.append((
                    "conservation",
                    f"{task.name} is RUNNING but no worker holds it "
                    f"(neither current nor staged)",
                ))
            elif state is _READY and task.tid >= revealed:
                out.append((
                    "conservation",
                    f"{task.name} is READY but was never submitted "
                    f"(revealed={revealed})",
                ))
            elif state is _S and task.tid < revealed and task.n_unfinished_preds == 0:
                # Submitted, dependencies met, yet not scheduler-held:
                # only legal as a failed task awaiting its retry event.
                if retry_pending is None:
                    retry_pending = {
                        payload.tid
                        for _, _, kind, payload in self.events
                        if kind == TASK_RETRY
                    }
                if task.tid not in retry_pending:
                    out.append((
                        "conservation",
                        f"{task.name} is SUBMITTED with all predecessors done "
                        f"but is neither scheduler-held nor retry-pending: "
                        f"the task leaked",
                    ))

        if done_count != n_done:
            out.append((
                "conservation",
                f"engine counted {n_done} completions but {done_count} "
                f"tasks are DONE",
            ))
        return running

    def _check_msi(
        self, running: dict[int, list[tuple[Task, int]]], out: list
    ) -> None:
        transfers = self.platform.transfers
        node_ids = self._node_ids
        worker_died = bool(self.ctx._dead_wids)

        # Expected pins from the running/staged tasks' acquire() records;
        # handles commute-written by a running task are exempt from the
        # pins-target-valid check (a concurrent commuting writer's
        # completion legally invalidates a replica another commuter still
        # pins — StarPU's COMMUTE leaves the order unspecified).
        expected_pins: dict[tuple[int, int], int] = {}
        commute_hids: set[int] = set()
        for entries in running.values():
            for task, node in entries:
                for handle in task.sched.get("_pinned", ()):
                    key = (handle.hid, node)
                    expected_pins[key] = expected_pins.get(key, 0) + 1
                for handle, mode in task.accesses:
                    if mode is AccessMode.COMMUTE:
                        commute_hids.add(handle.hid)

        bounded = transfers._resident
        for handle in self.program.handles:
            label = handle.label
            if not handle.valid_nodes and not worker_died:
                out.append(("msi", f"{label} has no valid replica anywhere"))
            if not handle.valid_nodes.issubset(node_ids):
                out.append((
                    "msi",
                    f"{label} valid on unknown nodes "
                    f"{sorted(handle.valid_nodes - node_ids)}",
                ))
            for node in handle._in_flight:
                if node not in handle.valid_nodes:
                    out.append((
                        "msi",
                        f"{label} has a transfer in flight toward node {node} "
                        f"but no (eagerly registered) replica there",
                    ))
            for node, count in handle._pins.items():
                if count <= 0:
                    out.append((
                        "msi",
                        f"{label} pin count on node {node} is {count} "
                        f"(stored counts must stay positive)",
                    ))
                if (node not in handle.valid_nodes
                        and handle.hid not in commute_hids):
                    out.append((
                        "msi",
                        f"{label} pinned on node {node} but not valid there "
                        f"(a running task's input was invalidated)",
                    ))
                want = expected_pins.get((handle.hid, node), 0)
                if count != want:
                    out.append((
                        "msi",
                        f"{label} pin count on node {node} is {count} but "
                        f"running/staged tasks account for {want}",
                    ))
            for node in handle.valid_nodes:
                if (node in bounded and handle.size > 0
                        and node != handle.home_node
                        and handle.hid not in bounded[node]):
                    out.append((
                        "msi",
                        f"{label} valid on bounded node {node} but missing "
                        f"from its residency accounting",
                    ))
        # Pins on handles the running tasks never pinned.
        for (hid, node), want in expected_pins.items():
            handle = self._handle_by_hid[hid]
            if node not in handle._pins:
                out.append((
                    "msi",
                    f"{handle.label} should be pinned {want}x on node {node} "
                    f"by running/staged tasks but carries no pin",
                ))

        for mid, resident in bounded.items():
            total = 0
            for hid, handle in resident.items():
                total += handle.size
                if mid not in handle.valid_nodes:
                    out.append((
                        "msi",
                        f"{handle.label} accounted resident on node {mid} "
                        f"but not valid there",
                    ))
            if total != transfers._usage[mid]:
                out.append((
                    "msi",
                    f"node {mid} usage counter says {transfers._usage[mid]} "
                    f"bytes but resident handles sum to {total}",
                ))
            if resident.keys() != transfers._last_use[mid].keys():
                out.append((
                    "msi",
                    f"node {mid} LRU recency keys diverge from the resident "
                    f"set",
                ))
