"""Differential and metamorphic whole-run properties.

Where :mod:`repro.check.invariants` validates state *inside* one run,
this module compares *across* runs and against analytic bounds — the
properties a correct simulator cannot violate regardless of policy:

* **Determinism** — with ``noise_sigma=0`` a run is bit-identical across
  repeats and across observability flags (``record_trace``,
  ``record_level``) and the invariant checker being on or off; none of
  those knobs may perturb the schedule.
* **Lower bounds** — the makespan is bounded below by the critical path
  (chain of per-task best-architecture estimates) and by total work
  divided by the worker count.
* **Fault-free equivalence** — a :class:`~repro.runtime.faults.FaultModel`
  whose rates are all zero produces the same run as ``fault_model=None``
  (the fault paths must not consume RNG draws or perturb event order).
* **Window equivalence** — a submission window at least as large as the
  program never binds, so ``submission_window=len(tasks)`` must be
  bit-identical to ``None`` (the unified reveal loop may not perturb
  push order, and the windowed bookkeeping may not leak).
* **Pipeline bound** — disabling worker lookahead (``pipeline=False``)
  may only beat the pipelined run by what staging can explain: the
  runs' total wire time (foregone transfer overlap) plus one mis-bound
  task per worker (staging commits tasks to workers early).
* **Control-plane no-op equivalence** — a control plane with infinite
  credits, no global budget and eviction off
  (:meth:`~repro.control.ControlConfig.unlimited`) admits everything
  and must reproduce the uncontrolled ``simulate_stream`` run
  bit-for-bit (the admission gate may not perturb reveal order, events
  or accounting).
* **Real-time no-op equivalence** — an all-zero
  :class:`~repro.runtime.overhead.SchedOverheadModel` must equal
  ``overhead=None``, a :class:`~repro.runtime.resources.ResourceProtocol`
  on a program naming no resources must equal ``resources=None``, and
  tagging a stream's jobs with deadlines must not move a single task
  under a deadline-oblivious scheduler — the rt subsystems may only
  change a schedule when they are genuinely engaged.
* **Power no-op equivalence** — a *passive*
  :class:`~repro.runtime.power.PowerStateModel` (no node caps, fastest
  runnable state at full speed) must reproduce the power-blind run
  bit-for-bit — the admission/booking/charging hooks may only meter,
  never perturb — and the metering model's
  :class:`~repro.runtime.power.EnergyReport` total must equal
  :func:`~repro.extensions.energy.energy_of_result` on the same run,
  bit for bit.

:func:`run_differential_suite` bundles these with an invariant-checked
sweep over the built-in applications × schedulers (with and without a
transient fault load) — the engine behind the ``repro check`` CLI
subcommand and ``tests/check/test_differential.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.apps.dense import cholesky_program, lu_program, qr_program
from repro.apps.fmm import fmm_program
from repro.platform.machines import MACHINES, MachineModel
from repro.runtime.engine import Simulator, SimResult
from repro.runtime.faults import FaultModel
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import Program
from repro.schedulers.registry import make_scheduler

#: Schedulers every sweep covers (the paper's subject + both baselines).
DEFAULT_SCHEDULERS = ("multiprio", "dmdas", "heteroprio")

#: Absolute slack (µs) for floating-point comparisons of time sums.
_EPS = 1e-6


@dataclass
class CheckOutcome:
    """Result of one differential/invariant check."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok  " if self.passed else "FAIL"
        tail = f" — {self.detail}" if self.detail and not self.passed else ""
        return f"[{mark}] {self.name}{tail}"


def builtin_apps(quick: bool = False) -> list[tuple[str, Callable[[], Program]]]:
    """Named program factories the sweeps iterate over.

    Quick mode keeps the three structurally-distinct small graphs
    (dense Cholesky, dense LU, the COMMUTE-heavy FMM); the full set
    adds QR. Factories rebuild the program each call so parallel or
    repeated use never shares runtime state by accident.
    """
    apps: list[tuple[str, Callable[[], Program]]] = [
        ("cholesky6", lambda: cholesky_program(6, 512)),
        ("lu6", lambda: lu_program(6, 512)),
        ("fmm", lambda: fmm_program(1500, height=3, seed=0)),
    ]
    if not quick:
        apps.append(("qr5", lambda: qr_program(5, 512)))
    return apps


# -- single-run plumbing ---------------------------------------------------


def _machine(machine: MachineModel | str) -> MachineModel:
    if isinstance(machine, str):
        return MACHINES[machine]()
    return machine


def _run(
    program: Program,
    machine: MachineModel,
    scheduler: str,
    **kwargs,
) -> tuple[SimResult, Simulator]:
    sim = Simulator(
        machine.platform(),
        make_scheduler(scheduler),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
        record_trace=kwargs.pop("record_trace", False),
        **kwargs,
    )
    return sim.run(program), sim


def fingerprint(res: SimResult) -> tuple:
    """Bit-comparable summary of one traced run: every task's placement
    and timing, the makespan and the bytes moved."""
    assert res.trace is not None, "fingerprint needs record_trace=True"
    records = tuple(
        sorted((r.tid, r.worker, r.start, r.end) for r in res.trace.task_records)
    )
    return (records, res.makespan, res.bytes_transferred)


def _wire_us(sim: Simulator) -> float:
    """Total queue-free wire time of every transfer the run committed."""
    return sum(
        link.bytes_moved / link.bandwidth + link.n_transfers * link.latency
        for link in sim.platform.transfers.links()
    )


# -- analytic lower bounds -------------------------------------------------


def makespan_lower_bounds(
    program: Program, machine: MachineModel
) -> tuple[float, float]:
    """(critical-path, work/width) lower bounds on any noise-free run.

    Uses each task's best-architecture estimate δ_min — with
    ``noise_sigma=0`` the sampled duration equals the estimate, so no
    schedule can finish a dependency chain faster than its δ_min sum,
    nor all work faster than evenly spread over every worker.
    """
    pm = AnalyticalPerfModel(machine.calibration())
    platform = machine.platform()
    archs = [a for a in platform.archs if platform.n_workers(a) > 0]
    dmin: dict[int, float] = {}
    for task in program.tasks:
        dmin[task.tid] = min(
            pm.estimate(task, a) for a in archs if task.can_exec(a)
        )
    # program.tasks is in submission order, which topologically orders
    # the DAG (dependencies only point at earlier submissions).
    cp: dict[int, float] = {}
    for task in program.tasks:
        longest = max((cp[p.tid] for p in task.preds), default=0.0)
        cp[task.tid] = longest + dmin[task.tid]
    critical_path = max(cp.values(), default=0.0)
    work_width = sum(dmin.values()) / max(1, len(platform.workers))
    return critical_path, work_width


# -- differential properties ----------------------------------------------


def check_determinism(
    name: str, program: Program, machine: MachineModel, scheduler: str
) -> list[CheckOutcome]:
    """Repeats and observability/checker flags must not move a single task."""
    out = []
    base, _ = _run(program, machine, scheduler, record_trace=True)
    again, _ = _run(program, machine, scheduler, record_trace=True)
    out.append(CheckOutcome(
        f"determinism.repeat[{name}/{scheduler}]",
        fingerprint(base) == fingerprint(again),
        "two identical noise-free runs diverged",
    ))
    checked, _ = _run(
        program, machine, scheduler, record_trace=True, check_invariants=True
    )
    out.append(CheckOutcome(
        f"determinism.checker[{name}/{scheduler}]",
        fingerprint(base) == fingerprint(checked),
        "enabling the invariant checker perturbed the schedule",
    ))
    recorded, _ = _run(
        program, machine, scheduler, record_trace=True, record_level="decisions"
    )
    out.append(CheckOutcome(
        f"determinism.record_level[{name}/{scheduler}]",
        fingerprint(base) == fingerprint(recorded),
        "record_level=decisions perturbed the schedule",
    ))
    untraced, _ = _run(program, machine, scheduler, record_trace=False)
    out.append(CheckOutcome(
        f"determinism.record_trace[{name}/{scheduler}]",
        (untraced.makespan, untraced.bytes_transferred)
        == (base.makespan, base.bytes_transferred),
        "record_trace toggled the makespan or traffic",
    ))

    cp, ww = makespan_lower_bounds(program, machine)
    bound = max(cp, ww)
    out.append(CheckOutcome(
        f"bounds.makespan[{name}/{scheduler}]",
        base.makespan >= bound - _EPS,
        f"makespan {base.makespan:.3f}us beat the lower bound "
        f"max(critical-path {cp:.3f}, work/width {ww:.3f})us",
    ))
    return out


def check_fault_free_equivalence(
    name: str, program: Program, machine: MachineModel, scheduler: str
) -> CheckOutcome:
    """An all-zero fault model must be indistinguishable from none."""
    plain, _ = _run(program, machine, scheduler, record_trace=True)
    zeroed, _ = _run(
        program, machine, scheduler, record_trace=True,
        fault_model=FaultModel(task_failure_rate=0.0, seed=0),
    )
    return CheckOutcome(
        f"faults.zero_rate[{name}/{scheduler}]",
        fingerprint(plain) == fingerprint(zeroed),
        "a zero-rate FaultModel perturbed the fault-free run",
    )


def check_window_equivalence(
    name: str, program: Program, machine: MachineModel, scheduler: str
) -> list[CheckOutcome]:
    """A window that never binds must not move a single task.

    ``submission_window >= len(tasks)`` can never block the reveal
    (in-flight count ≤ total tasks), so both it and a comfortably larger
    window must reproduce the unbounded run bit-for-bit.
    """
    out = []
    base, _ = _run(program, machine, scheduler, record_trace=True)
    for window in (len(program.tasks), 4 * len(program.tasks)):
        windowed, _ = _run(
            program, machine, scheduler, record_trace=True,
            submission_window=window,
        )
        out.append(CheckOutcome(
            f"window.equivalence[{name}/{scheduler}/w={window}]",
            fingerprint(base) == fingerprint(windowed),
            f"submission_window={window} (>= {len(program.tasks)} tasks) "
            f"diverged from submission_window=None",
        ))
    return out


#: Policies whose PUSH is interleaving-invariant: delaying a ready-task
#: reveal to the next flush (same virtual time ordering, same push order)
#: provably cannot change any decision, so the batched hot path must be
#: bit-identical to per-event scheduling at ANY batch_step once
#: drain-on-idle flushes the buffer before every pop. The work-stealing
#: pair is excluded by design: its push routes through push-time context
#: (the worker that released the task), which batching legitimately
#: shifts.
_BATCH_INVARIANT_EXCLUDED = frozenset({"ws", "lws"})


def check_batch_equivalence(
    name: str, program: Program, machine: MachineModel, scheduler: str
) -> list[CheckOutcome]:
    """The batched reveal path must be bit-identical to per-event.

    With ``batch_drain_on_idle=True`` the engine flushes its reveal
    buffer before every pop, so the scheduler observes exactly the
    per-event queue contents at every decision point — for any
    ``batch_step``, not just steps too small to bin two reveals
    together. The sweep covers a step below the smallest kernel time
    (every batch is a singleton), a mid-range step that genuinely bins
    reveals, and a step beyond the makespan (one giant bin, drain-fed).
    The no-drain variant only promises liveness and checker-clean
    gating, which the batch invariant family validates.
    """
    out = []
    if scheduler in _BATCH_INVARIANT_EXCLUDED:
        return out
    base, _ = _run(program, machine, scheduler, record_trace=True)
    for step in (1.0, 250.0, 1e9):
        batched, _ = _run(
            program, machine, scheduler, record_trace=True,
            batch_step=step, check_invariants=True,
        )
        out.append(CheckOutcome(
            f"batch.equivalence[{name}/{scheduler}/step={step:g}]",
            fingerprint(base) == fingerprint(batched),
            f"batch_step={step:g} with drain-on-idle diverged from the "
            "per-event path",
        ))
    nodrain, _ = _run(
        program, machine, scheduler, record_trace=True,
        batch_step=200.0, batch_drain_on_idle=False, check_invariants=True,
    )
    out.append(CheckOutcome(
        f"batch.nodrain_complete[{name}/{scheduler}]",
        len(nodrain.trace.task_records) == len(program.tasks),
        "fixed-step batching (no drain) failed to run every task",
    ))
    return out


def check_pipeline_bound(
    name: str, program: Program, machine: MachineModel, scheduler: str
) -> CheckOutcome:
    """Lookahead staging can only lose what its mechanisms can explain.

    Staging differs from the unpipelined run in two ways: transfers
    overlap execution (worth at most the total wire time of either run),
    and each worker *binds* one task ahead of time — a binding that may
    strand a task on a busy worker while another idles, costing at most
    the slowest implementation of the largest task, once per worker.
    A gap beyond that combined allowance means the engine lost time the
    pipeline mechanism cannot account for.
    """
    piped, sim_p = _run(program, machine, scheduler, pipeline=True)
    unpiped, sim_u = _run(program, machine, scheduler, pipeline=False)
    pm = AnalyticalPerfModel(machine.calibration())
    platform = sim_p.platform
    archs = [a for a in platform.archs if platform.n_workers(a) > 0]
    max_exec = max(
        pm.estimate(task, a)
        for task in program.tasks
        for a in archs
        if task.can_exec(a)
    )
    allowance = (
        _wire_us(sim_p) + _wire_us(sim_u)
        + len(platform.workers) * max_exec + _EPS
    )
    gap = piped.makespan - unpiped.makespan
    return CheckOutcome(
        f"pipeline.bound[{name}/{scheduler}]",
        gap <= allowance,
        f"pipeline=False beat pipeline=True by {gap:.3f}us, more than "
        f"transfer overlap plus one mis-bound task per worker "
        f"({allowance:.3f}us) could explain",
    )


def check_invariant_sweep(
    name: str,
    program: Program,
    machine: MachineModel,
    scheduler: str,
    fault_rate: float,
) -> list[CheckOutcome]:
    """Run under the invariant validator, fault-free and fault-loaded."""
    out = []
    try:
        _run(program, machine, scheduler, check_invariants=True)
        out.append(CheckOutcome(f"invariants[{name}/{scheduler}]", True))
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        out.append(CheckOutcome(
            f"invariants[{name}/{scheduler}]", False, f"{type(exc).__name__}: {exc}"
        ))
    try:
        _run(
            program, machine, scheduler, check_invariants=True,
            fault_model=FaultModel(
                task_failure_rate=fault_rate, max_retries=100, seed=7
            ),
        )
        out.append(CheckOutcome(f"invariants+faults[{name}/{scheduler}]", True))
    except Exception as exc:  # noqa: BLE001
        out.append(CheckOutcome(
            f"invariants+faults[{name}/{scheduler}]", False,
            f"{type(exc).__name__}: {exc}",
        ))
    return out


def check_control_noop_equivalence(
    machine: MachineModel,
    schedulers: Iterable[str],
) -> list[CheckOutcome]:
    """``ControlConfig.unlimited()`` must not move a single task.

    Runs one mixed-QoS Poisson stream per scheduler, controlled vs
    uncontrolled, and compares full run fingerprints plus the control
    ledger (everything admitted, nothing shed, delayed or evicted).
    """
    from repro.api import SimConfig, SimSpec
    from repro.control.plane import ControlConfig
    from repro.workload.stream import poisson_stream

    out = []
    for scheduler in schedulers:
        stream = poisson_stream(
            [lambda: cholesky_program(4, 512), lambda: lu_program(4, 512)],
            rate_jobs_per_s=50.0,
            n_jobs=8,
            seed=11,
            tenants=("t0", "t1", "t2"),
            qos=("guaranteed", "burstable", "best-effort"),
        )
        cfg = SimConfig(record_trace=True)
        plain = SimSpec(
            machine, scheduler, config=cfg, isolated_baseline=False
        ).run_stream(stream)
        controlled = SimSpec(
            machine, scheduler, config=cfg, isolated_baseline=False,
            control=ControlConfig.unlimited(),
        ).run_stream(stream)
        out.append(CheckOutcome(
            f"control.noop[{scheduler}]",
            fingerprint(plain.sim) == fingerprint(controlled.sim),
            "an unlimited control plane perturbed the stream schedule",
        ))
        ctl = controlled.control
        clean = (
            ctl is not None
            and ctl.n_arrived == ctl.n_completed == len(stream.jobs)
            and ctl.n_rejected == ctl.n_evicted == ctl.n_delays == 0
            and controlled.sim.n_cancelled == 0
        )
        out.append(CheckOutcome(
            f"control.noop_ledger[{scheduler}]",
            clean,
            "an unlimited control plane rejected/delayed/evicted work "
            f"(counters: {None if ctl is None else ctl.as_dict()['overall']})",
        ))
    return out


def check_rt_noop_equivalence(
    machine: MachineModel,
    schedulers: Iterable[str],
) -> list[CheckOutcome]:
    """Disengaged rt subsystems must not move a single task.

    Three bit-identity properties per scheduler, all on the same Poisson
    stream:

    * ``SchedOverheadModel()`` (all costs zero) vs ``overhead=None`` —
      the charging hooks may not perturb arrival times or event order
      when every charge is free;
    * ``ResourceProtocol()`` vs ``resources=None`` on a stream whose
      tasks name no resources — an idle ledger may not gate any start;
    * the deadline-tagged stream vs the same stream undecorated — a
      deadline-oblivious policy must schedule identically whether or
      not ``Task.deadline_us`` is set (deadlines are data, not control,
      until a policy opts in).
    """
    from repro.api import SimConfig, SimSpec
    from repro.runtime.overhead import SchedOverheadModel
    from repro.runtime.resources import ResourceProtocol
    from repro.workload.stream import poisson_stream

    def _stream(deadline: float | None):
        return poisson_stream(
            [lambda: cholesky_program(4, 512), lambda: lu_program(4, 512)],
            rate_jobs_per_s=60.0,
            n_jobs=8,
            seed=13,
            tenants=("t0", "t1"),
            deadline=deadline,
        )

    out = []
    for scheduler in schedulers:
        cfg = SimConfig(record_trace=True)
        plain = SimSpec(
            machine, scheduler, config=cfg, isolated_baseline=False
        ).run_stream(_stream(None))
        zero_ov = SimSpec(
            machine, scheduler, config=cfg, isolated_baseline=False,
            overhead=SchedOverheadModel(),
        ).run_stream(_stream(None))
        out.append(CheckOutcome(
            f"rt.overhead_noop[{scheduler}]",
            fingerprint(plain.sim) == fingerprint(zero_ov.sim),
            "an all-zero SchedOverheadModel perturbed the stream schedule",
        ))
        idle_res = SimSpec(
            machine, scheduler, config=cfg, isolated_baseline=False,
            resources=ResourceProtocol(),
        ).run_stream(_stream(None))
        out.append(CheckOutcome(
            f"rt.resources_noop[{scheduler}]",
            fingerprint(plain.sim) == fingerprint(idle_res.sim),
            "a ResourceProtocol over resource-free tasks perturbed the "
            "stream schedule",
        ))
        tagged = SimSpec(
            machine, scheduler, config=cfg, isolated_baseline=False
        ).run_stream(_stream(50_000.0))
        out.append(CheckOutcome(
            f"rt.deadline_noop[{scheduler}]",
            fingerprint(plain.sim) == fingerprint(tagged.sim),
            "tagging jobs with deadlines perturbed a deadline-oblivious "
            "scheduler",
        ))
    return out


def check_power_noop_equivalence(
    machine: MachineModel,
    schedulers: Iterable[str],
) -> list[CheckOutcome]:
    """A passive power model must meter without moving a single task.

    Three properties per scheduler, on one dense program:

    * the default ladder (``full`` fastest, no caps) vs ``power=None`` —
      admission always picks the full state at the requested start, the
      ``speed == 1.0`` path never rescales a duration, so the schedule
      must be bit-identical;
    * :meth:`~repro.runtime.power.PowerStateModel.metering` vs
      ``power=None`` — the single-state degenerate case, same identity;
    * the metering run's ``SimResult.energy.total_j`` vs
      :func:`~repro.extensions.energy.energy_of_result` on that same
      result — both walk archs → workers in platform order with the
      same per-worker busy/idle arithmetic, so the joule totals must
      agree bit for bit, not just within tolerance.
    """
    from repro.extensions.energy import energy_of_result
    from repro.runtime.power import PowerStateModel

    out = []
    program_of = lambda: cholesky_program(5, 512)  # noqa: E731
    for scheduler in schedulers:
        plain, _ = _run(program_of(), machine, scheduler, record_trace=True)
        ladder, _ = _run(
            program_of(), machine, scheduler, record_trace=True,
            power=PowerStateModel(), check_invariants=True,
        )
        out.append(CheckOutcome(
            f"power.noop_ladder[{scheduler}]",
            fingerprint(plain) == fingerprint(ladder),
            "an uncapped full/eco/sleep ladder perturbed the schedule",
        ))
        metered, sim = _run(
            program_of(), machine, scheduler, record_trace=True,
            power=PowerStateModel.metering(), check_invariants=True,
        )
        out.append(CheckOutcome(
            f"power.noop_metering[{scheduler}]",
            fingerprint(plain) == fingerprint(metered),
            "a metering-only power model perturbed the schedule",
        ))
        assert metered.energy is not None
        recomputed = energy_of_result(metered, sim.platform)
        out.append(CheckOutcome(
            f"power.metering_joules[{scheduler}]",
            metered.energy.total_j == recomputed,
            f"engine metering reported {metered.energy.total_j} J but "
            f"energy_of_result computes {recomputed} J on the same run",
        ))
    return out


def check_cluster_single_node_equivalence(
    machine: MachineModel,
    schedulers: Iterable[str],
) -> list[CheckOutcome]:
    """A single-node cluster must be :func:`simulate_stream`, bit for bit.

    The cluster tier degenerates when there is one node: placement has
    one choice, no ``after`` edge can cross nodes, and the node's
    sub-stream is the whole stream. The per-node engine must therefore
    reproduce the plain stream run exactly — same task placements and
    timings, same makespan, same intra-node traffic, same per-job
    latencies and isolated baselines. Any divergence means the cluster
    path perturbed the engine configuration or the merged program.
    """
    from repro.api import SimConfig, SimSpec
    from repro.cluster.sim import simulate_cluster
    from repro.cluster.spec import star_cluster
    from repro.workload.stream import poisson_stream

    out = []
    for scheduler in schedulers:
        stream = poisson_stream(
            [lambda: cholesky_program(4, 512), lambda: lu_program(4, 512)],
            rate_jobs_per_s=80.0,
            n_jobs=6,
            seed=5,
            tenants=("t0", "t1"),
        )
        plain = SimSpec(
            machine, scheduler, config=SimConfig(record_trace=True)
        ).run_stream(stream)
        assert plain.sim.trace is not None
        plain_records = tuple(sorted(
            (r.tid, r.worker, r.start, r.end)
            for r in plain.sim.trace.task_records
        ))
        clustered = simulate_cluster(
            stream, star_cluster(1, machine), scheduler
        )
        node_sim = clustered.node_sims["node0"]
        cluster_records = clustered._task_records["node0"]  # type: ignore[attr-defined]
        out.append(CheckOutcome(
            f"cluster.single_node[{scheduler}]",
            (plain_records, plain.sim.makespan, plain.sim.bytes_transferred)
            == (cluster_records, node_sim.makespan, node_sim.bytes_transferred),
            "a 1-node cluster diverged from simulate_stream at task level",
        ))
        plain_jobs = [
            (j.jid, j.start_us, j.end_us, j.isolated_us) for j in plain.jobs
        ]
        cluster_jobs = [
            (j.jid, j.start_us, j.end_us, j.isolated_us) for j in clustered.jobs
        ]
        out.append(CheckOutcome(
            f"cluster.single_node_jobs[{scheduler}]",
            plain_jobs == cluster_jobs,
            "a 1-node cluster reported different per-job results than "
            "simulate_stream",
        ))
    return out


# -- the suite -------------------------------------------------------------


def run_differential_suite(
    machine: MachineModel | str = "intel-v100",
    schedulers: Iterable[str] = DEFAULT_SCHEDULERS,
    quick: bool = False,
    fault_rate: float = 0.05,
    apps: Iterable[tuple[str, Callable[[], Program]]] | None = None,
    progress: Callable[[CheckOutcome], None] | None = None,
) -> list[CheckOutcome]:
    """Every differential + invariant check over apps × schedulers.

    ``quick`` trims the app list and runs the heavier cross-run
    properties only under the first scheduler per app (the invariant
    sweep always covers the full scheduler grid); ``apps`` replaces the
    built-in grid entirely. ``progress`` is called once per finished
    check — the CLI uses it for live output.
    """
    mach = _machine(machine)
    schedulers = tuple(schedulers)
    results: list[CheckOutcome] = []

    def emit(outcomes: CheckOutcome | list[CheckOutcome]) -> None:
        batch = [outcomes] if isinstance(outcomes, CheckOutcome) else outcomes
        for outcome in batch:
            results.append(outcome)
            if progress is not None:
                progress(outcome)

    for name, factory in (apps if apps is not None else builtin_apps(quick)):
        program = factory()
        for scheduler in schedulers:
            emit(check_invariant_sweep(name, program, mach, scheduler, fault_rate))
        diff_scheds = schedulers[:1] if quick else schedulers
        for scheduler in diff_scheds:
            emit(check_determinism(name, program, mach, scheduler))
            emit(check_fault_free_equivalence(name, program, mach, scheduler))
            emit(check_window_equivalence(name, program, mach, scheduler))
            emit(check_batch_equivalence(name, program, mach, scheduler))
            emit(check_pipeline_bound(name, program, mach, scheduler))
    emit(check_control_noop_equivalence(
        mach, schedulers[:1] if quick else schedulers
    ))
    emit(check_rt_noop_equivalence(
        mach, schedulers[:1] if quick else schedulers
    ))
    emit(check_power_noop_equivalence(
        mach, schedulers[:1] if quick else schedulers
    ))
    emit(check_cluster_single_node_equivalence(
        mach, schedulers[:1] if quick else schedulers
    ))
    return results
