"""Opt-in correctness subsystem: invariant checking + differential tests.

``repro.check`` is never imported by the default simulation path — the
engine lazily imports :class:`~repro.check.invariants.InvariantChecker`
only when ``check_invariants=True`` (or ``REPRO_CHECK_INVARIANTS=1``),
so the zero-overhead guarantee of the hot loop is preserved.

Two halves:

* :mod:`repro.check.invariants` — an engine-attached validator that,
  after every simulation event, checks MSI coherence, link-clock
  monotonicity, task-state-machine legality, task conservation and the
  scheduler's own :meth:`~repro.schedulers.base.Scheduler.check` hook;
* :mod:`repro.check.differential` — metamorphic/differential properties
  of whole runs (determinism, lower bounds, fault-free equivalence),
  driven by the ``repro check`` CLI subcommand and ``tests/check/``;
* :mod:`repro.check.cluster` — global-tier audits of whole cluster runs
  (placement totality, gauge conservation, fabric byte accounting),
  applied by :func:`~repro.cluster.sim.simulate_cluster` when invariant
  checking is on.
"""

from typing import Any

__all__ = ["InvariantChecker", "check_cluster", "run_differential_suite"]


def __getattr__(name: str) -> Any:
    # Lazy re-exports: differential imports the simulate() facade, which
    # imports the engine — eager imports here would create a cycle with
    # the engine's own (deferred) import of InvariantChecker.
    if name == "InvariantChecker":
        from repro.check.invariants import InvariantChecker

        return InvariantChecker
    if name == "run_differential_suite":
        from repro.check.differential import run_differential_suite

        return run_differential_suite
    if name == "check_cluster":
        from repro.check.cluster import check_cluster

        return check_cluster
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
