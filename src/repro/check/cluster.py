"""The ``cluster`` invariant family: audits of a whole cluster run.

Per-node engines already run under the engine-attached
:class:`~repro.check.invariants.InvariantChecker` when checking is on;
this module validates what only the *global* tier can see — the glue
between placement, per-node execution and the fabric:

* **placement** — every completed job ran on exactly the node its
  placement record names, every placement names a real node, and no
  job appears on two nodes;
* **conservation** — per-node job and task gauges sum to the global
  admitted counts (nothing lost or duplicated between tiers), and
  admitted + rejected equals the arriving stream when the caller
  provides the arrival count;
* **fabric** — every cross-node ``after`` dependency charged its bytes
  to inter-node links: Σ (transfer bytes × route hops) equals Σ link
  ``bytes_moved``, and per-transfer arrival respects departure plus
  the route's queue-free wire time;
* **timing** — job start ≥ arrival, end ≥ start, node makespans within
  the cluster makespan, utilizations in [0, 1], and (for converged
  runs) no chained job started before its cross-node input arrived.

:func:`check_cluster` returns human-readable violation strings (empty
= clean); :func:`~repro.cluster.sim.simulate_cluster` raises
:class:`~repro.utils.validation.InvariantError` on any of them when
invariant checking is enabled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.result import ClusterResult

#: Absolute slack (µs / fraction) for floating-point comparisons.
_EPS = 1e-6


def check_cluster(result: "ClusterResult", n_arrived: int | None = None) -> list[str]:
    """Audit one :class:`~repro.cluster.result.ClusterResult`.

    ``n_arrived`` (when given) additionally checks that admitted +
    rejected jobs account for the whole arriving stream. Returns one
    message per violation; an empty list means the run is consistent.
    """
    out: list[str] = []
    node_names = {n.name for n in result.nodes}
    stats_by_name = {n.name: n for n in result.nodes}

    # -- placement: totality, uniqueness, agreement ----------------------
    seen_jids: set[int] = set()
    for job in result.jobs:
        if job.jid in seen_jids:
            out.append(f"cluster.placement: job {job.jid} completed twice")
        seen_jids.add(job.jid)
        record = result.placements.get(job.jid)
        if record is None:
            out.append(
                f"cluster.placement: job {job.jid} completed without a "
                f"placement record"
            )
            continue
        if record.node not in node_names:
            out.append(
                f"cluster.placement: job {job.jid} placed on unknown node "
                f"{record.node!r}"
            )
        if job.node != record.node:
            out.append(
                f"cluster.placement: job {job.jid} executed on {job.node!r} "
                f"but was placed on {record.node!r}"
            )
    rejected_jids = {jid for jid, _, _ in result.rejected}
    overlap = seen_jids & rejected_jids
    if overlap:
        out.append(
            f"cluster.placement: jobs {sorted(overlap)} both completed and "
            f"were rejected"
        )

    # -- conservation: node gauges sum to the global count ---------------
    n_jobs_nodes = sum(n.n_jobs for n in result.nodes)
    if n_jobs_nodes != len(result.jobs):
        out.append(
            f"cluster.conservation: per-node job gauges sum to "
            f"{n_jobs_nodes}, but {len(result.jobs)} jobs completed globally"
        )
    n_tasks_nodes = sum(n.n_tasks for n in result.nodes)
    n_tasks_jobs = sum(j.n_tasks for j in result.jobs)
    if n_tasks_nodes != n_tasks_jobs:
        out.append(
            f"cluster.conservation: per-node task counts sum to "
            f"{n_tasks_nodes}, but completed jobs carry {n_tasks_jobs} tasks"
        )
    if n_arrived is not None:
        accounted = len(result.jobs) + len(result.rejected)
        if accounted != n_arrived:
            out.append(
                f"cluster.conservation: {n_arrived} jobs arrived but "
                f"{len(result.jobs)} completed + {len(result.rejected)} "
                f"rejected = {accounted}"
            )
    # Per-node job counts must also match the placement ledger.
    placed_per_node: dict[str, int] = {}
    for jid in seen_jids:
        record = result.placements.get(jid)
        if record is not None:
            placed_per_node[record.node] = placed_per_node.get(record.node, 0) + 1
    for name, stat in stats_by_name.items():
        placed = placed_per_node.get(name, 0)
        if placed != stat.n_jobs:
            out.append(
                f"cluster.conservation: node {name!r} gauge reports "
                f"{stat.n_jobs} jobs but the placement ledger assigns {placed}"
            )

    # -- fabric: cross-node bytes all charged to inter-node links --------
    expected_bytes = sum(t.nbytes * t.hops for t in result.transfers)
    charged_bytes = sum(int(s["bytes_moved"]) for s in result.link_stats)
    if expected_bytes != charged_bytes:
        out.append(
            f"cluster.fabric: cross-node transfers carry "
            f"{expected_bytes} link-bytes (bytes x hops) but the fabric "
            f"links recorded {charged_bytes}"
        )
    for t in result.transfers:
        if t.hops < 1:
            out.append(
                f"cluster.fabric: transfer {t.pred_jid}->{t.succ_jid} "
                f"crosses nodes with a {t.hops}-hop route"
            )
        if t.arrive_us < t.depart_us - _EPS:
            out.append(
                f"cluster.fabric: transfer {t.pred_jid}->{t.succ_jid} "
                f"arrived at {t.arrive_us} before departing at {t.depart_us}"
            )

    # -- timing ----------------------------------------------------------
    cluster_makespan = result.makespan_us
    jobs_by_jid = {j.jid: j for j in result.jobs}
    for job in result.jobs:
        if job.start_us < job.arrival_us - _EPS:
            out.append(
                f"cluster.timing: job {job.jid} started at {job.start_us} "
                f"before its arrival {job.arrival_us}"
            )
        if job.end_us < job.start_us - _EPS:
            out.append(
                f"cluster.timing: job {job.jid} ended at {job.end_us} "
                f"before it started at {job.start_us}"
            )
    for stat in result.nodes:
        if stat.makespan_us > cluster_makespan + _EPS:
            out.append(
                f"cluster.timing: node {stat.name!r} makespan "
                f"{stat.makespan_us} exceeds the cluster makespan "
                f"{cluster_makespan}"
            )
        if not (0.0 <= stat.utilization <= 1.0 + _EPS):
            out.append(
                f"cluster.timing: node {stat.name!r} utilization "
                f"{stat.utilization} outside [0, 1]"
            )
    if result.converged:
        for t in result.transfers:
            succ = jobs_by_jid.get(t.succ_jid)
            pred = jobs_by_jid.get(t.pred_jid)
            if succ is not None and succ.start_us < t.arrive_us - _EPS:
                out.append(
                    f"cluster.timing: job {t.succ_jid} started at "
                    f"{succ.start_us} before its cross-node input arrived "
                    f"at {t.arrive_us}"
                )
            if pred is not None and t.depart_us < pred.end_us - _EPS:
                out.append(
                    f"cluster.fabric: transfer {t.pred_jid}->{t.succ_jid} "
                    f"departed at {t.depart_us} before the predecessor "
                    f"finished at {pred.end_us}"
                )
    return out
