#!/usr/bin/env python
"""Hierarchical tasks (the paper's Section VII future work).

Builds chains of coarse "bubbles" where the large ones expand into
split / fine-compute / merge subgraphs — the mixed-granularity DAG shape
StarPU's hierarchical tasks produce — and compares the schedulers. The
paper's expectation: this workload class favours MultiPrio over Dmdas
for the same reasons sparse QR does.

Run:  python examples/hierarchical_tasks.py
"""

from repro import AnalyticalPerfModel, Simulator, make_scheduler
from repro.experiments.reporting import format_table
from repro.extensions.hierarchical import BubbleSpec, HierarchicalFlow
from repro.platform import intel_v100
from repro.runtime.dag import task_type_histogram
from repro.runtime.task import AccessMode
from repro.utils.rng import make_rng

rng = make_rng(3)
hf = HierarchicalFlow(BubbleSpec(threshold_flops=1.2e9, partitions=6))
for chain in range(24):
    data = hf.data(8 << 20, label=f"chain{chain}")
    hf.submit_bubble("seed", [(data, AccessMode.W)], flops=1e3)
    for step in range(5):
        flops = float(rng.choice([3e8, 2e9, 6e9], p=[0.5, 0.3, 0.2]))
        hf.submit_bubble("work", [(data, AccessMode.RW)], flops=flops,
                         tag=(chain, step))

program = hf.program()
print(
    f"{hf.n_coarse} coarse + {hf.n_expanded} expanded bubbles -> "
    f"{len(program)} tasks {task_type_histogram(program.tasks)}\n"
)

machine = intel_v100(gpu_streams=2)
rows = []
for name in ("multiprio", "dmdas", "heteroprio", "eager"):
    sim = Simulator(
        machine.platform(),
        make_scheduler(name),
        AnalyticalPerfModel(machine.calibration(), noise_sigma=0.15),
        seed=0,
        record_trace=False,
    )
    res = sim.run(program)
    rows.append(
        [
            name,
            f"{res.makespan / 1e3:.1f}",
            f"{res.idle_frac_by_arch.get('cpu', 0) * 100:.0f}%",
            f"{res.idle_frac_by_arch.get('cuda', 0) * 100:.0f}%",
        ]
    )

print(
    format_table(
        ["scheduler", "makespan ms", "CPU idle", "GPU idle"],
        rows,
        title="Hierarchical bubbles on intel-v100 (mixed granularity)",
    )
)
