#!/usr/bin/env python
"""Task-based FMM across particle distributions (Fig. 6 workload).

Shows why irregular workloads separate the schedulers: with a uniform
distribution all leaves look alike and per-type priorities suffice; on
an ellipsoid surface the leaf occupancy — and hence every task's
CPU/GPU affinity — varies wildly, which is where MultiPrio's per-task
scores pay off.

Run:  python examples/fmm_scheduling.py [n_particles] [height]
"""

import sys

from repro import AnalyticalPerfModel, Simulator, make_scheduler
from repro.apps.fmm import fmm_program
from repro.experiments.reporting import format_table
from repro.platform import intel_v100
from repro.runtime.dag import task_type_histogram

n_particles = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
height = int(sys.argv[2]) if len(sys.argv) > 2 else 5

machine = intel_v100(gpu_streams=4)
rows = []
for distribution in ("uniform", "ellipsoid", "plummer"):
    program = fmm_program(
        n_particles=n_particles, height=height, distribution=distribution, seed=11
    )
    hist = task_type_histogram(program.tasks)
    print(f"{distribution:10s}: {len(program)} tasks {hist}")
    for sched in ("multiprio", "dmdas", "heteroprio"):
        sim = Simulator(
            machine.platform(),
            make_scheduler(sched),
            AnalyticalPerfModel(machine.calibration(), noise_sigma=0.15),
            seed=0,
        )
        res = sim.run(program)
        rows.append(
            [
                distribution,
                sched,
                f"{res.makespan / 1e3:.2f}",
                f"{res.idle_frac_by_arch.get('cpu', 0) * 100:.0f}%",
                f"{res.idle_frac_by_arch.get('cuda', 0) * 100:.0f}%",
            ]
        )

print()
print(
    format_table(
        ["distribution", "scheduler", "makespan ms", "CPU idle", "GPU idle"],
        rows,
        title=f"FMM, {n_particles} particles, octree height {height} (intel-v100)",
    )
)
