#!/usr/bin/env python
"""Scheduling efficiency against provable lower bounds.

For one Cholesky instance, computes the critical-path / work / exclusive
lower bounds and scores every scheduler's makespan against the tightest
one — the sanity lens that separates "scheduler A beat scheduler B" from
"both are far from what the platform allows". Renders an ASCII bar chart.

Run:  python examples/efficiency_bounds.py [n_tiles] [tile_size]
"""

import sys

from repro import AnalyticalPerfModel, Simulator, make_scheduler
from repro.analysis import efficiency_report, hbar_chart, makespan_bounds
from repro.apps.dense import cholesky_program
from repro.platform import small_hetero

n_tiles = int(sys.argv[1]) if len(sys.argv) > 1 else 12
tile_size = int(sys.argv[2]) if len(sys.argv) > 2 else 768

machine = small_hetero(n_cpus=6, n_gpus=1, gpu_streams=2)
program = cholesky_program(n_tiles, tile_size)
pm = AnalyticalPerfModel(machine.calibration())

bounds = makespan_bounds(program, machine.platform(), pm)
print(
    f"lower bounds: critical path {bounds.critical_path_us / 1e3:.1f} ms, "
    f"work {bounds.work_bound_us / 1e3:.1f} ms, "
    f"exclusive {bounds.exclusive_work_bound_us / 1e3:.1f} ms "
    f"-> best {bounds.best_us / 1e3:.1f} ms\n"
)

efficiencies = {}
for name in ("static-heft", "multiprio", "dmdas", "heteroprio", "lws", "eager"):
    sim = Simulator(machine.platform(), make_scheduler(name), pm, seed=0,
                    record_trace=False)
    res = sim.run(program)
    report = efficiency_report(res, program, machine.platform(), pm)
    efficiencies[name] = report["efficiency"]
    print(f"{name:12s} makespan {res.makespan / 1e3:8.1f} ms   "
          f"efficiency {report['efficiency'] * 100:5.1f}%")

print()
print(hbar_chart(efficiencies, title="efficiency vs tightest lower bound", width=46))
