#!/usr/bin/env python
"""Dense Cholesky on the paper's two platforms (Fig. 5 workload).

Builds the tiled Cholesky DAG the CHAMELEON library would submit, runs
it on the Intel-V100 and AMD-A100 machine models under every relevant
scheduler, and prints a comparison table — including the ASCII Gantt of
the winner so you can see the GPU/CPU split.

Run:  python examples/dense_cholesky.py [n_tiles] [tile_size]
"""

import sys

from repro import AnalyticalPerfModel, Simulator, make_scheduler
from repro.apps.dense import cholesky_program
from repro.experiments.reporting import format_table
from repro.platform import amd_a100, intel_v100

n_tiles = int(sys.argv[1]) if len(sys.argv) > 1 else 16
tile_size = int(sys.argv[2]) if len(sys.argv) > 2 else 960

program = cholesky_program(n_tiles, tile_size)
print(
    f"Cholesky {n_tiles}x{n_tiles} tiles of {tile_size}: "
    f"{len(program)} tasks, {program.total_flops() / 1e12:.2f} Tflop\n"
)

rows = []
best = {}
for machine in (intel_v100(gpu_streams=1), amd_a100(gpu_streams=1)):
    for sched in ("multiprio", "dmdas", "heteroprio", "lws"):
        sim = Simulator(
            machine.platform(),
            make_scheduler(sched),
            AnalyticalPerfModel(machine.calibration()),
            seed=0,
            record_trace=True,
        )
        res = sim.run(program)
        rows.append(
            [
                machine.name,
                sched,
                f"{res.makespan / 1e3:.1f}",
                f"{res.gflops:.0f}",
                f"{res.idle_frac_by_arch.get('cuda', 0) * 100:.0f}%",
                f"{res.bytes_transferred / 2**30:.2f}",
            ]
        )
        key = machine.name
        if key not in best or res.makespan < best[key][1].makespan:
            best[key] = (sched, res)

print(
    format_table(
        ["machine", "scheduler", "makespan ms", "GFlop/s", "GPU idle", "GiB moved"],
        rows,
        title="Tiled Cholesky (potrf), expert priorities available to dmdas",
    )
)

name, res = best["intel-v100"]
print(f"\nGantt of the intel-v100 winner ({name}):")
assert res.trace is not None
print(res.trace.gantt_ascii(width=100))
