#!/usr/bin/env python
"""Sparse multifrontal QR over the paper's matrix collection (Fig. 8).

Synthesizes elimination trees matching the published statistics of a
few Fig. 7 matrices, factors them under the three schedulers and prints
the performance ratios relative to Dmdas — the exact format of the
paper's Fig. 8.

Run:  python examples/sparse_qr_ratios.py [scale]
      (scale multiplies the published op counts; default 0.02 for speed)
"""

import sys

from repro.apps.sparseqr import matrix_by_name
from repro.experiments.fig8_sparseqr import format_fig8, run_fig8

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02

matrices = [matrix_by_name(n) for n in ("cat_ears_4_4", "e18", "Rucci1", "TF17")]
result = run_fig8(matrices=matrices, scale=scale, machines=("intel-v100",))
print(format_fig8(result))
