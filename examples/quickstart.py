#!/usr/bin/env python
"""Quickstart: build a task graph, run it under three schedulers, compare.

Demonstrates the public API in ~40 lines:

* declare data handles and submit tasks through the STF front-end
  (dependencies are inferred from the access modes);
* run everything through :func:`repro.simulate` — one call from
  (program, machine, scheduler) to a result;
* tune a scheduler via registry parameters (``sched_params``).

Run:  python examples/quickstart.py
"""

from repro import AccessMode, SimConfig, TaskFlow, simulate
from repro.platform import small_hetero
from repro.utils.units import time_human

# A toy blocked "stencil + reduce" pipeline: 8 independent chains that
# meet in one final reduction.
N_CHAINS, CHAIN_LEN, BLOCK = 8, 6, 1 << 20

flow = TaskFlow("quickstart")
blocks = [flow.data(8 * BLOCK, label=f"block{i}") for i in range(N_CHAINS)]
result = flow.data(8 * BLOCK, label="result")

for i, block in enumerate(blocks):
    flow.submit("init", [(block, AccessMode.W)], flops=1e6, implementations=("cpu",))
    for step in range(CHAIN_LEN):
        flow.submit(
            "stencil",
            [(block, AccessMode.RW)],
            flops=4e8,
            implementations=("cpu", "cuda"),
            tag=(i, step),
        )
reduce_accesses = [(b, AccessMode.R) for b in blocks] + [(result, AccessMode.W)]
flow.submit("reduce", reduce_accesses, flops=5e7, implementations=("cpu",))
program = flow.program()
print(f"program: {len(program)} tasks, {program.n_edges} dependency edges")

machine = small_hetero(n_cpus=6, n_gpus=1, gpu_streams=2)
for scheduler_name in ("multiprio", "dmdas", "eager"):
    res = simulate(program, machine, scheduler_name, seed=42)
    print(
        f"{scheduler_name:10s} makespan = {time_human(res.makespan):>10}   "
        f"{res.gflops:7.1f} GFlop/s   "
        f"data moved = {res.bytes_transferred / 2**20:.1f} MiB"
    )

# Registry names identify scheduler *families*: sched_params selects a
# member. A SimConfig bundles options for reuse across calls.
cfg = SimConfig(seed=42, sched_params={"locality_n": 5, "locality_eps": 0.1})
res = simulate(program, machine, "multiprio", config=cfg)
print(f"multiprio (top-5 locality window, eps=0.1): "
      f"makespan = {time_human(res.makespan)}")
