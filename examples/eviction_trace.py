#!/usr/bin/env python
"""The Fig. 4 eviction-mechanism ablation, with Gantt charts.

Runs the paper's exact setup (Cholesky of a 960x20-tile matrix on a
1-GPU + 6-CPU node) with and without MultiPrio's eviction mechanism and
prints both execution traces: without eviction the CPU rows grab
critical tasks at the end of the run and the GPU row goes idle.

Run:  python examples/eviction_trace.py
"""

from repro.experiments.fig4_eviction import format_fig4, run_fig4

result = run_fig4()
print(format_fig4(result, gantt=True))
