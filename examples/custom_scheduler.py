#!/usr/bin/env python
"""Writing your own scheduling policy against the PUSH/POP API.

Implements a minimal "greedy speedup" scheduler in ~30 lines — tasks go
to a per-architecture queue ordered by speedup, workers take their own
queue's head — registers it, and races it against the built-ins on a
Cholesky DAG. Use this as the template for scheduler research on top of
the simulator.

Run:  python examples/custom_scheduler.py
"""

import heapq

from repro import AnalyticalPerfModel, Simulator, make_scheduler, register_scheduler
from repro.apps.dense import cholesky_program
from repro.platform import small_hetero
from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.schedulers import Scheduler


class GreedySpeedup(Scheduler):
    """Push-time routing to the best architecture, speedup-sorted queues."""

    name = "greedy-speedup"

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self._queues: dict[str, list[tuple[float, int, Task]]] = {
            arch: [] for arch in ctx.available_archs
        }
        self._seq = 0

    def push(self, task: Task) -> None:
        ctx = self.ctx
        best = ctx.best_arch(task)
        others = [a for a in ctx.exec_archs(task) if a != best]
        speedup = (
            min(ctx.estimate(task, a) for a in others) / ctx.estimate(task, best)
            if others
            else 1.0
        )
        heapq.heappush(self._queues[best], (-speedup, self._seq, task))
        self._seq += 1

    def pop(self, worker: Worker) -> Task | None:
        queue = self._queues[worker.arch]
        if queue:
            return heapq.heappop(queue)[2]
        # Help out: steal the *least* accelerated task of another arch.
        for arch, other in self._queues.items():
            if arch != worker.arch and other:
                item = min(other, key=lambda e: -e[0])
                if item[2].can_exec(worker.arch):
                    other.remove(item)
                    heapq.heapify(other)
                    return item[2]
        return None


register_scheduler("greedy-speedup", GreedySpeedup)

program = cholesky_program(12, 512)
machine = small_hetero(n_cpus=6, n_gpus=1)
for name in ("greedy-speedup", "multiprio", "dmdas", "eager"):
    sim = Simulator(
        machine.platform(),
        make_scheduler(name),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
    )
    res = sim.run(program)
    print(f"{name:15s} makespan = {res.makespan / 1e3:8.2f} ms")
