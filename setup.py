"""Setup shim for environments where PEP 517 editable installs are
unavailable (no `wheel` package); `pip install -e .` falls back to this."""
from setuptools import setup

setup()
