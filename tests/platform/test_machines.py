"""Machine model tests: the paper's two platforms and the calibrations."""

import pytest

from repro.platform.calibration import (
    default_calibration,
    dense_calibration,
    fmm_calibration,
    sparseqr_calibration,
)
from repro.platform.machines import (
    MACHINES,
    amd_a100,
    cpu_only,
    fig4_machine,
    intel_v100,
)
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.task import Task
from repro.utils.validation import ValidationError


class TestMachines:
    def test_intel_v100_topology(self):
        plat = intel_v100(gpu_streams=4).platform()
        assert plat.n_workers("cpu") == 30  # 32 cores - 2 GPU drivers
        assert plat.n_workers("cuda") == 8  # 2 GPUs x 4 streams
        assert len(plat.nodes) == 3

    def test_amd_a100_has_more_slower_cpus(self):
        intel = intel_v100(1)
        amd = amd_a100(1)
        assert amd.platform().n_workers("cpu") > 2 * intel.platform().n_workers("cpu") - 4
        # Per-core rate about half (the paper's "each CPU is 2x slower").
        t = Task(0, "gemm", flops=1e9, implementations=("cpu",))
        ti = AnalyticalPerfModel(intel.calibration()).estimate(t, "cpu")
        t2 = Task(1, "gemm", flops=1e9, implementations=("cpu",))
        ta = AnalyticalPerfModel(amd.calibration()).estimate(t2, "cpu")
        assert ta == pytest.approx(2 * ti, rel=0.1)

    def test_amd_gpus_faster(self):
        t = Task(0, "gemm", flops=5e9, implementations=("cuda",))
        ti = AnalyticalPerfModel(intel_v100().calibration()).estimate(t, "cuda")
        t2 = Task(1, "gemm", flops=5e9, implementations=("cuda",))
        ta = AnalyticalPerfModel(amd_a100().calibration()).estimate(t2, "cuda")
        assert ta < ti / 1.5

    def test_fig4_machine_shape(self):
        plat = fig4_machine().platform()
        assert plat.n_workers("cpu") == 6
        assert plat.n_workers("cuda") == 1

    def test_cpu_only(self):
        plat = cpu_only(5).platform()
        assert plat.archs == ["cpu"]
        assert plat.n_workers() == 5

    def test_invalid_streams(self):
        with pytest.raises(ValidationError):
            intel_v100(gpu_streams=0)
        with pytest.raises(ValidationError):
            amd_a100(gpu_streams=-1)

    def test_registry(self):
        assert set(MACHINES) >= {"intel-v100", "amd-a100", "fig4"}
        assert MACHINES["intel-v100"]().name == "intel-v100"


class TestCalibrations:
    @pytest.mark.parametrize(
        "factory", [dense_calibration, fmm_calibration, sparseqr_calibration]
    )
    def test_default_fallback_exists(self, factory):
        table = factory()
        assert table.has("unheard-of-kernel", "cpu")
        assert table.has("unheard-of-kernel", "cuda")

    def test_gpu_wins_big_gemm_cpu_wins_small(self):
        pm = AnalyticalPerfModel(default_calibration())
        big = Task(0, "gemm", flops=2e9, implementations=("cpu", "cuda"))
        small = Task(1, "gemm", flops=1e5, implementations=("cpu", "cuda"))
        assert pm.estimate(big, "cuda") < pm.estimate(big, "cpu")
        assert pm.estimate(small, "cpu") < pm.estimate(small, "cuda")

    def test_tree_kernels_are_cpu_best(self):
        """FMM M2M/L2L must favour the CPU at any realistic size."""
        pm = AnalyticalPerfModel(fmm_calibration())
        for flops in (1e4, 1e6, 1e7):
            t = Task(0, "m2m", flops=flops, implementations=("cpu", "cuda"))
            assert pm.estimate(t, "cpu") < pm.estimate(t, "cuda")

    def test_p2p_is_gpu_best_at_scale(self):
        pm = AnalyticalPerfModel(fmm_calibration())
        t = Task(0, "p2p", flops=5e8, implementations=("cpu", "cuda"))
        assert pm.estimate(t, "cuda") < pm.estimate(t, "cpu") / 10

    def test_scaling_factors_apply(self):
        base = dense_calibration(1.0, 1.0)
        scaled = dense_calibration(2.0, 3.0)
        assert scaled.lookup("gemm", "cpu").gflops == 2 * base.lookup("gemm", "cpu").gflops
        assert scaled.lookup("gemm", "cuda").gflops == 3 * base.lookup("gemm", "cuda").gflops
