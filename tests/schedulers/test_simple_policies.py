"""Eager and Random scheduler tests."""

from repro.runtime.engine import SchedContext
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, TaskState
from repro.schedulers.eager import Eager
from repro.schedulers.random_sched import RandomScheduler


def make_ctx(machine):
    return SchedContext(machine.platform(), AnalyticalPerfModel(machine.calibration()))


def ready(flow, impls=("cpu", "cuda"), flops=1e6):
    task = flow.submit("k", [(flow.data(64), AccessMode.RW)], flops=flops,
                       implementations=impls)
    task.state = TaskState.READY
    return task


class TestEager:
    def test_fifo_order(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = Eager()
        sched.setup(ctx)
        flow = TaskFlow()
        first, second = ready(flow), ready(flow)
        sched.push(first)
        sched.push(second)
        worker = ctx.workers[0]
        assert sched.pop(worker) is first
        assert sched.pop(worker) is second
        assert sched.pop(worker) is None

    def test_skips_incompatible_head(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = Eager()
        sched.setup(ctx)
        flow = TaskFlow()
        gpu_task = ready(flow, impls=("cuda",))
        cpu_task = ready(flow, impls=("cpu",))
        sched.push(gpu_task)
        sched.push(cpu_task)
        cpu_worker = ctx.workers_of_arch("cpu")[0]
        assert sched.pop(cpu_worker) is cpu_task
        gpu_worker = ctx.workers_of_arch("cuda")[0]
        assert sched.pop(gpu_worker) is gpu_task

    def test_setup_clears_state(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = Eager()
        sched.setup(ctx)
        flow = TaskFlow()
        sched.push(ready(flow))
        sched.setup(ctx)
        assert sched.pop(ctx.workers[0]) is None


class TestRandom:
    def test_only_capable_workers_receive(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = RandomScheduler(seed=3)
        sched.setup(ctx)
        flow = TaskFlow()
        for _ in range(20):
            sched.push(ready(flow, impls=("cuda",)))
        cpu_wids = {w.wid for w in ctx.workers_of_arch("cpu")}
        assert all(not sched._queues[wid] for wid in cpu_wids)

    def test_speed_weighting_prefers_fast_arch(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = RandomScheduler(seed=3)
        sched.setup(ctx)
        flow = TaskFlow()
        for _ in range(200):
            sched.push(ready(flow, flops=2e9))  # strongly GPU-best
        gpu_count = sum(
            len(sched._queues[w.wid]) for w in ctx.workers_of_arch("cuda")
        )
        assert gpu_count > 150

    def test_deterministic_given_seed(self, hetero_machine):
        ctx = make_ctx(hetero_machine)

        def landing_pattern():
            sched = RandomScheduler(seed=11)
            sched.setup(ctx)
            flow = TaskFlow()
            for _ in range(30):
                sched.push(ready(flow))
            return [len(sched._queues[w.wid]) for w in ctx.workers]

        assert landing_pattern() == landing_pattern()
