"""Static HEFT reference scheduler tests."""

import pytest

from repro.analysis.validation import check_schedule
from repro.apps.dense import cholesky_program
from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.schedulers.static_heft import StaticHEFT
from tests.conftest import make_chain_program, make_fork_join_program


def run(machine, program):
    sim = Simulator(
        machine.platform(),
        StaticHEFT(),
        AnalyticalPerfModel(machine.calibration()),
        seed=0,
    )
    return sim, sim.run(program)


class TestPlan:
    def test_feasible_on_fork_join(self, hetero_machine):
        program = make_fork_join_program(width=12)
        sim, res = run(hetero_machine, program)
        check_schedule(program, res.trace, sim.platform.workers)

    def test_feasible_on_chain(self, hetero_machine):
        program = make_chain_program(n=10)
        sim, res = run(hetero_machine, program)
        check_schedule(program, res.trace, sim.platform.workers)

    def test_plan_covers_whole_submitted_dag(self, hetero_machine):
        """The plan must be built from the source tasks' closure, not
        just the initially-ready set."""
        program = make_chain_program(n=6)
        sim, res = run(hetero_machine, program)
        assert res.n_tasks == len(program)
        assert res.forced_pops == 0

    def test_gpu_work_lands_on_gpu(self, hetero_machine):
        program = make_fork_join_program(width=16, flops=2e9)
        sim, res = run(hetero_machine, program)
        plat = sim.platform
        gpu_tasks = sum(
            1 for r in res.trace.task_records if plat.workers[r.worker].arch == "cuda"
        )
        assert gpu_tasks > len(program) / 2

    def test_competitive_with_dynamic_schedulers(self, hetero_machine):
        """With exact cost models and no noise, the offline plan must be
        within a modest factor of the best dynamic policy."""
        from repro.schedulers.registry import make_scheduler

        program = cholesky_program(8, 512)
        pm = AnalyticalPerfModel(hetero_machine.calibration())
        sim = Simulator(hetero_machine.platform(), StaticHEFT(), pm, seed=0)
        heft_span = sim.run(program).makespan
        best_dynamic = min(
            Simulator(hetero_machine.platform(), make_scheduler(n), pm, seed=0)
            .run(program)
            .makespan
            for n in ("multiprio", "dmdas")
        )
        assert heft_span <= 1.3 * best_dynamic

    def test_reusable_across_runs(self, hetero_machine):
        program = make_fork_join_program(width=6)
        _, res1 = run(hetero_machine, program)
        _, res2 = run(hetero_machine, program)
        assert res1.makespan == pytest.approx(res2.makespan)
