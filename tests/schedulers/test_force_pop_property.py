"""Property: every policy completes a run driven purely by ``force_pop``.

``force_pop`` is the engine's liveness escape hatch — if a policy cannot
surface every executable ready task through it, a conservative ``pop``
(or a fault wiping a worker's queue) can wedge the whole run. The
``Reluctant`` wrapper turns the hatch into the only path: its ``pop``
always declines, so every single task must flow through ``force_pop``.
"""

from __future__ import annotations

import pytest

from repro.runtime.engine import Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.task import Task, TaskState
from repro.runtime.worker import Worker
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import make_scheduler, scheduler_names
from tests.conftest import make_fork_join_program


class Reluctant(Scheduler):
    """Declines every ``pop`` so the engine must force-pop the inner policy."""

    name = "reluctant"

    def __init__(self, inner: Scheduler) -> None:
        super().__init__()
        self.inner = inner

    def setup(self, ctx) -> None:
        super().setup(ctx)
        self.inner.setup(ctx)

    def push(self, task: Task) -> None:
        self.inner.push(task)

    def pop(self, worker: Worker) -> Task | None:
        return None

    def force_pop(self, worker: Worker) -> Task | None:
        return self.inner.pop(worker) or self.inner.force_pop(worker)

    def on_task_done(self, task: Task, worker: Worker) -> None:
        self.inner.on_task_done(task, worker)

    def stats(self) -> dict[str, float]:
        return self.inner.stats()


@pytest.mark.parametrize("name", scheduler_names())
def test_forced_pops_still_complete_the_program(name, hetero_machine):
    program = make_fork_join_program(width=8)
    sim = Simulator(
        hetero_machine.platform(),
        Reluctant(make_scheduler(name)),
        AnalyticalPerfModel(hetero_machine.calibration()),
        seed=0,
    )
    res = sim.run(program)
    assert all(t.state is TaskState.DONE for t in program.tasks)
    assert res.forced_pops > 0
