"""MultiQueue scheduler: completion, determinism, relaxation semantics."""

import pytest

from repro.api import SimConfig, SimSpec
from repro.apps.dense import cholesky_program, lu_program
from repro.check.differential import fingerprint
from repro.platform.machines import MACHINES
from repro.runtime.task import Task, TaskState
from repro.schedulers import make_scheduler
from repro.schedulers.multiqueue import MultiQueue
from repro.utils.validation import ValidationError


def run(scheduler="multiqueue", app=cholesky_program, n=6, **sched_params):
    spec = SimSpec(
        "small-hetero", scheduler,
        config=SimConfig(record_trace=True, check_invariants=True,
                         sched_params=sched_params),
    )
    return spec.run(app(n, 384))


class TestEndToEnd:
    def test_registered(self):
        sched = make_scheduler("multiqueue", k=3, seed=5)
        assert isinstance(sched, MultiQueue)
        assert sched.k == 3

    def test_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            MultiQueue(k=0)

    @pytest.mark.parametrize("k", [1, 2, 8])
    def test_runs_all_tasks_checker_clean(self, k):
        res = run(k=k)
        assert len(res.trace.task_records) == len(cholesky_program(6, 384).tasks)
        assert res.forced_pops == 0

    def test_deterministic_per_seed(self):
        a, b = run(seed=11), run(seed=11)
        assert fingerprint(a) == fingerprint(b)

    def test_seed_changes_the_draws(self):
        # Different two-choice streams almost surely schedule differently.
        assert fingerprint(run(seed=0)) != fingerprint(run(seed=12345))

    def test_k1_respects_strict_priority(self):
        """One heap per arch = exact priority order within each arch."""
        res = run(k=1, app=lu_program)
        assert len(res.trace.task_records) == len(lu_program(6, 384).tasks)


class TestUnitHooks:
    def _scheduler_with_ctx(self, k=2, seed=0):
        mach = MACHINES["small-hetero"]()
        spec = SimSpec(
            "small-hetero", "multiqueue",
            config=SimConfig(sched_params={"k": k, "seed": seed}),
        )
        sim = spec.simulator()
        sched = sim.scheduler
        sched.setup(sim.ctx)
        return sched, sim

    def _ready(self, tid, archs=("cpu", "cuda"), priority=0):
        task = Task(tid, "t", implementations=archs, priority=priority)
        task.state = TaskState.READY
        return task

    def test_retract_tombstones_everywhere(self):
        sched, sim = self._scheduler_with_ctx()
        task = self._ready(0)
        sched.push(task)
        assert sched.retract(task) is True
        assert sched.retract(task) is False  # second withdrawal refused
        for worker in sim.ctx.workers:
            assert sched.pop(worker) is None
        assert not sched.check()

    def test_pop_scans_all_heaps_before_giving_up(self):
        """pop() may be sloppy about order, never about existence."""
        sched, sim = self._scheduler_with_ctx(k=8, seed=9)
        task = self._ready(1, archs=("cpu",))
        sched.push(task)
        cpu_worker = next(w for w in sim.ctx.workers if w.arch == "cpu")
        assert sched.pop(cpu_worker) is task

    def test_higher_priority_pops_first_with_k1(self):
        sched, sim = self._scheduler_with_ctx(k=1)
        low = self._ready(0, priority=0)
        high = self._ready(1, priority=5)
        sched.push(low)
        sched.push(high)
        worker = sim.ctx.workers[0]
        assert sched.pop(worker) is high
        assert sched.pop(worker) is low
        assert sched.pop(worker) is None

    def test_push_batch_equals_sequential_pushes(self):
        """The inherited bulk hook must be n individual pushes."""
        a, _ = self._scheduler_with_ctx(k=4, seed=3)
        b, sim = self._scheduler_with_ctx(k=4, seed=3)
        tasks_a = [self._ready(i, priority=i % 3) for i in range(12)]
        tasks_b = [self._ready(i, priority=i % 3) for i in range(12)]
        for t in tasks_a:
            a.push(t)
        b.push_batch(tasks_b)
        worker = sim.ctx.workers[0]
        order_a = [a.pop(worker).tid for _ in range(12)]
        order_b = [b.pop(worker).tid for _ in range(12)]
        assert order_a == order_b

    def test_check_flags_corrupted_size_cache(self):
        sched, _ = self._scheduler_with_ctx()
        sched.push(self._ready(0))
        arch = next(iter(sched._sizes))
        sched._sizes[arch][0] += 1
        assert any("size cache" in v for v in sched.check())
