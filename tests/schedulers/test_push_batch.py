"""MultiPrio's bulk ``push_batch`` must be bit-identical to sequential
pushes: the override is an amortization, never a policy change."""

from __future__ import annotations

import pytest

from repro.api import SimConfig, simulate_stream
from repro.apps.dense import cholesky_program, lu_program
from repro.check.differential import fingerprint
from repro.schedulers.base import Scheduler
from repro.schedulers.multiprio import MultiPrio
from repro.schedulers.registry import register_scheduler
from repro.workload.stream import poisson_stream


class SeqPushMultiPrio(MultiPrio):
    """MultiPrio with the bulk override disabled — the base class's
    per-task sequential pushes, the semantics the override must match."""

    push_batch = Scheduler.push_batch


register_scheduler("multiprio-seqpush-test", SeqPushMultiPrio, override=True)


def batched_stream():
    return poisson_stream(
        [
            ("chol", lambda: cholesky_program(4, 384)),
            ("lu", lambda: lu_program(4, 384)),
        ],
        rate_jobs_per_s=400.0,
        n_jobs=4,
        seed=3,
        tenants=("t0", "t1"),
        deadline=8000.0,
    )


def run(scheduler, sched_params):
    return simulate_stream(
        batched_stream(), "small-hetero", scheduler,
        isolated_baseline=False,
        config=SimConfig(
            record_trace=True, batch_step=50.0, batch_drain_on_idle=False,
            sched_params=sched_params,
        ),
    )


@pytest.mark.parametrize("sched_params", [
    {},
    {"relaxed": 4},
    {"deadline_boost": 2000.0},
    {"use_criticality": False},
    {"arch_filtered_nod": True},
], ids=["default", "relaxed", "deadline-boost", "no-crit", "arch-nod"])
def test_bulk_push_batch_bit_identical(sched_params):
    bulk = run("multiprio", sched_params)
    seq = run("multiprio-seqpush-test", sched_params)
    assert fingerprint(bulk.sim) == fingerprint(seq.sim)
    assert [j.as_dict() for j in bulk.jobs] == [j.as_dict() for j in seq.jobs]


def test_bulk_override_actually_engaged():
    # Guard the guard: the batched engine path must call push_batch with
    # multi-task buffers, otherwise the parametrized equivalence above
    # only ever exercises the sequential fallback.
    calls: list[int] = []

    class Counting(MultiPrio):
        def push_batch(self, tasks):
            calls.append(len(tasks))
            super().push_batch(tasks)

    register_scheduler("multiprio-counting-test", Counting, override=True)
    run("multiprio-counting-test", {})
    assert calls and max(calls) > 1
