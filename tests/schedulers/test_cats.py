"""CATS scheduler tests."""

import pytest

from repro.runtime.engine import SchedContext, Simulator
from repro.runtime.perfmodel import AnalyticalPerfModel
from repro.runtime.stf import TaskFlow
from repro.runtime.task import AccessMode, TaskState
from repro.schedulers.cats import CATS


def make_ctx(machine):
    return SchedContext(machine.platform(), AnalyticalPerfModel(machine.calibration()))


def chain_with_side_tasks():
    """A long critical chain plus cheap independent side tasks."""
    flow = TaskFlow()
    spine = flow.data(1024)
    chain = [flow.submit("gemm", [(spine, AccessMode.RW)], flops=1e9,
                         implementations=("cpu", "cuda")) for _ in range(5)]
    side = [flow.submit("gemm", [(flow.data(1024), AccessMode.W)], flops=1e7,
                        implementations=("cpu", "cuda")) for _ in range(5)]
    return flow, chain, side


class TestClassification:
    def test_chain_head_is_critical(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = CATS()
        sched.setup(ctx)
        flow, chain, side = chain_with_side_tasks()
        for t in chain[:1] + side:
            t.state = TaskState.READY
            sched.push(t)
        # The chain head (bottom level 5e9) is critical; side tasks are not.
        assert len(sched._critical) == 1
        assert sched._critical[0][2] is chain[0]
        assert len(sched._normal) == 5

    def test_bottom_levels_accumulate_along_chain(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = CATS()
        sched.setup(ctx)
        _, chain, _ = chain_with_side_tasks()
        levels = [sched._bottom_level(t) for t in chain]
        assert levels == sorted(levels, reverse=True)
        assert levels[0] == pytest.approx(5e9)


class TestPop:
    def test_fast_arch_gets_critical_first(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = CATS()
        sched.setup(ctx)
        flow, chain, side = chain_with_side_tasks()
        for t in chain[:1] + side:
            t.state = TaskState.READY
            sched.push(t)
        gpu = ctx.workers_of_arch("cuda")[0]
        assert sched.pop(gpu) is chain[0]

    def test_slow_arch_gets_normal_first(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = CATS()
        sched.setup(ctx)
        flow, chain, side = chain_with_side_tasks()
        for t in chain[:1] + side:
            t.state = TaskState.READY
            sched.push(t)
        cpu = ctx.workers_of_arch("cpu")[0]
        popped = sched.pop(cpu)
        assert popped in side

    def test_fast_arch_helps_with_normal_when_no_critical(self, hetero_machine):
        ctx = make_ctx(hetero_machine)
        sched = CATS()
        sched.setup(ctx)
        flow = TaskFlow()
        t = flow.submit("gemm", [(flow.data(8), AccessMode.W)], flops=1e6)
        t.state = TaskState.READY
        sched.push(t)
        gpu = ctx.workers_of_arch("cuda")[0]
        # cpu-only implementation: gpu cannot take it.
        assert sched.pop(gpu) is None
        cpu = ctx.workers_of_arch("cpu")[0]
        assert sched.pop(cpu) is t


class TestEndToEnd:
    def test_feasible_schedule(self, hetero_machine):
        from repro.analysis.validation import check_schedule
        from tests.conftest import make_fork_join_program

        program = make_fork_join_program(width=10)
        sim = Simulator(
            hetero_machine.platform(),
            CATS(),
            AnalyticalPerfModel(hetero_machine.calibration()),
            seed=0,
        )
        res = sim.run(program)
        check_schedule(program, res.trace, sim.platform.workers)

    def test_invalid_frac(self):
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError):
            CATS(critical_frac=1.5)
